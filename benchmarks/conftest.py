"""Benchmark configuration.

Every benchmark regenerates one paper table/figure and prints the rows
the paper plots.  By default a reduced-but-same-shape scale is used so
the whole suite finishes in minutes; set ``REPRO_FULL=1`` for the
paper's full 50-node / 200-slot configuration.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentScale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """Experiment scale: quick by default, paper with REPRO_FULL=1."""
    return ExperimentScale.from_env()


def scaled_gamma(paper_gamma: int, node_count: int) -> int:
    """Scale a paper γ (defined for 50 nodes) to the bench node count."""
    return max(2, round(paper_gamma * node_count / 50))


def scaled_counts(paper_counts, node_count: int):
    """Scale the malicious sweep to the bench node count (deduplicated)."""
    scaled = sorted({round(m * node_count / 50) for m in paper_counts})
    return scaled
