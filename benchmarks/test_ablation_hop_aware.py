"""Ablation: hop-aware responder selection (§VII future work).

Compares standard WPS against hop-aware tie-breaking on the same
deployment: message *counts* should match (same algorithm up to ties),
while transmitted *bytes* should not increase — nearer responders mean
shorter routes for RPY_CHILD headers.
"""

from repro.core.config import ProtocolConfig
from repro.core.protocol import SlotSimulation, TwoLayerDagNetwork
from repro.net.topology import sequential_geometric_topology
from repro.sim.rng import RandomStreams


def _run(hop_aware: bool, seed: int = 51):
    streams = RandomStreams(seed)
    topology = sequential_geometric_topology(node_count=25, streams=streams)
    config = ProtocolConfig(body_bits=80_000, gamma=7, reply_timeout=0.05)
    deployment = TwoLayerDagNetwork(config=config, topology=topology, seed=seed)
    workload = SlotSimulation(deployment, generation_period=1)
    workload.run(30)

    validator_node = deployment.node(0)
    targets = [
        b for s in range(4) for b in workload.blocks_by_slot[s] if b.origin != 0
    ][:10]
    outcomes = []
    for target in targets:
        process = deployment.sim.process(
            validator_node.validator(hop_aware=hop_aware, use_tps=False).run(
                target.origin, target, fetch_body=False
            )
        )
        deployment.sim.run()
        outcomes.append(process.value)
    pop_bits = deployment.traffic.tx_bits(0, ["pop"]) + sum(
        deployment.traffic.tx_bits(n, ["pop"]) for n in deployment.node_ids if n != 0
    )
    return outcomes, pop_bits


def test_ablation_hop_aware(benchmark):
    def run_both():
        baseline, baseline_bits = _run(hop_aware=False)
        aware, aware_bits = _run(hop_aware=True)
        return baseline, baseline_bits, aware, aware_bits

    baseline, baseline_bits, aware, aware_bits = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    print(f"\nPoP bytes, standard WPS: {baseline_bits / 8e6:.2f} MB; "
          f"hop-aware: {aware_bits / 8e6:.2f} MB "
          f"({(1 - aware_bits / baseline_bits) * 100:+.1f}% change)")
    assert all(o.success for o in baseline)
    assert all(o.success for o in aware)
    # Hop-awareness must not blow up traffic; it usually trims it.
    assert aware_bits <= baseline_bits * 1.15
