"""Ablation benchmarks for the design choices DESIGN.md calls out.

* WPS vs random next-responder choice — headers retrieved per
  verification (WPS should need no more, usually fewer).
* TPS cache on vs off — repeat-verification message cost (TPS should
  collapse it toward zero; Prop. 4 lower-bounds the cold case).
* Responder oldest-child rule (Eq. 11) vs the cache's behaviour on
  micro-loops (path lengths stay bounded by Prop. 5).
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import SlotSimulation, TwoLayerDagNetwork
from repro.net.topology import sequential_geometric_topology
from repro.sim.rng import RandomStreams


def build_system(seed, node_count=20, slots=30, gamma=6):
    streams = RandomStreams(seed)
    topology = sequential_geometric_topology(node_count=node_count, streams=streams)
    config = ProtocolConfig(body_bits=80_000, gamma=gamma, reply_timeout=0.1)
    deployment = TwoLayerDagNetwork(config=config, topology=topology, seed=seed)
    workload = SlotSimulation(deployment, validate=False)
    workload.run(slots)
    return deployment, workload


def run_validations(deployment, workload, validator_id, use_tps, use_wps, count=10):
    """Run `count` verifications of distinct old blocks; return outcomes."""
    targets = [
        b for s in range(0, 5) for b in workload.blocks_by_slot[s]
        if b.origin != validator_id
    ][:count]
    outcomes = []
    node = deployment.node(validator_id)
    for target in targets:
        process = deployment.sim.process(
            node.validator(use_tps=use_tps, use_wps=use_wps).run(
                target.origin, target, fetch_body=False
            )
        )
        deployment.sim.run()
        outcomes.append(process.value)
    return outcomes


def test_ablation_wps_vs_random(benchmark):
    """WPS should not retrieve more headers than random selection."""

    def run_both():
        d1, w1 = build_system(seed=31)
        wps = run_validations(d1, w1, validator_id=0, use_tps=False, use_wps=True)
        d2, w2 = build_system(seed=31)
        rnd = run_validations(d2, w2, validator_id=0, use_tps=False, use_wps=False)
        return wps, rnd

    wps, rnd = benchmark.pedantic(run_both, rounds=1, iterations=1)
    wps_headers = sum(o.headers_retrieved for o in wps) / len(wps)
    rnd_headers = sum(o.headers_retrieved for o in rnd) / len(rnd)
    print(f"\nheaders retrieved per verification: WPS={wps_headers:.1f} random={rnd_headers:.1f}")
    assert all(o.success for o in wps)
    assert wps_headers <= rnd_headers * 1.5  # WPS is at least competitive


def test_ablation_tps_cache(benchmark):
    """With TPS, repeat verifications cost almost no messages."""

    def run_both():
        d1, w1 = build_system(seed=32)
        with_tps = run_validations(d1, w1, validator_id=0, use_tps=True, use_wps=True)
        d2, w2 = build_system(seed=32)
        without = run_validations(d2, w2, validator_id=0, use_tps=False, use_wps=True)
        return with_tps, without

    with_tps, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    tps_messages = sum(o.message_total for o in with_tps)
    raw_messages = sum(o.message_total for o in without)
    print(f"\ntotal PoP messages over 10 verifications: TPS={tps_messages} no-TPS={raw_messages}")
    assert tps_messages < raw_messages
    # Prop. 4: the *first* (cold) verification still needs 2(γ+1).
    assert with_tps[0].message_total >= 2 * (6 + 1)


def test_ablation_micro_loop_paths(benchmark):
    """Heterogeneous rates create micro-loops; path lengths must stay
    bounded (Prop. 5) and verifications must still succeed."""

    def run():
        streams = RandomStreams(33)
        topology = sequential_geometric_topology(node_count=15, streams=streams)
        config = ProtocolConfig(body_bits=80_000, gamma=4, reply_timeout=0.1)
        deployment = TwoLayerDagNetwork(config=config, topology=topology, seed=33)
        periods = {n: (1 if n % 3 else 4) for n in deployment.node_ids}
        workload = SlotSimulation(deployment, generation_period=periods)
        workload.run(24)
        return run_validations(deployment, workload, validator_id=0,
                               use_tps=True, use_wps=True, count=8)

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lengths = [len(o.path) for o in outcomes if o.success]
    print(f"\npath lengths under 4:1 rate skew: {lengths}")
    assert lengths
    # Path may exceed the quorum (5) due to micro-loops, but must stay
    # within the Prop. 5-style envelope for a 4:1 rate ratio.
    assert max(lengths) <= 5 + 4 * 10
