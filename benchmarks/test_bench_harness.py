"""Smoke tests for the ``repro.bench`` harness.

Tier-1 runs these in smoke scale (``REPRO_BENCH_FAST=1`` semantics):
the point is that the harness machinery works — ops run, JSON is
written, the regression comparison flags slowdowns — not to gather
statistically meaningful timings.
"""

import json

from repro.bench import runner as bench_runner
from repro.cli import main as cli_main


class TestRunner:
    def test_micro_op_produces_sane_result(self):
        results = bench_runner.run_benchmarks(
            fast=True, only=["header_references"]
        )
        assert set(results) == {"header_references"}
        result = results["header_references"]
        assert result.ns_per_op > 0
        assert result.ops_per_sec > 0
        assert result.iterations >= 1

    def test_slot_sim_reports_trace_and_rates(self):
        results = bench_runner.run_benchmarks(fast=True, only=["slot_sim"])
        metrics = results["slot_sim"].metrics
        assert metrics["events"] > 0
        assert metrics["blocks"] > 0
        assert metrics["events_per_sec"] > 0
        assert len(metrics["trace_sha256"]) == 64
        assert metrics["success_rate"] == 1.0

    def test_slot_sim_faults_row(self):
        results = bench_runner.run_benchmarks(
            fast=True, only=["slot_sim", "slot_sim_faults"]
        )
        faulted = results["slot_sim_faults"].metrics
        assert faulted["faulted"] is True
        assert faulted["scenario"] == "bench-fast-faults"
        assert len(faulted["trace_sha256"]) == 64
        # The injected crash must reach the macro trace; the fault-free
        # row must not move (the golden digest pins it too).
        clean = results["slot_sim"].metrics
        assert faulted["trace_sha256"] != clean["trace_sha256"]
        assert faulted["blocks"] < clean["blocks"]

    def test_fault_row_deterministic(self):
        first = bench_runner.run_benchmarks(fast=True, only=["slot_sim_faults"])
        second = bench_runner.run_benchmarks(fast=True, only=["slot_sim_faults"])
        assert (first["slot_sim_faults"].metrics["trace_sha256"]
                == second["slot_sim_faults"].metrics["trace_sha256"])

    def test_results_document_shape(self):
        results = bench_runner.run_benchmarks(
            fast=True, only=["header_references"]
        )
        document = bench_runner.results_to_json(results, fast=True, rev="test")
        assert document["schema"] == 1
        assert document["rev"] == "test"
        assert document["fast"] is True
        assert "header_references" in document["results"]


class TestRegressionComparison:
    def _doc(self, ns, wall):
        return {
            "fast": True,
            "results": {
                "header_references": {"ns_per_op": ns},
                "slot_sim": {"metrics": {"wall_s": wall}},
            },
        }

    def test_flags_regressions_beyond_factor(self):
        baseline = self._doc(100.0, 1.0)
        current = self._doc(100.0 * (bench_runner.REGRESSION_FACTOR + 0.5), 1.1)
        rows = dict(
            (name, (ratio, bad))
            for name, ratio, bad in bench_runner.compare_to_baseline(
                current, baseline
            )
        )
        assert rows["header_references"][1] is True
        assert rows["slot_sim"][1] is False

    def test_ignores_ops_missing_from_either_side(self):
        baseline = {"fast": True, "results": {"gone_op": {"ns_per_op": 1.0}}}
        current = self._doc(100.0, 1.0)
        assert bench_runner.compare_to_baseline(current, baseline) == []


class TestCli:
    def test_bench_writes_json_and_exits_zero(self, tmp_path):
        out = tmp_path / "bench.json"
        rc = cli_main([
            "bench", "--fast", "--no-check",
            "--only", "header_references", "--out", str(out),
        ])
        assert rc == 0
        document = json.loads(out.read_text())
        assert "header_references" in document["results"]

    def test_bench_fails_on_regression_against_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "fast": True,
            "rev": "fake",
            "results": {"header_references": {"ns_per_op": 1e-6}},
        }))
        out = tmp_path / "bench.json"
        rc = cli_main([
            "bench", "--fast", "--only", "header_references",
            "--out", str(out), "--baseline", str(baseline),
        ])
        assert rc == 3

    def test_bench_rejects_unknown_only_op(self, tmp_path, capsys):
        rc = cli_main([
            "bench", "--fast", "--no-check",
            "--only", "bogus_op", "--out", str(tmp_path / "x.json"),
        ])
        assert rc == 2
        assert "unknown benchmark op" in capsys.readouterr().err

    def test_bench_skips_check_on_scale_mismatch(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "fast": False,
            "rev": "fake",
            "results": {"header_references": {"ns_per_op": 1e-6}},
        }))
        out = tmp_path / "bench.json"
        rc = cli_main([
            "bench", "--fast", "--only", "header_references",
            "--out", str(out), "--baseline", str(baseline),
        ])
        assert rc == 0
