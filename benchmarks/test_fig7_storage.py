"""Fig. 7 — storage overhead benchmarks.

Each target regenerates one panel: average per-node storage versus time
slots for PBFT, IOTA and 2LDAG at a given block-body size, and the
final-slot CDF.  Expected shape (paper): 2LDAG roughly two orders of
magnitude below both baselines, with a very tight CDF.
"""

import pytest

from repro.experiments.fig7_storage import run_fig7
from repro.metrics.reporting import render_cdf_rows


def _report(result, label):
    print(f"\n=== Fig. 7({label})  C = {result.body_mb} MB  (storage, MB) ===")
    print(result.to_table())
    final = -1
    ratio = result.series_mb["PBFT"][final] / result.series_mb["2LDAG"][final]
    print(f"PBFT / 2LDAG at final slot: {ratio:.0f}x")


@pytest.mark.parametrize(
    "panel,body_mb", [("a", 0.1), ("b", 0.5), ("c", 1.0)]
)
def test_fig7_panel(benchmark, scale, panel, body_mb):
    result = benchmark.pedantic(
        run_fig7, args=(body_mb, scale), rounds=1, iterations=1
    )
    _report(result, panel)
    final = -1
    ldag = result.series_mb["2LDAG"][final]
    assert result.series_mb["PBFT"][final] > 10 * ldag
    assert result.series_mb["IOTA"][final] > 10 * ldag


def test_fig7d_cdf(benchmark, scale):
    result = benchmark.pedantic(run_fig7, args=(0.5, scale), rounds=1, iterations=1)
    cdf = result.cdf()
    print("\n=== Fig. 7(d)  CDF of per-node storage at final slot (MB) ===")
    print(render_cdf_rows(cdf.steps(), "storage MB"))
    # Paper: storage varies only ~1% across nodes (199-201 MB band).
    assert cdf.max <= cdf.min * 1.25
