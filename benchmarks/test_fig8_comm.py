"""Fig. 8 — communication overhead benchmarks.

Targets regenerate: (a) overall traffic for 2LDAG @33%/49% tolerance vs
PBFT/IOTA; (b) DAG-construction traffic; (c) consensus traffic; (d) the
per-node CDF.  Expected shape: 2LDAG orders of magnitude below the
baselines; consensus traffic dominates digest traffic; 49% tolerance
costs more than 33%; the CDF shows a relay-node heavy tail.
"""

import pytest

from repro.experiments.fig8_comm import run_fig8
from repro.metrics.reporting import render_cdf_rows


@pytest.fixture(scope="module")
def fig8(scale):
    return run_fig8(scale)


def test_fig8a_overall(benchmark, scale):
    result = benchmark.pedantic(run_fig8, args=(scale,), rounds=1, iterations=1)
    print("\n=== Fig. 8(a)  overall per-node communication (Mbit) ===")
    print(result.to_table("a"))
    final = -1
    for label in ("2LDAG-33%", "2LDAG-49%"):
        ldag = result.overall_mbit[label][final]
        assert result.overall_mbit["PBFT"][final] > 10 * ldag
        assert result.overall_mbit["IOTA"][final] > 10 * ldag


def test_fig8b_dag_construction(fig8, benchmark):
    benchmark.pedantic(lambda: fig8.to_table("b"), rounds=1, iterations=1)
    print("\n=== Fig. 8(b)  DAG-construction traffic (Mbit) ===")
    print(fig8.to_table("b"))
    # Digest traffic is identical for both tolerances (γ plays no role
    # in generation) and tiny in absolute terms.
    final = -1
    assert fig8.dag_mbit["2LDAG-33%"][final] == pytest.approx(
        fig8.dag_mbit["2LDAG-49%"][final], rel=0.01
    )


def test_fig8c_consensus(fig8, benchmark):
    benchmark.pedantic(lambda: fig8.to_table("c"), rounds=1, iterations=1)
    print("\n=== Fig. 8(c)  consensus (PoP) traffic (Mbit) ===")
    print(fig8.to_table("c"))
    final = -1
    assert (
        fig8.consensus_mbit["2LDAG-49%"][final]
        >= fig8.consensus_mbit["2LDAG-33%"][final]
    )
    assert fig8.consensus_mbit["2LDAG-33%"][final] > fig8.dag_mbit["2LDAG-33%"][final]


def test_fig8d_cdf(fig8, benchmark):
    benchmark.pedantic(lambda: fig8.cdf("2LDAG-33%"), rounds=1, iterations=1)
    cdf = fig8.cdf("2LDAG-33%")
    print("\n=== Fig. 8(d)  CDF of per-node communication (MB) ===")
    print(render_cdf_rows(cdf.steps(), "comm MB"))
    # Heavy tail: the busiest relay transmits well above the median.
    assert cdf.max > 1.5 * cdf.quantile(0.5)
