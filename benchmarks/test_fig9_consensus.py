"""Fig. 9 — consensus-time benchmarks.

Each target regenerates one panel: consensus failure probability versus
DAG age for a tolerance γ and a sweep of actually-malicious node
counts.  γ and the sweeps are scaled to the bench node count when not
running at full paper scale.  Expected shape: failure decays to zero;
slots-to-consensus grow with γ and explode only near the 49% limit.
"""

import pytest

from benchmarks.conftest import scaled_counts, scaled_gamma
from repro.experiments.fig9_consensus import PAPER_PANELS, run_fig9


@pytest.mark.parametrize("panel", ["a", "b", "c", "d"])
def test_fig9_panel(benchmark, scale, panel):
    spec = PAPER_PANELS[panel]
    gamma = scaled_gamma(spec["gamma"], scale.node_count)
    malicious = scaled_counts(spec["malicious_counts"], scale.node_count)
    # Keep malicious ≤ γ (the paper's tolerable bound).
    malicious = [m for m in malicious if m <= gamma]

    result = benchmark.pedantic(
        run_fig9,
        args=(gamma, malicious),
        kwargs={"scale": scale},
        rounds=1,
        iterations=1,
    )
    print(
        f"\n=== Fig. 9({panel})  gamma={gamma} "
        f"(scaled from {spec['gamma']}/50 nodes)  failure probability ==="
    )
    print(result.to_table())
    for m in malicious:
        slot = result.consensus_slot(m)
        print(f"consensus slot with {m} malicious: {slot}")

    # Shape assertions: failure decays with DAG age for every sweep.
    for m in malicious:
        series = result.failure_probability[m]
        assert series[-1] <= series[0]
    # The honest run must reach consensus within the sampled window.
    assert result.consensus_slot(malicious[0]) is not None


def test_fig9_gamma_scaling(benchmark, scale):
    """Cross-panel claim: larger γ never speeds consensus up."""

    def run_pair():
        small = run_fig9(scaled_gamma(10, scale.node_count), [0], scale=scale)
        large = run_fig9(scaled_gamma(20, scale.node_count), [0], scale=scale)
        return small, large

    small, large = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    s_slot = small.consensus_slot(0)
    l_slot = large.consensus_slot(0)
    print(f"\nconsensus slot gamma={small.gamma}: {s_slot}; gamma={large.gamma}: {l_slot}")
    assert s_slot is not None
    if l_slot is not None:
        assert l_slot >= s_slot
