"""The abstract's headline claims as a single benchmark.

Paper: storage ~2 orders and communication ~3 orders of magnitude below
PBFT/IOTA; consensus achievable with 49% malicious-tolerance.  At the
default quick scale the separations are smaller but must still be at
least an order of magnitude; at ``REPRO_FULL=1`` they approach the
paper's figures.
"""

from repro.experiments.headline import run_headline


def test_headline_ratios(benchmark, scale):
    result = benchmark.pedantic(run_headline, args=(scale,), rounds=1, iterations=1)
    print("\n=== Headline claims ===")
    print(result.summary())
    assert result.storage_orders_pbft >= 1.0
    assert result.comm_orders_pbft >= 1.0
    assert result.storage_ratio_iota > 10
    assert result.comm_ratio_iota > 10
