"""Micro-benchmarks of the hot primitives (classic pytest-benchmark).

Not paper figures — these track the implementation's own performance:
block building, Merkle hashing, DAG insertion, WPS scoring, routing.
"""

import random

from repro.core.block import build_block, make_body
from repro.core.config import ProtocolConfig
from repro.core.dag import LogicalDag
from repro.core.pop.wps import weighted_path_selection
from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import KeyPair
from repro.crypto.merkle import MerkleTree
from repro.net.routing import RoutingTable
from repro.net.topology import sequential_geometric_topology
from repro.sim.rng import RandomStreams

CONFIG = ProtocolConfig(body_bits=80_000, gamma=8)
KEYPAIR = KeyPair.generate(1)


def test_bench_block_build(benchmark):
    digests = {j: hash_bytes(f"d{j}".encode()) for j in range(8)}

    def build():
        return build_block(
            origin=1, index=0, time=0.0, body=make_body(1, 0, CONFIG),
            digests=digests, keypair=KEYPAIR, config=CONFIG,
        )

    block = benchmark(build)
    assert block.verify_body_root()


def test_bench_merkle_tree(benchmark):
    chunks = [f"chunk-{i}".encode() * 100 for i in range(64)]
    tree = benchmark(MerkleTree, chunks)
    assert tree.leaf_count == 64


def test_bench_header_digest(benchmark):
    block = build_block(
        origin=1, index=0, time=0.0, body=make_body(1, 0, CONFIG),
        digests={}, keypair=KEYPAIR, config=CONFIG,
    )
    digest = benchmark(block.header.digest)
    assert digest.bits == 256


def test_bench_dag_insertion(benchmark):
    blocks = []
    previous = None
    for i in range(200):
        digests = {1: previous.digest()} if previous else {}
        block = build_block(
            origin=1, index=i, time=float(i), body=make_body(1, i, CONFIG),
            digests=digests, keypair=KEYPAIR, config=CONFIG,
        )
        blocks.append(block)
        previous = block

    def insert_all():
        dag = LogicalDag()
        for block in blocks:
            dag.add_header(block.header)
        return dag

    dag = benchmark(insert_all)
    assert len(dag) == 200


def test_bench_wps_selection(benchmark):
    topology = sequential_geometric_topology(
        node_count=50, streams=RandomStreams(1)
    )
    rng = random.Random(0)
    consensus = set(range(10))
    candidates = list(topology.neighbors(0)) or [1]

    chosen = benchmark(
        weighted_path_selection, consensus, candidates, topology, rng
    )
    assert chosen in set(candidates)


def test_bench_routing_table(benchmark):
    topology = sequential_geometric_topology(
        node_count=50, streams=RandomStreams(2)
    )
    table = benchmark(RoutingTable, topology)
    assert table.diameter() >= 1
