#!/usr/bin/env python
"""Attack resilience: PoP routing around a malicious coalition.

Recreates the spirit of Fig. 5 and §IV-D at network scale: a fifth of
the nodes are captured and go silent in PoP; corrupt responders forge
headers; the validator still reaches consensus by detouring, and every
forged reply is rejected by the signature/digest checks.

Run:  python examples/attack_resilience.py
"""

from repro import ProtocolConfig, SlotSimulation, TwoLayerDagNetwork
from repro.attacks.behaviors import CorruptResponder, SilentResponder
from repro.attacks.majority import make_coalition
from repro.net.topology import sequential_geometric_topology
from repro.sim.rng import RandomStreams


def main() -> None:
    streams = RandomStreams(99)
    topology = sequential_geometric_topology(node_count=30, streams=streams)

    # A mixed coalition: 4 silent + 2 corrupt nodes (1/5 of the network).
    silent = make_coalition(
        topology, 4, streams, stream_name="silent", protect=[0, 1]
    )
    corrupt = make_coalition(
        topology, 2, streams, stream_name="corrupt",
        behavior_factory=CorruptResponder,
        protect=[0, 1] + sorted(silent),
    )
    behaviors = {**silent, **corrupt}
    print(f"captured nodes: silent={sorted(silent)} corrupt={sorted(corrupt)}")

    config = ProtocolConfig.paper_defaults(gamma=9, body_mb=0.1)
    config = ProtocolConfig(
        body_bits=config.body_bits, gamma=9, reply_timeout=0.05
    )
    deployment = TwoLayerDagNetwork(
        config=config, topology=topology, seed=99, behaviors=behaviors
    )

    # Everyone (including captured nodes) keeps generating blocks.
    workload = SlotSimulation(deployment, generation_period=1)
    workload.run(40)

    # Node 0 verifies ten old blocks of honest origins.
    honest_targets = [
        b for s in range(5) for b in workload.blocks_by_slot[s]
        if b.origin not in behaviors and b.origin != 0
    ][:10]

    validator = deployment.node(0)
    successes = 0
    detours = 0
    for target in honest_targets:
        process = validator.verify_block(target.origin, target, fetch_body=False)
        deployment.sim.run()
        outcome = process.value
        successes += outcome.success
        detours += outcome.timeouts + outcome.invalid_replies
        marker = "ok " if outcome.success else "FAIL"
        print(f"  [{marker}] {str(target):>6}: consensus={len(outcome.consensus_set)}"
              f" msgs={outcome.message_total}"
              f" timeouts={outcome.timeouts}"
              f" rejected={outcome.invalid_replies}"
              f" rollbacks={outcome.rollbacks}")

    print(f"\nverified {successes}/{len(honest_targets)} blocks despite "
          f"{len(behaviors)} captured nodes "
          f"({detours} malicious encounters routed around)")
    assert successes == len(honest_targets), "PoP must route around the coalition"


if __name__ == "__main__":
    main()
