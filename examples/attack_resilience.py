#!/usr/bin/env python
"""Attack resilience: PoP routing around a malicious coalition.

Recreates the spirit of Fig. 5 and §IV-D at network scale through the
``attack-majority`` scenario preset: a fifth of the nodes are captured
— declared as two adversary entries in the spec (4 PoP-silent, 2
header-forging) — the validator still reaches consensus by detouring,
and every forged reply is rejected by the signature/digest checks.

Run:  python examples/attack_resilience.py
(REPRO_EXAMPLE_QUICK=1 trims the workload for smoke tests.)
"""

import os

from repro.attacks.behaviors import CorruptResponder, SilentResponder
from repro.scenario import ScenarioRunner, get_scenario


def main() -> None:
    spec = get_scenario("attack-majority")
    audits = 10
    if os.environ.get("REPRO_EXAMPLE_QUICK") == "1":
        spec = spec.with_workload(slots=30)
        audits = 5

    runner = ScenarioRunner(spec).build()
    behaviors = runner.behaviors
    silent = [n for n, b in behaviors.items() if isinstance(b, SilentResponder)]
    corrupt = [n for n, b in behaviors.items() if isinstance(b, CorruptResponder)]
    print(f"captured nodes: silent={sorted(silent)} corrupt={sorted(corrupt)}")

    # Everyone (including captured nodes) keeps generating blocks.
    runner.advance_to(spec.workload.slots)
    deployment, workload = runner.deployment, runner.workload

    # Node 0 verifies old blocks of honest origins.
    honest_targets = [
        b for s in range(5) for b in workload.blocks_by_slot[s]
        if b.origin not in behaviors and b.origin != 0
    ][:audits]

    validator = deployment.node(0)
    successes = 0
    detours = 0
    for target in honest_targets:
        process = validator.verify_block(target.origin, target, fetch_body=False)
        deployment.sim.run()
        outcome = process.value
        successes += outcome.success
        detours += outcome.timeouts + outcome.invalid_replies
        marker = "ok " if outcome.success else "FAIL"
        print(f"  [{marker}] {str(target):>6}: consensus={len(outcome.consensus_set)}"
              f" msgs={outcome.message_total}"
              f" timeouts={outcome.timeouts}"
              f" rejected={outcome.invalid_replies}"
              f" rollbacks={outcome.rollbacks}")

    print(f"\nverified {successes}/{len(honest_targets)} blocks despite "
          f"{len(behaviors)} captured nodes "
          f"({detours} malicious encounters routed around)")
    assert successes == len(honest_targets), "PoP must route around the coalition"


if __name__ == "__main__":
    main()
