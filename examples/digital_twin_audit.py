#!/usr/bin/env python
"""Digital-twin audit: the paper's motivating Metaverse scenario.

A factory floor of IoT sensors feeds a digital twin (§I, Fig. 1).  The
twin's operator periodically audits sensor readings *on demand* — the
whole point of reactive consensus: no resources are spent verifying
data nobody reads.

This example:
1. runs the ``digital-twin`` scenario preset (25 sensors, the paper's
   geometric layout, 60 slots of streamed telemetry);
2. has the operator audit a suspicious reading, fetching the full block
   (body included) and checking the Merkle root + a PoP path;
3. shows how a tampered body is caught.

Run:  python examples/digital_twin_audit.py
(REPRO_EXAMPLE_QUICK=1 trims the workload for smoke tests.)
"""

import dataclasses
import os

from repro.core.block import BlockBody
from repro.metrics.units import bits_to_mb
from repro.scenario import ScenarioRunner, get_scenario


def main() -> None:
    # --- Deployment: 25 sensors, 0.1 MB samples, tolerate 8 bad nodes.
    spec = get_scenario("digital-twin")
    if os.environ.get("REPRO_EXAMPLE_QUICK") == "1":
        spec = spec.with_workload(slots=40)
    config_body_bits = spec.protocol.body_bits

    # --- Stream telemetry for the declared slots.
    runner = ScenarioRunner(spec)
    result = runner.run()
    deployment, workload = runner.deployment, runner.workload
    print(f"factory floor: {spec.node_count} sensors, "
          f"{result.total_blocks} readings recorded")

    # --- The twin flags a reading from sensor 13 at slot 10 as odd;
    #     the operator (attached at node 0) audits it.
    suspicious = next(
        b for b in workload.blocks_by_slot[10] if b.origin == 13
    )
    operator = deployment.node(0)
    process = operator.verify_block(suspicious.origin, suspicious, fetch_body=True)
    deployment.sim.run()
    outcome = process.value

    print(f"\naudit of reading {suspicious}:")
    print(f"  verdict:    {'TRUSTED' if outcome.success else 'REJECTED'}")
    print(f"  vouched by: {len(outcome.consensus_set)} distinct sensors")
    print(f"  audit cost: {outcome.message_total} messages "
          f"({outcome.tps_steps} served from the operator's header cache)")

    # --- Second audit of a nearby block: the header cache pays off.
    second = next(
        b for b in workload.blocks_by_slot[11] if b.origin == 13
    )
    process = operator.verify_block(second.origin, second, fetch_body=True)
    deployment.sim.run()
    repeat = process.value
    print(f"\nsecond audit (warm cache): {repeat.message_total} messages, "
          f"{repeat.tps_steps} cache hits "
          f"(first audit used {outcome.message_total})")

    # --- Tamper demonstration: the sensor's stored body is corrupted
    #     after the fact; the Merkle root exposes it immediately.
    sensor = deployment.node(13)
    block = sensor.store.get(suspicious)
    tampered = dataclasses.replace(
        block, body=BlockBody(content_seed=b"falsified", size_bits=config_body_bits)
    )
    print(f"\ntampered body passes Merkle check? {tampered.verify_body_root()}")

    # --- Cost summary: the reason 2LDAG fits IoT hardware.
    mean_mb = bits_to_mb(deployment.mean_storage_bits())
    full_replica_mb = bits_to_mb(
        result.total_blocks * deployment.config.block_bits(6)
    )
    print(f"\nper-sensor storage: {mean_mb:.1f} MB "
          f"(a full-replication ledger would need ~{full_replica_mb:.0f} MB)")

    assert outcome.success and repeat.success
    assert not tampered.verify_body_root()


if __name__ == "__main__":
    main()
