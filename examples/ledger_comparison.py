#!/usr/bin/env python
"""Ledger comparison: 2LDAG vs PBFT vs IOTA on identical workloads.

Runs all three systems live (no cost models) on the same 12-node
topology and the same per-slot data production, then prints a
storage/communication scoreboard — a miniature of Figs. 7-8 with every
message actually simulated.  The 2LDAG side is the
``ledger-comparison`` scenario preset; the baselines replay the same
topology and payload the spec declares.

Run:  python examples/ledger_comparison.py
"""

from repro.baselines.iota.node import IotaNetwork
from repro.baselines.pbft.cluster import PbftCluster
from repro.metrics.units import bits_to_mb
from repro.scenario import ScenarioRunner, get_scenario


def main() -> None:
    spec = get_scenario("ledger-comparison")
    slots = spec.workload.slots
    body_bits = spec.protocol.body_bits

    # --- 2LDAG (with generation-time verification, γ=4).
    runner = ScenarioRunner(spec)
    result = runner.run()
    ldag = runner.deployment
    topology = ldag.topology
    nodes = topology.node_ids

    # --- PBFT: same topology, same payload per slot.
    pbft = PbftCluster(topology=topology, payload_bits=body_bits, seed=spec.seed)
    pbft.run_slots(slots)

    # --- IOTA: same again.
    iota = IotaNetwork(topology=topology, payload_bits=body_bits, seed=spec.seed)
    iota.run_slots(slots)

    def mean_tx_mb(traffic):
        return bits_to_mb(sum(traffic.tx_bits(n) for n in nodes) / len(nodes))

    rows = [
        ("2LDAG", bits_to_mb(ldag.mean_storage_bits()), mean_tx_mb(ldag.traffic)),
        ("PBFT", bits_to_mb(pbft.mean_storage_bits()), mean_tx_mb(pbft.traffic)),
        ("IOTA", bits_to_mb(iota.mean_storage_bits()), mean_tx_mb(iota.traffic)),
    ]

    print(f"{slots} slots x {len(nodes)} nodes, "
          f"{body_bits // 8000} kB blocks, all protocols fully simulated\n")
    print(f"{'system':8} | {'storage/node (MB)':>18} | {'transmit/node (MB)':>19}")
    print("-" * 53)
    for name, storage, transmit in rows:
        print(f"{name:8} | {storage:18.2f} | {transmit:19.2f}")

    ldag_storage = rows[0][1]
    print(f"\nstorage advantage: {rows[1][1] / ldag_storage:.0f}x vs PBFT, "
          f"{rows[2][1] / ldag_storage:.0f}x vs IOTA")

    # Consistency checks: the baselines really did replicate fully.
    assert pbft.chains_consistent()
    assert iota.tangles_consistent()
    assert result.success_rate == 1.0


if __name__ == "__main__":
    main()
