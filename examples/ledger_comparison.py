#!/usr/bin/env python
"""Ledger comparison: 2LDAG vs PBFT vs IOTA on identical workloads.

Runs all three ledger backends live (every message actually simulated)
on the same topology, seed and per-slot data production by swapping the
``backend`` field of the ``ledger-comparison`` scenario preset — a
miniature of Figs. 7-8 driven entirely through the spec → runner
pipeline.  The closed-form cost models are printed alongside as a
cross-check on the measured baselines.

Run:  python examples/ledger_comparison.py
"""

# Closed-form cost models only — live cluster/tangle objects are
# reached through repro.scenario.create_backend.
from repro.baselines.iota.costmodel import IotaCostModel  # repro: allow[backend-bypass]
from repro.baselines.pbft.costmodel import PbftCostModel  # repro: allow[backend-bypass]
from repro.scenario import ScenarioRunner, build_topology, get_scenario
from repro.sim.rng import RandomStreams

BACKENDS = ("2ldag", "pbft", "iota")


def main() -> None:
    spec = get_scenario("ledger-comparison")
    slots = spec.workload.slots
    body_bits = spec.protocol.body_bits

    results, runners = {}, {}
    for backend in BACKENDS:
        runner = ScenarioRunner(spec.with_backend(backend))
        results[backend] = runner.run()
        runners[backend] = runner

    # The analytic cross-check: rebuild the shared topology from the
    # spec's named streams (identical across backends by construction).
    topology = build_topology(spec.topology, RandomStreams(spec.seed))
    models = {
        "pbft": PbftCostModel(topology, body_bits),
        "iota": IotaCostModel(topology, body_bits),
    }

    print(f"{slots} slots x {spec.node_count} nodes, "
          f"{body_bits // 8000} kB blocks, all protocols fully simulated\n")
    print(f"{'system':8} | {'storage/node (MB)':>18} | "
          f"{'transmit/node (Mbit)':>21} | {'model transmit':>14}")
    print("-" * 72)
    for backend in BACKENDS:
        result = results[backend]
        model = models.get(backend)
        model_col = (
            f"{model.mean_tx_bits_per_node(slots) / 1e6:14.2f}"
            if model is not None else f"{'—':>14}"
        )
        print(f"{backend:8} | {result.storage_mb[-1]:18.2f} | "
              f"{result.traffic_mbit[-1]:21.2f} | {model_col}")

    ldag_storage = results["2ldag"].storage_mb[-1]
    print(f"\nstorage advantage: "
          f"{results['pbft'].storage_mb[-1] / ldag_storage:.0f}x vs PBFT, "
          f"{results['iota'].storage_mb[-1] / ldag_storage:.0f}x vs IOTA")
    for backend in BACKENDS:
        print(f"trace [{backend}]: {results[backend].trace_sha256[:16]}…")

    # Consistency checks: the baselines really did replicate fully, and
    # the 2LDAG run reached consensus on every validation.
    assert runners["pbft"].backend.cluster.chains_consistent()
    assert runners["iota"].backend.network.tangles_consistent()
    assert results["2ldag"].success_rate == 1.0


if __name__ == "__main__":
    main()
