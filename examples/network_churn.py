#!/usr/bin/env python
"""Dynamic membership: devices leaving and rejoining the network.

The paper's §VII names dynamic scenarios as future work; this example
exercises the implementation through the ``churn`` scenario preset: a
third of the sensors go offline mid-run (battery swap, duty cycling),
the network keeps operating, and their historical data remains
verifiable throughout — descendants at other nodes keep vouching for
it.  The offline/rejoin choreography (including §IV-D-6 blacklist
forgiveness) is declared in the spec's churn section; the runner
applies it at the right slots.

Run:  python examples/network_churn.py
(REPRO_EXAMPLE_QUICK=1 trims the workload for smoke tests.)
"""

import os
from dataclasses import replace

from repro.scenario import ScenarioRunner, get_scenario


def verify_batch(deployment, workload, validator_id, targets):
    """Verify each target from the given validator; return successes."""
    successes = 0
    for target in targets:
        process = deployment.node(validator_id).verify_block(
            target.origin, target, fetch_body=False
        )
        deployment.sim.run()
        successes += process.value.success
    return successes


def main() -> None:
    spec = get_scenario("churn")
    if os.environ.get("REPRO_EXAMPLE_QUICK") == "1":
        spec = spec.with_workload(
            slots=26,
            churn=replace(spec.workload.churn, offline_slot=12, rejoin_slot=19),
        )
    churn = spec.workload.churn
    sleepers = list(churn.offline_nodes)
    runner = ScenarioRunner(spec).build()
    deployment, workload = runner.deployment, runner.workload

    # Phase 1: everyone online until the churn point.
    runner.advance_to(churn.offline_slot)
    print(f"phase 1: {workload.total_blocks()} blocks "
          f"from {spec.node_count} sensors")

    # Phase 2: the spec's churn takes the sleepers offline (duty
    # cycling); the rest keep generating.
    runner.advance_to(churn.rejoin_slot)
    print(f"phase 2: sensors {sleepers} offline; "
          f"total blocks now {workload.total_blocks()}")

    # Their *old* data is still verifiable while they sleep — as long
    # as the author itself is awake to serve the block, PoP vouching
    # comes from descendants at other nodes.
    awake_authors = [
        b for b in workload.blocks_by_slot[2] if b.origin not in sleepers
    ][:5]
    ok = verify_batch(deployment, workload, validator_id=0, targets=awake_authors)
    print(f"verified {ok}/{len(awake_authors)} slot-2 blocks during the outage")

    # Phase 3: the sleepers rejoin (the runner also applies the
    # §IV-D-6 forgiveness the spec declares); their chains resume.
    runner.finish()
    resumed = deployment.node(sleepers[0])
    expected_chain = churn.offline_slot + (spec.workload.slots - churn.rejoin_slot)
    print(f"phase 3: sensor {sleepers[0]} resumed; chain length "
          f"{len(resumed.store)} ({churn.offline_slot} pre-outage + "
          f"{spec.workload.slots - churn.rejoin_slot} post-rejoin)")

    # And the sleepers' pre-outage blocks are verifiable again.
    sleeper_blocks = [
        b for b in workload.blocks_by_slot[2] if b.origin in sleepers
    ][:5]
    ok = verify_batch(deployment, workload, validator_id=0, targets=sleeper_blocks)
    print(f"verified {ok}/{len(sleeper_blocks)} sleeper blocks after rejoin")

    assert ok == len(sleeper_blocks)
    assert len(resumed.store) == expected_chain


if __name__ == "__main__":
    main()
