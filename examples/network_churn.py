#!/usr/bin/env python
"""Dynamic membership: devices leaving and rejoining the network.

The paper's §VII names dynamic scenarios as future work; this example
exercises the implementation: a third of the sensors go offline
mid-run (battery swap, duty cycling), the network keeps operating, and
their historical data remains verifiable throughout — descendants at
other nodes keep vouching for it.

Run:  python examples/network_churn.py
"""

from repro import ProtocolConfig, SlotSimulation, TwoLayerDagNetwork
from repro.net.topology import sequential_geometric_topology
from repro.sim.rng import RandomStreams


def verify_batch(deployment, workload, validator_id, targets):
    """Verify each target from the given validator; return successes."""
    successes = 0
    for target in targets:
        process = deployment.node(validator_id).verify_block(
            target.origin, target, fetch_body=False
        )
        deployment.sim.run()
        successes += process.value.success
    return successes


def main() -> None:
    streams = RandomStreams(77)
    topology = sequential_geometric_topology(node_count=18, streams=streams)
    config = ProtocolConfig(body_bits=80_000, gamma=5, reply_timeout=0.1)
    deployment = TwoLayerDagNetwork(config=config, topology=topology, seed=77)
    workload = SlotSimulation(deployment, generation_period=1)

    # Phase 1: everyone online for 15 slots.
    workload.run(15)
    print(f"phase 1: {workload.total_blocks()} blocks from 18 sensors")

    # Phase 2: six sensors go offline (duty cycling).
    sleepers = [3, 6, 9, 12, 15, 17]
    for node_id in sleepers:
        deployment.node(node_id).go_offline()
    workload.run(10, start_slot=15)
    online_blocks = workload.total_blocks()
    print(f"phase 2: sensors {sleepers} offline; total blocks now {online_blocks}")

    # Their *old* data is still verifiable while they sleep — as long
    # as the author itself is awake to serve the block, PoP vouching
    # comes from descendants at other nodes.
    awake_authors = [
        b for b in workload.blocks_by_slot[2] if b.origin not in sleepers
    ][:5]
    ok = verify_batch(deployment, workload, validator_id=0, targets=awake_authors)
    print(f"verified {ok}/{len(awake_authors)} slot-2 blocks during the outage")

    # Phase 3: sleepers rejoin; their chains resume seamlessly.  Nodes
    # that timed out on them during the outage may have blacklisted
    # them (§IV-D-6); renewed cooperation (transmitting blocks again)
    # earns forgiveness — modelled by record_cooperation.
    for node_id in sleepers:
        deployment.node(node_id).come_online()
        for other in deployment.node_ids:
            deployment.node(other).record_cooperation(node_id)
    workload.run(10, start_slot=25)
    resumed = deployment.node(sleepers[0])
    print(f"phase 3: sensor {sleepers[0]} resumed; chain length "
          f"{len(resumed.store)} (15 pre-outage + 10 post-rejoin)")

    # And the sleepers' pre-outage blocks are verifiable again.
    sleeper_blocks = [
        b for b in workload.blocks_by_slot[2] if b.origin in sleepers
    ][:5]
    ok = verify_batch(deployment, workload, validator_id=0, targets=sleeper_blocks)
    print(f"verified {ok}/{len(sleeper_blocks)} sleeper blocks after rejoin")

    assert ok == len(sleeper_blocks)
    assert len(resumed.store) == 25


if __name__ == "__main__":
    main()
