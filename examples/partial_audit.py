#!/usr/bin/env python
"""Partial-body audits and the wire format.

A Metaverse application rarely needs a sensor's whole C-bit block to
answer one query.  With the header committed to a Merkle root, the
storing node serves one chunk plus an audit path; the consumer checks
it against the header it trusts from a PoP run.  This example (the
``partial-audit`` scenario preset) also round-trips blocks through the
deployable wire format.

Run:  python examples/partial_audit.py
"""

from repro.core.audit import make_chunk_proof, verify_chunk_proof
from repro.core.wire import decode_block, encode_block
from repro.scenario import ScenarioRunner, get_scenario


def main() -> None:
    spec = get_scenario("partial-audit")  # 3x3 grid, 250 kB bodies
    runner = ScenarioRunner(spec)
    runner.run()
    deployment, workload = runner.deployment, runner.workload
    body_bits = spec.protocol.body_bits

    # 1. Establish trust in a block's header via PoP.
    target = workload.blocks_by_slot[4][0]
    auditor = deployment.node(8)
    process = auditor.verify_block(target.origin, target, fetch_body=False)
    deployment.sim.run()
    outcome = process.value
    print(f"header of {target} vouched for by "
          f"{len(outcome.consensus_set)} nodes: {outcome.success}")
    trusted_header = outcome.path[0]

    # 2. Fetch ONE chunk with its proof instead of the whole body.
    storing_node = deployment.node(target.origin)
    block = storing_node.store.get(target)
    proof = make_chunk_proof(block, chunk_index=2)
    print(f"chunk proof: {proof.size_bits() / 8:.0f} B on the wire "
          f"vs {body_bits / 8:.0f} B for the full body "
          f"({body_bits / proof.size_bits():.0f}x saving)")
    assert verify_chunk_proof(proof, trusted_header)
    print("chunk verified against the PoP-trusted header")

    # 3. A forged chunk is caught immediately.
    import dataclasses
    forged = dataclasses.replace(proof, chunk=b"fabricated sensor data")
    print(f"forged chunk accepted? {verify_chunk_proof(forged, trusted_header)}")

    # 4. Wire-format round trip — what would actually cross the radio.
    #    Timestamps are quantized to microseconds on the wire, so
    #    equality is at the digest level (what the protocol hashes and
    #    signs is the quantized form).
    encoded = encode_block(block)
    decoded = decode_block(encoded)
    print(f"\nwire round-trip: {len(encoded)} wire bytes, "
          f"digest match={decoded.digest() == block.digest()}, "
          f"signature still valid="
          f"{decoded.header.verify_signature(storing_node.keypair.public)}")

    assert decoded.digest() == block.digest()
    assert decoded.header.verify_signature(storing_node.keypair.public)
    assert not verify_chunk_proof(forged, trusted_header)


if __name__ == "__main__":
    main()
