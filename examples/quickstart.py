#!/usr/bin/env python
"""Quickstart: stand up a small 2LDAG network and verify a block.

Runs the ``quickstart`` scenario preset — a nine-node grid under the
slot workload — then acts as an auditor: pick an old data block, run
Proof-of-Path against its owner, and inspect the consensus path.

Run:  python examples/quickstart.py
(REPRO_EXAMPLE_QUICK=1 trims the workload for smoke tests.)
"""

import os

from repro.metrics.units import bits_to_kb
from repro.scenario import ScenarioRunner, get_scenario


def main() -> None:
    # 1. The whole deployment and workload are one declarative spec:
    #    3x3 grid, small data blocks, tolerate 3 bad nodes, 30 slots.
    spec = get_scenario("quickstart")
    if os.environ.get("REPRO_EXAMPLE_QUICK") == "1":
        spec = spec.with_workload(slots=20)

    # 2. The paper's workload: every node generates one block per slot
    #    and pushes only the block digest to its neighbours.
    runner = ScenarioRunner(spec)
    result = runner.run()
    deployment, workload = runner.deployment, runner.workload
    print(f"generated {result.total_blocks} blocks across {spec.node_count} nodes")
    print(f"logical DAG: {len(deployment.dag)} blocks, "
          f"{deployment.dag.edge_count()} edges, "
          f"acyclic={deployment.dag.is_acyclic()}")

    # 3. On-demand verification (reactive consensus): node 8 audits a
    #    block node 0 generated back in slot 2.
    target = workload.blocks_by_slot[2][0]
    auditor = deployment.node(8)
    process = auditor.verify_block(target.origin, target)
    deployment.sim.run()
    outcome = process.value

    quorum = deployment.config.consensus_quorum()
    print(f"\nPoP verification of block {target} by node 8:")
    print(f"  success:        {outcome.success}")
    print(f"  consensus set:  {sorted(outcome.consensus_set)} "
          f"(quorum = {quorum})")
    print(f"  path length:    {len(outcome.path)} blocks")
    print(f"  messages:       {outcome.message_total} "
          f"(cache hits: {outcome.tps_steps})")

    # 4. The economics: what each node stores and transmits.
    node = deployment.node(4)  # the centre node
    print(f"\nnode 4 storage: {bits_to_kb(node.storage_bits()):.1f} kB "
          f"({len(node.store)} own blocks + {len(node.cache)} cached headers)")
    print(f"node 4 transmitted: "
          f"{bits_to_kb(deployment.traffic.tx_bits(4)):.1f} kB total")

    assert outcome.success, "verification should succeed on this DAG"


if __name__ == "__main__":
    main()
