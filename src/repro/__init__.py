"""2LDAG — a reproduction of "A Novel Two-Layer DAG-Based Reactive
Protocol for IoT Data Reliability in Metaverse" (ICDCS 2023).

Public API
----------
The most commonly used entry points are re-exported here:

* :class:`~repro.core.config.ProtocolConfig` — protocol constants;
* :class:`~repro.core.protocol.TwoLayerDagNetwork` — a wired deployment;
* :class:`~repro.core.protocol.SlotSimulation` — the paper's workload;
* :class:`~repro.core.node.IoTNode` — one participant;
* :class:`~repro.core.pop.validator.PopValidator` /
  :class:`~repro.core.pop.validator.PopOutcome` — on-demand
  verification (Proof-of-Path);
* :mod:`repro.scenario` — the declarative spec → runner → result
  pipeline every entry point builds its deployment through;
* :mod:`repro.baselines` — PBFT and IOTA comparison systems;
* :mod:`repro.attacks` — adversarial behaviours;
* :mod:`repro.experiments` — one runner per paper figure.

Quickstart
----------
>>> from repro import ScenarioRunner, get_scenario
>>> runner = ScenarioRunner(get_scenario("quickstart"))
>>> result = runner.run()
>>> result.total_blocks > 0
True
"""

from repro.core.audit import ChunkProof, make_chunk_proof, verify_chunk_proof
from repro.core.block import BlockBody, BlockHeader, BlockId, DataBlock
from repro.core.config import ProtocolConfig
from repro.core.dag import LogicalDag
from repro.core.node import IoTNode, NodeBehavior
from repro.core.pop.batch import BatchReport, verify_batch
from repro.core.pop.validator import PopOutcome, PopValidator
from repro.core.protocol import SlotSimulation, TwoLayerDagNetwork
from repro.core.wire import decode_block, decode_header, encode_block, encode_header
from repro.scenario import (
    ScenarioResult,
    ScenarioRunner,
    ScenarioSpec,
    get_scenario,
    run_scenario,
    scenario_names,
)

__version__ = "1.0.0"

__all__ = [
    "BatchReport",
    "BlockBody",
    "BlockHeader",
    "BlockId",
    "ChunkProof",
    "DataBlock",
    "IoTNode",
    "LogicalDag",
    "NodeBehavior",
    "PopOutcome",
    "PopValidator",
    "ProtocolConfig",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "SlotSimulation",
    "TwoLayerDagNetwork",
    "__version__",
    "get_scenario",
    "run_scenario",
    "scenario_names",
    "decode_block",
    "decode_header",
    "encode_block",
    "encode_header",
    "make_chunk_proof",
    "verify_batch",
    "verify_chunk_proof",
]
