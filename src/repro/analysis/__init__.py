"""Analytical results from Section V.

Closed-form implementations of Propositions 1-6, used by the test
suite to check the simulation against the paper's bounds and by
experiment reports to annotate measured values.
"""

from repro.analysis.bounds import (
    prop1_total_blocks,
    prop2_header_cache_bound_bits,
    prop3_node_storage_bound_bits,
    prop4_message_lower_bound,
    prop5_micro_loop_block_bound,
    prop6_message_upper_bound,
)

__all__ = [
    "prop1_total_blocks",
    "prop2_header_cache_bound_bits",
    "prop3_node_storage_bound_bits",
    "prop4_message_lower_bound",
    "prop5_micro_loop_block_bound",
    "prop6_message_upper_bound",
]
