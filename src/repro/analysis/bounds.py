"""Propositions 1-6 (Section V) as executable formulas.

Rates ``r_j`` are in bits per time unit and ``C`` is the body size in
bits, so ``t·r_j / C`` is the block count of node ``j`` at time ``t``,
exactly as in the paper.  For slot-based workloads, pass ``C = 1`` and
rates in blocks per slot.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.config import ProtocolConfig


def prop1_total_blocks(rates: Mapping[int, float], body_bits: float, time: float) -> int:
    """Proposition 1: total blocks in the network at time ``t``.

    ``Σ_j ⌊t·r_j / C⌋``.
    """
    if body_bits <= 0:
        raise ValueError("body size must be positive")
    return sum(math.floor(time * r / body_bits) for r in rates.values())


def prop2_header_cache_bound_bits(
    rates: Mapping[int, float],
    body_bits: float,
    time: float,
    node: int,
    config: ProtocolConfig,
    node_count: int,
) -> float:
    """Proposition 2: upper bound on ``|H_i|`` in bits at time ``t``.

    ``t·(f_c + f_H·|V|)/C · Σ_{j≠i} r_j`` — the worst case where node
    ``i`` caches every other node's headers, each header bounded by the
    full-degree size.
    """
    others = sum(r for j, r in rates.items() if j != node)
    per_block_bits = config.constant_header_bits + config.hash_bits * node_count
    return time * per_block_bits / body_bits * others


def prop3_node_storage_bound_bits(
    rates: Mapping[int, float],
    body_bits: float,
    time: float,
    node: int,
    config: ProtocolConfig,
    node_count: int,
) -> float:
    """Proposition 3: total storage bound at node ``i``.

    ``t·r_i + t·(f_c + f_H·|V|)/C · Σ_j r_j``.
    """
    own_rate = rates[node]
    all_rates = sum(rates.values())
    per_block_bits = config.constant_header_bits + config.hash_bits * node_count
    return time * own_rate + time * per_block_bits / body_bits * all_rates


def prop4_message_lower_bound(gamma: int) -> int:
    """Proposition 4: a cold-cache validator exchanges ≥ 2(γ+1) messages."""
    if gamma < 0:
        raise ValueError("gamma must be non-negative")
    return 2 * (gamma + 1)


def prop5_micro_loop_block_bound(
    loop_rates: Sequence[float], outside_min_rate: float
) -> int:
    """Proposition 5: max blocks inside a micro-loop.

    ``Σ_{i∈M} ⌊r_i / min{r_j : j ∉ M}⌋`` — the loop persists only for
    the generation interval of the slowest outside node.
    """
    if outside_min_rate <= 0:
        raise ValueError("outside minimum rate must be positive")
    return sum(math.floor(r / outside_min_rate) for r in loop_rates)


def prop6_message_upper_bound(
    sorted_rates_desc: Sequence[float], gamma: int, node_count: int
) -> float:
    """Proposition 6: message overhead upper bound with no malicious nodes.

    ``(|V| + γ) · (Σ_{j≤γ} r_j / r_|V| + γ + 1)`` with rates sorted
    descending.
    """
    if len(sorted_rates_desc) != node_count:
        raise ValueError("need one rate per node")
    if any(
        sorted_rates_desc[i] < sorted_rates_desc[i + 1]
        for i in range(node_count - 1)
    ):
        raise ValueError("rates must be sorted in descending order")
    slowest = sorted_rates_desc[-1]
    if slowest <= 0:
        raise ValueError("rates must be positive")
    micro_loop_term = sum(sorted_rates_desc[:gamma]) / slowest
    return (node_count + gamma) * (micro_loop_term + gamma + 1)
