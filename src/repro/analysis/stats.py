"""Multi-seed experiment statistics.

The paper reports single-run curves; a careful reproduction wants
means and confidence intervals over seeds.  This module aggregates
repeated experiment runs: per-point mean, sample standard deviation and
a normal-approximation confidence interval (exact Student-t constants
for the small seed counts actually used).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

#: Two-sided 95% Student-t critical values by degrees of freedom.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
}


def t_critical_95(dof: int) -> float:
    """95% two-sided t value; 1.96 beyond the tabulated range."""
    if dof < 1:
        raise ValueError("need at least two samples for an interval")
    return _T_95.get(dof, 1.96)


@dataclass(frozen=True)
class SeriesStats:
    """Pointwise statistics of repeated series."""

    mean: List[float]
    std: List[float]
    ci_half_width: List[float]
    runs: int

    def lower(self) -> List[float]:
        """Mean minus the CI half-width, pointwise."""
        return [m - h for m, h in zip(self.mean, self.ci_half_width)]

    def upper(self) -> List[float]:
        """Mean plus the CI half-width, pointwise."""
        return [m + h for m, h in zip(self.mean, self.ci_half_width)]


def aggregate_series(runs: Sequence[Sequence[float]]) -> SeriesStats:
    """Pointwise mean/std/95%-CI across repeated series.

    All runs must have equal length.  A single run yields zero-width
    intervals (no variance information).
    """
    if not runs:
        raise ValueError("need at least one run")
    length = len(runs[0])
    if any(len(r) != length for r in runs):
        raise ValueError("all runs must have the same number of points")
    n = len(runs)
    mean, std, half = [], [], []
    for i in range(length):
        points = [r[i] for r in runs]
        m = sum(points) / n
        mean.append(m)
        if n > 1:
            variance = sum((p - m) ** 2 for p in points) / (n - 1)
            s = math.sqrt(variance)
            std.append(s)
            half.append(t_critical_95(n - 1) * s / math.sqrt(n))
        else:
            std.append(0.0)
            half.append(0.0)
    return SeriesStats(mean=mean, std=std, ci_half_width=half, runs=n)


def repeat_experiment(
    run: Callable[[int], Sequence[float]], seeds: Sequence[int]
) -> SeriesStats:
    """Run ``run(seed)`` for each seed and aggregate the series."""
    return aggregate_series([list(run(seed)) for seed in seeds])


def compare_final_points(
    a_runs: Sequence[Sequence[float]], b_runs: Sequence[Sequence[float]]
) -> Dict[str, float]:
    """Welch's t-test on the final points of two experiment groups.

    Returns the t statistic, approximate degrees of freedom and the
    group means — enough to judge whether a measured gap (e.g. 2LDAG
    vs PBFT storage) is noise.
    """
    a = [r[-1] for r in a_runs]
    b = [r[-1] for r in b_runs]
    if len(a) < 2 or len(b) < 2:
        raise ValueError("need at least two runs per group")
    mean_a = sum(a) / len(a)
    mean_b = sum(b) / len(b)
    var_a = sum((x - mean_a) ** 2 for x in a) / (len(a) - 1)
    var_b = sum((x - mean_b) ** 2 for x in b) / (len(b) - 1)
    se = math.sqrt(var_a / len(a) + var_b / len(b))
    if se == 0:
        t_stat = math.inf if mean_a != mean_b else 0.0
        dof = float(len(a) + len(b) - 2)
    else:
        t_stat = (mean_a - mean_b) / se
        numerator = (var_a / len(a) + var_b / len(b)) ** 2
        denominator = (
            (var_a / len(a)) ** 2 / (len(a) - 1)
            + (var_b / len(b)) ** 2 / (len(b) - 1)
        )
        dof = numerator / denominator if denominator else float(len(a) + len(b) - 2)
    return {"t": t_stat, "dof": dof, "mean_a": mean_a, "mean_b": mean_b}
