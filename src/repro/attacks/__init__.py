"""Adversarial behaviours and attack scenarios (§IV-D).

Behaviour classes plug into :class:`repro.core.node.IoTNode` via the
``behavior`` parameter; scenario helpers wire whole coalitions:

* :class:`SilentResponder` — never answers PoP queries (the "malicious
  nodes" of Fig. 5 and Fig. 9);
* :class:`CorruptResponder` — answers with tampered headers (MITM-style
  corruption; rejected by signature/digest checks);
* :class:`EquivocatingResponder` — answers with a genuine but wrong
  header (rejected by the digest comparison of Algorithm 3 line 21);
* :class:`SelfishNode` — §IV-D-6: participates in generation but never
  serves others;
* :class:`DosFlooder` — §IV-D-5: pushes digests faster than the nonce
  puzzle permits;
* :func:`eclipse_victim` — drop rule isolating a victim's PoP traffic;
* :func:`sybil_identities` — §IV-D-3: forged identities that fail
  registry checks;
* :func:`make_coalition` — pick γ-sized malicious coalitions for the
  majority-attack experiments.
"""

from repro.attacks.behaviors import (
    CorruptResponder,
    DosFlooder,
    EquivocatingResponder,
    SelfishNode,
    SilentResponder,
)
from repro.attacks.defenses import DigestRateLimiter, RateLimitedBehavior
from repro.attacks.eclipse import eclipse_victim
from repro.attacks.majority import make_coalition
from repro.attacks.sybil import SybilIdentity, sybil_identities

__all__ = [
    "CorruptResponder",
    "DigestRateLimiter",
    "DosFlooder",
    "RateLimitedBehavior",
    "EquivocatingResponder",
    "SelfishNode",
    "SilentResponder",
    "SybilIdentity",
    "eclipse_victim",
    "make_coalition",
    "sybil_identities",
]
