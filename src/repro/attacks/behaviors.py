"""Per-node adversarial behaviours.

Each class overrides one or more :class:`repro.core.node.NodeBehavior`
hooks.  Nodes running these behaviours still *generate* blocks and
digests normally unless noted — the paper's threat model is captured
devices that keep their place in the topology but subvert the
verification protocol.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.block import DataBlock
from repro.core.node import IoTNode, NodeBehavior
from repro.core.pop.messages import BlockFetch, ReqChild, RpyChild
from repro.crypto.hashing import hash_bytes


class SilentResponder(NodeBehavior):
    """Never replies to PoP queries (validator times out, Fig. 5).

    This is the canonical "malicious node" of the evaluation: it
    withholds cooperation, forcing validators to route paths around it.
    """

    def answer_req_child(self, node: IoTNode, request: ReqChild) -> Optional[RpyChild]:
        return None

    def answer_block_fetch(self, node: IoTNode, request: BlockFetch) -> Optional[DataBlock]:
        return None


class CorruptResponder(NodeBehavior):
    """Replies with a tampered header (flipped Merkle root).

    The signature no longer covers the mutated fields, so validators
    reject the reply (Eq. 6 check) — exercised by the
    man-in-the-middle defence tests (§IV-D-4).
    """

    def answer_req_child(self, node: IoTNode, request: ReqChild) -> Optional[RpyChild]:
        honest = super().answer_req_child(node, request)
        if honest is None or honest.header is None:
            return honest
        header = honest.header
        tampered_root = hash_bytes(b"tampered:" + header.root.value, header.root.bits)
        return RpyChild(header=replace(header, root=tampered_root))


class EquivocatingResponder(NodeBehavior):
    """Replies with a genuine own header that does NOT reference the digest.

    The header authenticates (it is really ours), but the
    ``GetDigest(b^h, v)`` comparison of Algorithm 3 line 21 fails, so
    the validator skips us.  Models a node trying to graft the path
    onto an unrelated branch.
    """

    def answer_req_child(self, node: IoTNode, request: ReqChild) -> Optional[RpyChild]:
        latest = node.store.latest
        if latest is None:
            return None
        honest = super().answer_req_child(node, request)
        if honest is not None and honest.header is not None:
            # Deliberately send some block that is NOT the requested child.
            for block in node.store:
                if block.header.block_id != honest.header.block_id:
                    return RpyChild(header=block.header)
        return RpyChild(header=latest.header)


class SelfishNode(NodeBehavior):
    """§IV-D-6: free-rides — generates blocks but never serves queries.

    Functionally identical to :class:`SilentResponder` at the protocol
    level; kept distinct so penalty-mechanism experiments can treat
    selfishness (recoverable, node may resume cooperating) differently
    from capture.
    """

    def __init__(self) -> None:
        self.cooperating = False

    def answer_req_child(self, node: IoTNode, request: ReqChild) -> Optional[RpyChild]:
        if not self.cooperating:
            return None
        return super().answer_req_child(node, request)

    def answer_block_fetch(self, node: IoTNode, request: BlockFetch) -> Optional[DataBlock]:
        if not self.cooperating:
            return None
        return super().answer_block_fetch(node, request)

    def resume_cooperation(self) -> None:
        """The node starts serving again (to exit neighbours' blacklists)."""
        self.cooperating = True


class DosFlooder(NodeBehavior):
    """§IV-D-5: floods neighbours with digests beyond the puzzle rate.

    The flood happens out-of-band of normal generation: call
    :meth:`flood` to emit ``count`` junk digests.  Honest receivers
    rate-limit via :class:`DigestRateLimiter` (see
    :mod:`repro.attacks.defenses`) and ban the flooder.
    """

    def flood(self, node: IoTNode, count: int) -> None:
        """Emit ``count`` junk digests to all neighbours."""
        for i in range(count):
            junk = hash_bytes(f"junk:{node.node_id}:{i}".encode(), node.config.hash_bits)
            node.interface.broadcast_neighbors(
                "digest", (node.node_id, junk), node.config.digest_message_bits
            )
