"""Defence mechanisms the paper sketches (§IV-D).

* :class:`DigestRateLimiter` — the DoS defence: "a node may ban a
  neighbour that generates blocks quicker than the expected time to
  solve the puzzle" (§IV-D-5).
* :class:`RateLimitedBehavior` — plugs the limiter into an honest
  node's digest admission hook.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Set

from repro.core.node import IoTNode, NodeBehavior
from repro.net.messages import Message


class DigestRateLimiter:
    """Bans neighbours that push digests faster than the puzzle allows.

    Parameters
    ----------
    min_interval:
        Expected minimum time between honest blocks (the puzzle's
        solve time); sustained arrivals faster than this are abusive.
    burst:
        Tolerated burst length before banning (honest jitter allowance).
    """

    def __init__(self, min_interval: float = 0.5, burst: int = 3) -> None:
        self.min_interval = min_interval
        self.burst = burst
        self._arrivals: Dict[int, Deque[float]] = defaultdict(deque)
        self.banned: Set[int] = set()

    def admit(self, sender: int, now: float) -> bool:
        """Record an arrival; ``False`` means drop (and ban) the sender."""
        if sender in self.banned:
            return False
        window = self._arrivals[sender]
        window.append(now)
        # Keep only the last `burst + 1` arrivals.
        while len(window) > self.burst + 1:
            window.popleft()
        if len(window) == self.burst + 1:
            span = window[-1] - window[0]
            if span < self.min_interval * self.burst:
                self.banned.add(sender)
                return False
        return True

    def unban(self, sender: int) -> None:
        """Lift a ban (e.g. after the §IV-D-6 penance period)."""
        self.banned.discard(sender)
        self._arrivals.pop(sender, None)


class RateLimitedBehavior(NodeBehavior):
    """Honest behaviour + digest admission control."""

    def __init__(self, limiter: DigestRateLimiter = None) -> None:
        self.limiter = limiter if limiter is not None else DigestRateLimiter()

    def should_process_digest(self, node: IoTNode, message: Message) -> bool:
        return self.limiter.admit(message.sender, node.network.sim.now)
