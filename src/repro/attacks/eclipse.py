"""Eclipse attack: isolating a victim from the rest of the network.

An eclipse attacker controls the victim's links and filters traffic.
Modelled as a transport drop rule: PoP messages crossing the victim's
edges are discarded, while digest gossip may be allowed through
(partial eclipse) or not (full eclipse).
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.net.messages import Message
from repro.net.transport import DropRule


def eclipse_victim(victim: int, block_kinds: Iterable[str] = ("req_child", "rpy_child", "block_fetch", "block_data")) -> DropRule:
    """Drop rule eclipsing ``victim`` for the given message kinds.

    Install with :meth:`repro.net.transport.Network.add_drop_rule`.
    Any matching message entering or leaving the victim's radio is
    eaten by the attacker.
    """
    kinds: Set[str] = set(block_kinds)

    def rule(message: Message, hop_from: int, hop_to: int) -> bool:
        if message.kind not in kinds:
            return False
        return hop_from == victim or hop_to == victim

    return rule
