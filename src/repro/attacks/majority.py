"""Majority-attack scenario helpers (§IV-D-2, Fig. 9).

In 2LDAG a node never replaces its own blocks, so a classic 51%
rewrite is impossible; what a coalition *can* do is refuse to serve
PoP, forcing longer paths or consensus failure.  These helpers build
such coalitions for the Fig. 9 experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.attacks.behaviors import SilentResponder
from repro.core.node import NodeBehavior
from repro.net.topology import Topology
from repro.sim.rng import RandomStreams


def make_coalition(
    topology: Topology,
    size: int,
    streams: RandomStreams,
    stream_name: str = "coalition",
    behavior_factory: Optional[Callable[[], NodeBehavior]] = None,
    protect: Optional[List[int]] = None,
) -> Dict[int, NodeBehavior]:
    """Pick ``size`` malicious nodes uniformly and assign behaviours.

    Parameters
    ----------
    protect:
        Node ids that must stay honest (e.g. the experiment's fixed
        validator/verifier pair).
    behavior_factory:
        Behaviour per coalition member; silent responders by default.

    Returns a ``behaviors`` mapping for
    :class:`~repro.core.protocol.TwoLayerDagNetwork`.
    """
    if behavior_factory is None:
        behavior_factory = SilentResponder
    protected = set(protect or [])
    eligible = [n for n in topology.node_ids if n not in protected]
    if size > len(eligible):
        raise ValueError(
            f"cannot pick {size} malicious nodes from {len(eligible)} eligible"
        )
    chosen = streams.sample(stream_name, sorted(eligible), size)
    return {node_id: behavior_factory() for node_id in chosen}
