"""Sybil attack: fake identities (§IV-D-3).

A Sybil attacker fabricates node identities to inflate its apparent
count.  2LDAG defeats this two ways, both modelled here:

1. ``R_i`` is a *set of unique physical nodes* — replaying the same
   malicious node under one identity cannot grow it (this falls out of
   the validator's set semantics, tested directly);
2. nodes know the topology and all public keys — an identity outside
   the :class:`~repro.crypto.keys.KeyRegistry` fails verification, so
   headers signed by fabricated keys are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.block import BlockHeader
from repro.crypto.keys import KeyPair
from repro.crypto.signature import sign


@dataclass(frozen=True)
class SybilIdentity:
    """A fabricated identity with a self-generated (unregistered) key."""

    claimed_id: int
    keypair: KeyPair

    def forge_header(self, template: BlockHeader) -> BlockHeader:
        """Re-sign a header under the fabricated identity.

        The forgery is internally consistent (signature verifies under
        the Sybil's own public key) — but that key is not in the
        registry, so validators reject it.
        """
        from dataclasses import replace

        unsigned = replace(template, origin=self.claimed_id, signature=b"")
        signature = sign(unsigned.signing_payload(), self.keypair)
        return replace(unsigned, signature=signature)


def sybil_identities(attacker: int, count: int, id_base: int = 10_000) -> List[SybilIdentity]:
    """Fabricate ``count`` identities controlled by ``attacker``.

    Ids start at ``id_base`` to avoid colliding with real nodes; keys
    are derived from the attacker's id so the attack is reproducible.
    """
    return [
        SybilIdentity(
            claimed_id=id_base + i,
            keypair=KeyPair.generate(id_base + i, seed=attacker),
        )
        for i in range(count)
    ]
