"""Comparison systems from the paper's evaluation (§VI).

The paper benchmarks 2LDAG against:

* **PBFT blockchain** — Castro-Liskov practical byzantine fault
  tolerance replicating one chain at every node
  (:mod:`repro.baselines.pbft`);
* **IOTA / Tangle** — the tokenless DAG ledger where every node stores
  the whole tangle and gossips every transaction
  (:mod:`repro.baselines.iota`).

Each baseline ships two faces:

1. a **real protocol implementation** driven by the shared simulation
   kernel (three-phase PBFT state machine; tangle with tip selection
   and gossip flooding) — used by the test suite and small-scale runs;
2. a **closed-form cost model** producing the exact storage and
   communication figures the protocol would accrue on the paper's
   50-node, 200-slot workload — used by the Fig. 7/8 experiment sweeps
   where simulating ~10^7 individual PBFT messages would be pointless.
   The test suite cross-validates the cost models against the real
   protocols on small configurations.
"""

from repro.baselines.iota.costmodel import IotaCostModel
from repro.baselines.iota.node import IotaNetwork
from repro.baselines.pbft.cluster import PbftCluster
from repro.baselines.pbft.costmodel import PbftCostModel

__all__ = [
    "IotaCostModel",
    "IotaNetwork",
    "PbftCluster",
    "PbftCostModel",
]
