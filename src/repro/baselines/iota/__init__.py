"""IOTA (Tangle) baseline.

The tokenless DAG blockchain of Popov's "The Tangle": every new
transaction approves two earlier transactions (tips), there are no
miners, and — the property Figs. 7-8 punish — **every node stores the
entire tangle** and every transaction is gossiped to the whole network.

``tangle``
    The DAG structure, tip tracking and cumulative weights.
``tip_selection``
    Uniform-random and weighted-random-walk (MCMC) tip selection.
``node``
    Gossip-flooding nodes over the shared wireless substrate.
``costmodel``
    Closed-form storage/traffic for the Fig. 7/8 sweeps.
"""

from repro.baselines.iota.costmodel import IotaCostModel
from repro.baselines.iota.node import IotaNetwork, IotaNode
from repro.baselines.iota.tangle import Tangle, Transaction
from repro.baselines.iota.tip_selection import select_tips_mcmc, select_tips_uniform

__all__ = [
    "IotaCostModel",
    "IotaNetwork",
    "IotaNode",
    "Tangle",
    "Transaction",
    "select_tips_mcmc",
    "select_tips_uniform",
]
