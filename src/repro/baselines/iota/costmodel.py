"""Closed-form IOTA cost model for the Fig. 7/8 sweeps.

Storage: every node stores every transaction (payload + tangle
overhead).  Communication: gossip flooding — the issuer transmits to
all its neighbours; every other node, on first receipt, retransmits to
all neighbours except the arrival link.  Total link transmissions per
transaction are therefore

    deg(source) + Σ_{v ≠ source} (deg(v) - 1)  =  2|E| - (|V| - 1).

The test suite validates the model against the live gossip
implementation on small topologies.
"""

from __future__ import annotations

from typing import List

from repro.baselines.iota.tangle import TX_OVERHEAD_BITS
from repro.net.topology import Topology


class IotaCostModel:
    """Exact flooding/storage figures for the slot workload."""

    def __init__(self, topology: Topology, payload_bits: int) -> None:
        self.topology = topology
        self.payload_bits = payload_bits
        self.n = topology.node_count
        self.edge_count = topology.edge_count()

    @property
    def tx_bits(self) -> int:
        """Wire/stored size of one transaction."""
        return self.payload_bits + TX_OVERHEAD_BITS

    def transmissions_per_tx(self) -> int:
        """Link transmissions to flood one transaction network-wide."""
        return 2 * self.edge_count - (self.n - 1)

    # -- storage (Fig. 7) -------------------------------------------------------
    def storage_bits_per_node(self, slots: int) -> float:
        """Full-tangle storage after ``slots`` slots (n tx per slot)."""
        return slots * self.n * self.tx_bits

    # -- communication (Fig. 8) ----------------------------------------------
    def tx_bits_total_per_slot(self) -> float:
        """Network-wide transmitted bits during one slot."""
        return self.n * self.transmissions_per_tx() * self.tx_bits

    def mean_tx_bits_per_node(self, slots: int) -> float:
        """Average per-node transmitted bits after ``slots`` slots."""
        return self.tx_bits_total_per_slot() * slots / self.n

    def storage_series_mb(self, slot_samples: List[int]) -> List[float]:
        """Fig. 7 series: storage (MB) at each sampled slot."""
        return [self.storage_bits_per_node(s) / 8e6 for s in slot_samples]

    def comm_series_mbit(self, slot_samples: List[int]) -> List[float]:
        """Fig. 8 series: mean per-node transmitted megabits by slot."""
        return [self.mean_tx_bits_per_node(s) / 1e6 for s in slot_samples]
