"""IOTA nodes with gossip flooding over the wireless substrate.

Each node keeps a full :class:`~repro.baselines.iota.tangle.Tangle`
replica.  A node that issues or first receives a transaction forwards
it to all physical neighbours (except the link it arrived on) — the
classic flood that gives every participant the whole graph, at the
communication cost Fig. 8 charges IOTA.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.baselines.iota.tangle import Tangle, Transaction
from repro.baselines.iota.tip_selection import select_tips_mcmc, select_tips_uniform
from repro.metrics.collector import StorageLedger, TrafficLedger
from repro.net.messages import Message
from repro.net.topology import Topology, sequential_geometric_topology
from repro.net.transport import Network, NodeInterface
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams

KIND_TX = "iota.tx"


class IotaNode:
    """One tangle participant."""

    def __init__(
        self,
        node_id: int,
        network: Network,
        rng: random.Random,
        tip_strategy: str = "uniform",
        mcmc_alpha: float = 0.01,
    ) -> None:
        if tip_strategy not in ("uniform", "mcmc"):
            raise ValueError(f"unknown tip strategy: {tip_strategy}")
        self.node_id = node_id
        self.network = network
        self.rng = rng
        self.tip_strategy = tip_strategy
        self.mcmc_alpha = mcmc_alpha
        self.tangle = Tangle()
        self._issued = 0
        #: A crashed node neither issues nor processes gossip until it
        #: comes back online (fault injection; radio receipt of frames
        #: addressed to a down node is still accounted by the network).
        self.online = True
        self.interface: NodeInterface = network.attach(node_id)
        self.interface.on(KIND_TX, self._on_transaction)

    # -- issuing --------------------------------------------------------------
    def _select_tips(self) -> List[bytes]:
        if self.tip_strategy == "mcmc":
            return select_tips_mcmc(self.tangle, self.rng, alpha=self.mcmc_alpha)
        return select_tips_uniform(self.tangle, self.rng)

    def issue(self, payload_bits: int) -> Transaction:
        """Create a transaction approving two tips and gossip it."""
        parents = tuple(self._select_tips())
        transaction = Transaction(
            issuer=self.node_id,
            index=self._issued,
            parents=parents,
            payload_seed=f"iota:{self.node_id}:{self._issued}".encode(),
            payload_bits=payload_bits,
            timestamp=self.network.sim.now,
        )
        self._issued += 1
        self.tangle.add(transaction)
        tracer = self.network.tracer
        if tracer.enabled:
            # Lifecycle emission for span collectors; the transaction
            # travels whole so the enabled path stays cheap — the
            # collector derives key/digest/parents only as needed.
            tracer.emit(
                self.network.sim.now, "iota.attach", self.node_id,
                tx=transaction,
            )
        self._forward(transaction, exclude=None)
        return transaction

    # -- gossip ---------------------------------------------------------------
    def _on_transaction(self, message: Message) -> None:
        if not self.online:
            return
        transaction: Transaction = message.payload
        if self.tangle.add(transaction):
            tracer = self.network.tracer
            if tracer.enabled:
                tracer.emit(
                    self.network.sim.now, "iota.received", self.node_id,
                    tx=transaction,
                )
            self._forward(transaction, exclude=message.sender)

    def _forward(self, transaction: Transaction, exclude: Optional[int]) -> None:
        for neighbor in sorted(self.network.topology.neighbors(self.node_id)):
            if neighbor != exclude:
                self.interface.send(neighbor, KIND_TX, transaction, transaction.size_bits)

    # -- accounting --------------------------------------------------------
    def storage_bits(self) -> int:
        """Full-tangle storage."""
        return self.tangle.size_bits()


class IotaNetwork:
    """All IOTA nodes plus the slot-driven issuance workload."""

    def __init__(
        self,
        topology: Optional[Topology] = None,
        payload_bits: int = 4_000_000,
        seed: int = 0,
        tip_strategy: str = "uniform",
        mcmc_alpha: float = 0.01,
        per_hop_latency: float = 0.001,
    ) -> None:
        self.streams = RandomStreams(seed)
        self.topology = (
            topology
            if topology is not None
            else sequential_geometric_topology(streams=self.streams)
        )
        self.payload_bits = payload_bits
        self.sim = Simulator()
        self.traffic = TrafficLedger()
        self.network = Network(
            self.sim,
            self.topology,
            ledger=self.traffic,
            per_hop_latency=per_hop_latency,
            category_fn=lambda kind: "iota",
        )
        self.nodes: Dict[int, IotaNode] = {
            node_id: IotaNode(
                node_id,
                self.network,
                rng=self.streams.get(f"iota:{node_id}"),
                tip_strategy=tip_strategy,
                mcmc_alpha=mcmc_alpha,
            )
            for node_id in self.topology.node_ids
        }
        self.current_slot = -1

    def run_slots(self, slots: int, settle_time: float = 2.0) -> None:
        """Every node issues one transaction per slot; gossip settles."""
        for _ in range(slots):
            self.current_slot += 1
            slot = self.current_slot
            # Never schedule behind the clock after a previous settle.
            slot_time = max(float(slot), self.sim.now)
            for node in self.nodes.values():
                if not node.online:
                    continue
                self.sim.call_at(
                    slot_time, lambda n=node: n.issue(self.payload_bits)
                )
            self.sim.run(until=slot_time + 1)
        self.sim.run(until=self.sim.now + settle_time)

    # -- measurement --------------------------------------------------------
    @property
    def node_ids(self) -> List[int]:
        """All node ids."""
        return self.topology.node_ids

    def tangles_consistent(self) -> bool:
        """Whether every node converged to the same transaction set."""
        sizes = {len(n.tangle) for n in self.nodes.values()}
        return len(sizes) == 1

    def storage_snapshot(self) -> StorageLedger:
        """Per-node tangle storage."""
        ledger = StorageLedger()
        for node_id, node in self.nodes.items():
            ledger.set_bits(node_id, "tangle", node.storage_bits())
        return ledger

    def mean_storage_bits(self) -> float:
        """Average per-node stored bits."""
        total = sum(n.storage_bits() for n in self.nodes.values())
        return total / len(self.nodes)
