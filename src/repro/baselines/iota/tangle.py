"""The Tangle: IOTA's transaction DAG.

Each transaction approves (references by hash) up to two earlier
transactions.  Tips are transactions with no approvers yet.  Cumulative
weight — the number of transactions directly or indirectly approving a
transaction — drives the weighted tip-selection walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.crypto.hashing import Digest, hash_fields

#: Transaction overhead besides the payload: two parent hashes, issuer
#: id, timestamp, nonce (IOTA's PoW), signature.
TX_OVERHEAD_BITS = 2 * 256 + 32 + 32 + 32 + 256


@dataclass(frozen=True)
class Transaction:
    """One tangle transaction carrying an IoT data block."""

    issuer: int
    index: int  # per-issuer sequence, for deterministic identity
    parents: Tuple[bytes, ...]  # digests of approved transactions
    payload_seed: bytes
    payload_bits: int
    timestamp: float

    def digest(self) -> Digest:
        """Content hash identifying the transaction.

        Memoised on the instance: every node re-derives the digest on
        gossip receipt and tangle insertion, always through the same
        shared transaction object, so after the first call this is an
        attribute read.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = hash_fields(
                [
                    self.issuer.to_bytes(4, "big"),
                    self.index.to_bytes(8, "big"),
                    *self.parents,
                    self.payload_seed,
                ]
            )
            object.__setattr__(self, "_digest", cached)
        return cached

    @property
    def size_bits(self) -> int:
        """Stored/wire size: payload plus protocol overhead."""
        return self.payload_bits + TX_OVERHEAD_BITS


class Tangle:
    """One node's replica of the full transaction DAG.

    In IOTA every participant needs the whole graph to validate new
    transactions — the storage cost the paper contrasts with 2LDAG.
    """

    def __init__(self) -> None:
        self._transactions: Dict[bytes, Transaction] = {}
        self._approvers: Dict[bytes, List[bytes]] = {}
        self._tips: Set[bytes] = set()
        self._order: List[bytes] = []  # insertion order, oldest first

    # -- construction ------------------------------------------------------
    def add(self, transaction: Transaction) -> bool:
        """Insert a transaction; returns ``False`` if already known.

        Parents need not be present (gossip may reorder); unknown
        parents are linked lazily when they arrive.
        """
        digest = transaction.digest().value
        if digest in self._transactions:
            return False
        self._transactions[digest] = transaction
        self._order.append(digest)
        self._approvers.setdefault(digest, [])
        is_tip = True
        for parent in transaction.parents:
            self._approvers.setdefault(parent, []).append(digest)
            self._tips.discard(parent)
        # A new transaction is a tip until something approves it; handle
        # the out-of-order case where an approver arrived first.
        if self._approvers[digest]:
            is_tip = False
        if is_tip:
            self._tips.add(digest)
        return True

    # -- queries -------------------------------------------------------------
    def __contains__(self, digest: bytes) -> bool:
        return digest in self._transactions

    def __len__(self) -> int:
        return len(self._transactions)

    def get(self, digest: bytes) -> Optional[Transaction]:
        """Transaction by digest, if known."""
        return self._transactions.get(digest)

    def transactions(self) -> List[Transaction]:
        """All transactions, in insertion order."""
        return [self._transactions[digest] for digest in self._order]

    def tips(self) -> List[bytes]:
        """Digests of unapproved transactions, in insertion order."""
        order_index = {d: i for i, d in enumerate(self._order)}
        return sorted(self._tips, key=lambda d: order_index[d])

    def approvers(self, digest: bytes) -> List[bytes]:
        """Direct approvers of a transaction."""
        return list(self._approvers.get(digest, []))

    def genesis_digests(self) -> List[bytes]:
        """Transactions with no parents."""
        return [d for d, t in self._transactions.items() if not t.parents]

    def cumulative_weight(self, digest: bytes) -> int:
        """Own weight plus all direct/indirect approvers (BFS)."""
        seen: Set[bytes] = set()
        frontier = [digest]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._approvers.get(current, []))
        return len(seen)

    def is_consistent(self) -> bool:
        """All referenced parents are present (steady-state check)."""
        return all(
            parent in self._transactions
            for t in self._transactions.values()
            for parent in t.parents
        )

    def size_bits(self) -> int:
        """Full-tangle storage — the per-node cost Fig. 7 charges IOTA."""
        return sum(t.size_bits for t in self._transactions.values())
