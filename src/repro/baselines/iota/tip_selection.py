"""Tip selection strategies.

IOTA's whitepaper describes two: uniform random selection among current
tips, and the Markov-chain Monte Carlo weighted walk, where a walker
starts deep in the tangle and steps toward approvers with probability
proportional to ``exp(alpha * delta_weight)``, favouring the heavy
(honest-majority) subtangle.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.baselines.iota.tangle import Tangle


def select_tips_uniform(tangle: Tangle, rng: random.Random, count: int = 2) -> List[bytes]:
    """Uniform random tips (with replacement when too few exist)."""
    tips = tangle.tips()
    if not tips:
        return []
    if len(tips) >= count:
        return rng.sample(tips, count)
    return [rng.choice(tips) for _ in range(count)]


def _walk_once(tangle: Tangle, rng: random.Random, alpha: float, start: bytes) -> bytes:
    """One weighted walk from ``start`` to a tip."""
    current = start
    while True:
        approvers = tangle.approvers(current)
        if not approvers:
            return current
        if alpha <= 0:
            current = rng.choice(approvers)
            continue
        weights = [tangle.cumulative_weight(a) for a in approvers]
        top = max(weights)
        # exp normalised against the max to avoid overflow.
        probabilities = [math.exp(alpha * (w - top)) for w in weights]
        total = sum(probabilities)
        draw = rng.uniform(0.0, total)
        accumulated = 0.0
        for approver, probability in zip(approvers, probabilities):
            accumulated += probability
            if draw <= accumulated:
                current = approver
                break
        else:  # numeric edge: fall back to the last approver
            current = approvers[-1]


def select_tips_mcmc(
    tangle: Tangle,
    rng: random.Random,
    count: int = 2,
    alpha: float = 0.01,
) -> List[bytes]:
    """Weighted-random-walk (MCMC) tip selection.

    Walkers start from a genesis transaction; ``alpha`` controls how
    strongly the walk prefers heavy branches (0 degenerates to an
    unweighted walk).
    """
    starts = tangle.genesis_digests()
    if not starts:
        return []
    selected: List[bytes] = []
    for _ in range(count):
        start = rng.choice(starts)
        selected.append(_walk_once(tangle, rng, alpha, start))
    return selected
