"""PBFT blockchain baseline.

A faithful (if compact) implementation of the Castro-Liskov three-phase
protocol — PRE-PREPARE / PREPARE / COMMIT with ``f = ⌊(n-1)/3⌋`` — in
which every IoT node is a replica, every generated data block is a
client request, and every replica stores the full replicated chain.
That full replication is exactly what makes PBFT unsuitable for
constrained devices, and what Figs. 7-8 quantify.
"""

from repro.baselines.pbft.chain import Blockchain, ChainBlock
from repro.baselines.pbft.cluster import PbftCluster
from repro.baselines.pbft.costmodel import PbftCostModel
from repro.baselines.pbft.replica import PbftReplica

__all__ = ["Blockchain", "ChainBlock", "PbftCluster", "PbftCostModel", "PbftReplica"]
