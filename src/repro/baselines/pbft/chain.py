"""The replicated chain each PBFT replica stores.

Blocks are chained by header hash; every replica holds the full chain
(the storage burden Fig. 7 measures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.crypto.hashing import Digest, hash_fields

#: Bits of chain-block metadata besides the payload: previous-hash (256),
#: proposer id (32), sequence (64), timestamp (32), signature (256).
CHAIN_HEADER_BITS = 256 + 32 + 64 + 32 + 256


@dataclass(frozen=True)
class ChainBlock:
    """One committed block of the PBFT chain.

    ``payload_bits`` is the client data size (the IoT block body ``C``
    plus its application header); the consensus metadata adds
    :data:`CHAIN_HEADER_BITS`.
    """

    sequence: int
    proposer: int
    payload_seed: bytes
    payload_bits: int
    previous: Optional[Digest]

    def digest(self) -> Digest:
        """Hash chaining this block to its predecessor."""
        return hash_fields(
            [
                self.sequence.to_bytes(8, "big"),
                self.proposer.to_bytes(4, "big"),
                self.payload_seed,
                (self.previous.value if self.previous is not None else b""),
            ]
        )

    @property
    def size_bits(self) -> int:
        """Stored size: payload plus chain metadata."""
        return self.payload_bits + CHAIN_HEADER_BITS


class Blockchain:
    """An append-only hash-linked chain."""

    def __init__(self) -> None:
        self._blocks: List[ChainBlock] = []

    def append(self, block: ChainBlock) -> None:
        """Append after validating sequence and hash linkage."""
        if block.sequence != len(self._blocks):
            raise ValueError(
                f"sequence gap: got {block.sequence}, expected {len(self._blocks)}"
            )
        expected_previous = self._blocks[-1].digest() if self._blocks else None
        if block.previous != expected_previous:
            raise ValueError(f"previous-hash mismatch at sequence {block.sequence}")
        self._blocks.append(block)

    @property
    def height(self) -> int:
        """Number of committed blocks."""
        return len(self._blocks)

    @property
    def head(self) -> Optional[ChainBlock]:
        """Latest block, if any."""
        return self._blocks[-1] if self._blocks else None

    def block_at(self, sequence: int) -> ChainBlock:
        """Block with the given sequence number."""
        return self._blocks[sequence]

    def size_bits(self) -> int:
        """Total stored bits — every replica pays this in full."""
        return sum(b.size_bits for b in self._blocks)

    def tip_digest(self) -> Optional[Digest]:
        """Digest of the head block (``None`` for an empty chain)."""
        head = self.head
        return head.digest() if head is not None else None
