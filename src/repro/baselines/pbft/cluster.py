"""A wired PBFT deployment over the shared wireless substrate.

Every topology node runs a replica; each simulated slot, every live
node submits one client request carrying a ``C``-bit IoT data block —
the same workload :class:`~repro.core.protocol.SlotSimulation` drives
for 2LDAG, so storage/communication figures are directly comparable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.baselines.pbft.messages import Request
from repro.baselines.pbft.replica import PbftReplica
from repro.metrics.collector import StorageLedger, TrafficLedger
from repro.net.topology import Topology, sequential_geometric_topology
from repro.net.transport import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams


class PbftCluster:
    """All replicas plus the slot-driven client workload."""

    def __init__(
        self,
        topology: Optional[Topology] = None,
        payload_bits: int = 4_000_000,
        seed: int = 0,
        crashed: Optional[Set[int]] = None,
        view_change_timeout: float = 5.0,
        per_hop_latency: float = 0.001,
    ) -> None:
        self.streams = RandomStreams(seed)
        self.topology = (
            topology
            if topology is not None
            else sequential_geometric_topology(streams=self.streams)
        )
        self.payload_bits = payload_bits
        self.sim = Simulator()
        self.traffic = TrafficLedger()
        self.network = Network(
            self.sim,
            self.topology,
            ledger=self.traffic,
            per_hop_latency=per_hop_latency,
            category_fn=lambda kind: "pbft",
        )
        crashed = crashed or set()
        ids = self.topology.node_ids
        self.replicas: Dict[int, PbftReplica] = {
            node_id: PbftReplica(
                node_id,
                ids,
                self.network,
                view_change_timeout=view_change_timeout,
                crashed=node_id in crashed,
            )
            for node_id in ids
        }
        self.current_slot = -1

    # -- workload ---------------------------------------------------------
    def run_slots(self, slots: int, settle_time: float = 3.0) -> None:
        """Each live replica submits one C-bit request per slot."""
        for _ in range(slots):
            self.current_slot += 1
            slot = self.current_slot
            # Settle time from a previous call may have advanced the
            # clock past the nominal slot boundary; never schedule in
            # the past.
            slot_time = max(float(slot), self.sim.now)
            for node_id, replica in self.replicas.items():
                if replica.crashed:
                    continue
                request = Request(
                    client=node_id,
                    payload_seed=f"blk:{node_id}:{slot}".encode(),
                    payload_bits=self.payload_bits,
                    timestamp=float(slot),
                )
                self.sim.call_at(slot_time, lambda r=replica, q=request: r.submit(q))
            self.sim.run(until=slot_time + 1)
        # Let the three phases drain for the final slot's requests.
        self.sim.run(until=self.sim.now + settle_time)

    # -- fault injection ----------------------------------------------------
    def crash(self, node_ids) -> None:
        """Crash the named replicas: they stop sending and processing.

        Crashing the current primary is the PBFT view-change stress
        test — live replicas' timers expire and they elect a new view.
        """
        for node_id in node_ids:
            self.replicas[node_id].crashed = True

    def recover(self, node_ids) -> None:
        """Un-crash the named replicas.

        A recovered replica resumes protocol participation from its
        pre-crash state; there is no state transfer, so its chain only
        grows again once it can execute in sequence order (committed
        heights it missed stay deferred) — the honest cost of rejoining
        that the fault experiments measure.
        """
        for node_id in node_ids:
            self.replicas[node_id].crashed = False

    # -- measurement --------------------------------------------------------
    @property
    def node_ids(self) -> List[int]:
        """All replica ids."""
        return self.topology.node_ids

    def live_replicas(self) -> List[PbftReplica]:
        """Replicas that are not crashed."""
        return [r for r in self.replicas.values() if not r.crashed]

    def chains_consistent(self) -> bool:
        """Safety check: all live chains are prefixes of the longest."""
        chains = [r.chain for r in self.live_replicas()]
        longest = max(chains, key=lambda c: c.height)
        for chain in chains:
            for sequence in range(chain.height):
                if chain.block_at(sequence).digest() != longest.block_at(sequence).digest():
                    return False
        return True

    def min_height(self) -> int:
        """Lowest committed height among live replicas."""
        return min(r.chain.height for r in self.live_replicas())

    def storage_snapshot(self) -> StorageLedger:
        """Per-node chain storage."""
        ledger = StorageLedger()
        for node_id, replica in self.replicas.items():
            ledger.set_bits(node_id, "chain", replica.storage_bits())
        return ledger

    def mean_storage_bits(self) -> float:
        """Average per-replica stored bits."""
        total = sum(r.storage_bits() for r in self.replicas.values())
        return total / len(self.replicas)
