"""Closed-form PBFT cost model for the Fig. 7/8 sweeps.

Simulating 200 slots × 50 nodes of PBFT means ~10^7 routed control
messages; the aggregate storage/communication is nevertheless exactly
computable, because the normal-case protocol is deterministic:

per ordered request (one per live node per slot)

* REQUEST          client -> primary                 (payload + 320 b)
* PRE-PREPARE      primary -> n-1 replicas           (payload + 960 b each)
* PREPARE          every replica -> n-1 others       (640 b each)
* COMMIT           every replica -> n-1 others       (640 b each)

All unicasts are routed, so each transmission is charged once per hop,
using the same :class:`~repro.net.routing.RoutingTable` the live
implementation uses.  Storage: every replica stores every block
(payload + chain metadata).

The test suite validates this model against :class:`PbftCluster` on
small topologies (``tests/baselines/test_pbft_costmodel.py``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.pbft.chain import CHAIN_HEADER_BITS
from repro.baselines.pbft.messages import CONTROL_BITS
from repro.net.routing import RoutingTable
from repro.net.topology import Topology

#: REQUEST overhead on top of the payload (client id, timestamp, signature).
REQUEST_OVERHEAD_BITS = 32 + 32 + 256


class PbftCostModel:
    """Exact normal-case per-slot storage and traffic for PBFT.

    Parameters
    ----------
    topology:
        The shared wireless graph (hop counts matter: every unicast is
        charged per hop like the live transport does).
    payload_bits:
        Data-block payload size (the IoT ``C`` plus app header).
    """

    def __init__(self, topology: Topology, payload_bits: int) -> None:
        self.topology = topology
        self.payload_bits = payload_bits
        self.routing = RoutingTable(topology)
        self._ids = topology.node_ids
        self.n = len(self._ids)
        # Hop-count aggregates reused across slots.
        self._hops: Dict[int, Dict[int, int]] = {
            a: {b: self.routing.hop_count(a, b) for b in self._ids} for a in self._ids
        }

    # -- helpers ----------------------------------------------------------
    def _pairwise_hops_from(self, source: int) -> int:
        """Total hops from ``source`` to every other node."""
        return sum(h for b, h in self._hops[source].items() if b != source)

    # -- storage (Fig. 7) -------------------------------------------------------
    def storage_bits_per_node(self, slots: int) -> float:
        """Full-chain storage after ``slots`` slots (n blocks per slot)."""
        blocks = slots * self.n
        return blocks * (self.payload_bits + CHAIN_HEADER_BITS)

    # -- communication (Fig. 8) ----------------------------------------------
    def tx_bits_total_per_slot(self) -> float:
        """Network-wide transmitted bits during one slot (all hops)."""
        primary = self._ids[0]  # view 0; any fixed choice — aggregate is similar
        request_bits = self.payload_bits + REQUEST_OVERHEAD_BITS
        pre_prepare_bits = CONTROL_BITS + request_bits

        all_pairs_hops = sum(self._pairwise_hops_from(a) for a in self._ids)
        total = 0.0
        for client in self._ids:
            # REQUEST to the primary.
            total += self._hops[client][primary] * request_bits
        # One PRE-PREPARE fan-out and one PREPARE+COMMIT all-to-all round
        # per ordered request; n requests are ordered per slot.
        total += self.n * self._pairwise_hops_from(primary) * pre_prepare_bits
        total += self.n * all_pairs_hops * CONTROL_BITS * 2
        return total

    def mean_tx_bits_per_node(self, slots: int) -> float:
        """Average per-node transmitted bits after ``slots`` slots."""
        return self.tx_bits_total_per_slot() * slots / self.n

    def storage_series_mb(self, slot_samples: List[int]) -> List[float]:
        """Fig. 7 series: storage (MB) at each sampled slot."""
        return [self.storage_bits_per_node(s) / 8e6 for s in slot_samples]

    def comm_series_mbit(self, slot_samples: List[int]) -> List[float]:
        """Fig. 8 series: mean per-node transmitted megabits by slot."""
        return [self.mean_tx_bits_per_node(s) / 1e6 for s in slot_samples]
