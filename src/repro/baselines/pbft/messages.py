"""PBFT protocol messages and their wire sizes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest

KIND_REQUEST = "pbft.request"
KIND_PRE_PREPARE = "pbft.pre_prepare"
KIND_PREPARE = "pbft.prepare"
KIND_COMMIT = "pbft.commit"
KIND_VIEW_CHANGE = "pbft.view_change"
KIND_NEW_VIEW = "pbft.new_view"

#: Small-message overhead: view (32) + sequence (64) + digest (256) +
#: replica id (32) + signature (256).
CONTROL_BITS = 32 + 64 + 256 + 32 + 256


@dataclass(frozen=True)
class Request:
    """A client request: one IoT data block to be ordered."""

    client: int
    payload_seed: bytes
    payload_bits: int
    timestamp: float

    @property
    def size_bits(self) -> int:
        """Payload plus client id + timestamp + signature."""
        return self.payload_bits + 32 + 32 + 256


@dataclass(frozen=True)
class PrePrepare:
    """Primary's ordering proposal; carries the full request."""

    view: int
    sequence: int
    digest: Digest
    request: Request

    @property
    def size_bits(self) -> int:
        """Control fields plus the embedded request."""
        return CONTROL_BITS + self.request.size_bits


@dataclass(frozen=True)
class Prepare:
    """Replica's agreement on (view, sequence, digest)."""

    view: int
    sequence: int
    digest: Digest
    replica: int

    size_bits: int = CONTROL_BITS


@dataclass(frozen=True)
class Commit:
    """Replica's commit vote for (view, sequence, digest)."""

    view: int
    sequence: int
    digest: Digest
    replica: int

    size_bits: int = CONTROL_BITS


@dataclass(frozen=True)
class ViewChange:
    """Replica's request to move to ``new_view`` after primary silence."""

    new_view: int
    last_sequence: int
    replica: int

    size_bits: int = CONTROL_BITS


@dataclass(frozen=True)
class NewView:
    """New primary's announcement that ``view`` is active."""

    view: int
    last_sequence: int

    size_bits: int = CONTROL_BITS
