"""The PBFT replica state machine.

Implements the normal-case three-phase flow of Castro & Liskov (OSDI
'99) plus a minimal view change:

1. a client request reaches the primary (replicas forward);
2. the primary assigns a sequence number and sends ``PRE-PREPARE``
   (carrying the request) to every replica;
3. replicas multicast ``PREPARE``; once a replica has the pre-prepare
   and ``2f`` matching prepares it is *prepared* and multicasts
   ``COMMIT``;
4. once it has ``2f + 1`` matching commits it is *committed* and
   executes (appends to its chain) in sequence order;
5. a replica that forwarded a request and saw no execution within a
   timeout multicasts ``VIEW-CHANGE``; on ``2f + 1`` of those, the new
   primary announces ``NEW-VIEW`` and re-proposes pending requests.

Every message is a routed unicast on the shared wireless substrate, so
byte accounting is comparable with 2LDAG's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.pbft.chain import Blockchain, ChainBlock
from repro.baselines.pbft.messages import (
    KIND_COMMIT,
    KIND_NEW_VIEW,
    KIND_PRE_PREPARE,
    KIND_PREPARE,
    KIND_REQUEST,
    KIND_VIEW_CHANGE,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    Request,
    ViewChange,
)
from repro.crypto.hashing import Digest, hash_fields
from repro.net.messages import Message
from repro.net.transport import Network, NodeInterface


def request_digest(request: Request) -> Digest:
    """Canonical digest identifying a client request."""
    return hash_fields(
        [
            request.client.to_bytes(4, "big"),
            request.payload_seed,
            int(request.timestamp * 1_000_000).to_bytes(8, "big"),
        ]
    )


@dataclass
class _SlotState:
    """Per-(view, sequence) vote bookkeeping."""

    pre_prepare: Optional[PrePrepare] = None
    prepares: Set[int] = field(default_factory=set)
    commits: Set[int] = field(default_factory=set)
    sent_commit: bool = False
    executed: bool = False


class PbftReplica:
    """One replica; also acts as the client for its own data blocks."""

    def __init__(
        self,
        replica_id: int,
        replica_ids: List[int],
        network: Network,
        view_change_timeout: float = 5.0,
        crashed: bool = False,
    ) -> None:
        self.replica_id = replica_id
        self.replica_ids = sorted(replica_ids)
        self.n = len(self.replica_ids)
        self.f = (self.n - 1) // 3
        self.network = network
        self.view_change_timeout = view_change_timeout
        #: A crashed/byzantine-silent replica neither sends nor processes.
        self.crashed = crashed

        self.view = 0
        self.next_sequence = 0  # primary's ordering counter
        self.chain = Blockchain()
        self._slots: Dict[Tuple[int, int], _SlotState] = {}
        self._executed_digests: Set[bytes] = set()
        self._pending_requests: Dict[bytes, Request] = {}
        self._view_change_votes: Dict[int, Set[int]] = {}
        self._deferred: Dict[int, ChainBlock] = {}  # committed out of order

        self.interface: NodeInterface = network.attach(replica_id)
        self.interface.on(KIND_REQUEST, self._on_request)
        self.interface.on(KIND_PRE_PREPARE, self._on_pre_prepare)
        self.interface.on(KIND_PREPARE, self._on_prepare)
        self.interface.on(KIND_COMMIT, self._on_commit)
        self.interface.on(KIND_VIEW_CHANGE, self._on_view_change)
        self.interface.on(KIND_NEW_VIEW, self._on_new_view)

    # -- roles ----------------------------------------------------------------
    def primary_of(self, view: int) -> int:
        """Round-robin primary: ``replica_ids[view mod n]``."""
        return self.replica_ids[view % self.n]

    @property
    def is_primary(self) -> bool:
        """Whether this replica leads the current view."""
        return self.primary_of(self.view) == self.replica_id

    # -- client entry ------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Inject a client request originating at this node."""
        if self.crashed:
            return
        digest = request_digest(request)
        self._pending_requests[digest.value] = request
        tracer = self.network.tracer
        if tracer.enabled:
            # Lifecycle emissions for span collectors; detail reads are
            # guarded so disabled runs pay one predicate check.
            tracer.emit(
                self.network.sim.now, "pbft.request", self.replica_id,
                key=request.payload_seed.decode("utf-8", "replace"),
            )
        if self.is_primary:
            self._propose(request)
        else:
            self.interface.send(
                self.primary_of(self.view), KIND_REQUEST, request, request.size_bits
            )
        self._arm_view_change_timer(digest)

    def _arm_view_change_timer(self, digest: Digest) -> None:
        def check() -> None:
            if self.crashed or digest.value in self._executed_digests:
                return
            self._start_view_change(self.view + 1)

        self.network.sim.call_in(self.view_change_timeout, check)

    # -- primary ----------------------------------------------------------------
    def _propose(self, request: Request) -> None:
        sequence = self.next_sequence
        self.next_sequence += 1
        pre_prepare = PrePrepare(
            view=self.view,
            sequence=sequence,
            digest=request_digest(request),
            request=request,
        )
        self._broadcast(KIND_PRE_PREPARE, pre_prepare, pre_prepare.size_bits)
        self._accept_pre_prepare(pre_prepare)

    # -- message handlers -----------------------------------------------------
    def _on_request(self, message: Message) -> None:
        if self.crashed:
            return
        request: Request = message.payload
        digest = request_digest(request)
        if digest.value in self._executed_digests:
            return
        self._pending_requests[digest.value] = request
        if self.is_primary:
            self._propose(request)

    def _on_pre_prepare(self, message: Message) -> None:
        if self.crashed:
            return
        pre_prepare: PrePrepare = message.payload
        if message.sender != self.primary_of(pre_prepare.view):
            return  # only the view's primary may pre-prepare
        if pre_prepare.view != self.view:
            return
        self._accept_pre_prepare(pre_prepare)

    def _accept_pre_prepare(self, pre_prepare: PrePrepare) -> None:
        state = self._slot(pre_prepare.view, pre_prepare.sequence)
        if state.pre_prepare is not None:
            return
        if request_digest(pre_prepare.request) != pre_prepare.digest:
            return  # digest mismatch: equivocation attempt
        state.pre_prepare = pre_prepare
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(
                self.network.sim.now, "pbft.preprepare", self.replica_id,
                key=pre_prepare.request.payload_seed.decode("utf-8", "replace"),
                view=pre_prepare.view, seq=pre_prepare.sequence,
            )
        prepare = Prepare(
            view=pre_prepare.view,
            sequence=pre_prepare.sequence,
            digest=pre_prepare.digest,
            replica=self.replica_id,
        )
        state.prepares.add(self.replica_id)
        self._broadcast(KIND_PREPARE, prepare, prepare.size_bits)
        self._maybe_commit(state)

    def _on_prepare(self, message: Message) -> None:
        if self.crashed:
            return
        prepare: Prepare = message.payload
        if prepare.view != self.view or prepare.replica != message.sender:
            return
        state = self._slot(prepare.view, prepare.sequence)
        state.prepares.add(prepare.replica)
        self._maybe_commit(state)

    def _maybe_commit(self, state: _SlotState) -> None:
        """Prepared predicate: pre-prepare + 2f prepares (incl. own)."""
        if state.sent_commit or state.pre_prepare is None:
            return
        if len(state.prepares) < 2 * self.f:
            return
        state.sent_commit = True
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(
                self.network.sim.now, "pbft.prepared", self.replica_id,
                key=state.pre_prepare.request.payload_seed.decode(
                    "utf-8", "replace"
                ),
                view=state.pre_prepare.view, seq=state.pre_prepare.sequence,
            )
        commit = Commit(
            view=state.pre_prepare.view,
            sequence=state.pre_prepare.sequence,
            digest=state.pre_prepare.digest,
            replica=self.replica_id,
        )
        state.commits.add(self.replica_id)
        self._broadcast(KIND_COMMIT, commit, commit.size_bits)
        self._maybe_execute(state)

    def _on_commit(self, message: Message) -> None:
        if self.crashed:
            return
        commit: Commit = message.payload
        if commit.replica != message.sender:
            return
        state = self._slot(commit.view, commit.sequence)
        state.commits.add(commit.replica)
        self._maybe_execute(state)

    def _maybe_execute(self, state: _SlotState) -> None:
        """Committed predicate: prepared + 2f+1 commits; execute in order."""
        if state.executed or state.pre_prepare is None or not state.sent_commit:
            return
        if len(state.commits) < 2 * self.f + 1:
            return
        state.executed = True
        pre_prepare = state.pre_prepare
        request = pre_prepare.request
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(
                self.network.sim.now, "pbft.executed", self.replica_id,
                key=request.payload_seed.decode("utf-8", "replace"),
                view=pre_prepare.view, seq=pre_prepare.sequence,
            )
        self._executed_digests.add(pre_prepare.digest.value)
        self._pending_requests.pop(pre_prepare.digest.value, None)
        block = ChainBlock(
            sequence=pre_prepare.sequence,
            proposer=request.client,
            payload_seed=request.payload_seed,
            payload_bits=request.payload_bits,
            previous=None,  # fixed up at append time below
        )
        self._deferred[pre_prepare.sequence] = block
        self._drain_deferred()

    def _drain_deferred(self) -> None:
        while self.chain.height in self._deferred:
            pending = self._deferred.pop(self.chain.height)
            block = ChainBlock(
                sequence=pending.sequence,
                proposer=pending.proposer,
                payload_seed=pending.payload_seed,
                payload_bits=pending.payload_bits,
                previous=self.chain.tip_digest(),
            )
            self.chain.append(block)

    # -- view change ---------------------------------------------------------
    def _start_view_change(self, new_view: int) -> None:
        if new_view <= self.view:
            return
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(
                self.network.sim.now, "pbft.viewchange", self.replica_id,
                view=new_view,
            )
        vote = ViewChange(
            new_view=new_view, last_sequence=self.chain.height, replica=self.replica_id
        )
        self._view_change_votes.setdefault(new_view, set()).add(self.replica_id)
        self._broadcast(KIND_VIEW_CHANGE, vote, vote.size_bits)
        self._maybe_enter_view(new_view)

    def _on_view_change(self, message: Message) -> None:
        if self.crashed:
            return
        vote: ViewChange = message.payload
        if vote.replica != message.sender:
            return
        self._view_change_votes.setdefault(vote.new_view, set()).add(vote.replica)
        self._maybe_enter_view(vote.new_view)

    def _maybe_enter_view(self, new_view: int) -> None:
        votes = self._view_change_votes.get(new_view, set())
        if new_view <= self.view or len(votes) < 2 * self.f + 1:
            return
        self.view = new_view
        self.next_sequence = max(self.next_sequence, self.chain.height)
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(
                self.network.sim.now, "pbft.newview", self.replica_id,
                view=new_view,
            )
        if self.is_primary:
            announcement = NewView(view=new_view, last_sequence=self.chain.height)
            self._broadcast(KIND_NEW_VIEW, announcement, announcement.size_bits)
            self._repropose_pending()

    def _on_new_view(self, message: Message) -> None:
        if self.crashed:
            return
        announcement: NewView = message.payload
        if message.sender != self.primary_of(announcement.view):
            return
        if announcement.view > self.view:
            self.view = announcement.view
        # Re-forward anything we still want ordered to the new primary.
        for request in list(self._pending_requests.values()):
            self.interface.send(
                self.primary_of(self.view), KIND_REQUEST, request, request.size_bits
            )
            self._arm_view_change_timer(request_digest(request))

    def _repropose_pending(self) -> None:
        for request in list(self._pending_requests.values()):
            self._propose(request)

    # -- plumbing ---------------------------------------------------------
    def _slot(self, view: int, sequence: int) -> _SlotState:
        return self._slots.setdefault((view, sequence), _SlotState())

    def _broadcast(self, kind: str, payload, size_bits: int) -> None:
        """Point-to-point multicast to every other replica."""
        if self.crashed:
            return
        for other in self.replica_ids:
            if other != self.replica_id:
                self.interface.send(other, kind, payload, size_bits)

    # -- accounting --------------------------------------------------------
    def storage_bits(self) -> int:
        """Full-chain storage — what Fig. 7 charges PBFT nodes."""
        return self.chain.size_bits()
