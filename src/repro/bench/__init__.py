"""Performance benchmark harness (``python -m repro bench``).

Tracks the implementation's own speed across PRs: micro-benchmarks of
the hot primitives (header encoding/hashing, WPS scoring, kernel event
dispatch, DAG insertion) plus a medium :class:`SlotSimulation` workload
whose wall-clock, events/sec and blocks/sec are the headline numbers.

Results are written to ``BENCH_<rev>.json`` so the perf trajectory is
visible in the repository history, and compared against a committed
baseline (``benchmarks/baselines/BENCH_baseline.json``) — a tracked op
regressing more than :data:`~repro.bench.runner.REGRESSION_FACTOR`
makes the runner exit non-zero.

The macro workload also emits a canonical SHA-256 *trace digest* (see
:mod:`repro.bench.trace`): optimisations must keep seeded simulations
bit-identical, and the digest makes "same behaviour, less time"
checkable in one line.

``python -m repro bench history`` (:mod:`repro.bench.history`) renders
the trend across every accumulated document — the committed baselines
plus any ad-hoc runs — one row per op, oldest column first.
"""

from repro.bench.history import (
    BenchDocument,
    BenchHistory,
    discover_history,
    format_history_table,
    render_history,
)
from repro.bench.runner import (
    BenchResult,
    compare_to_baseline,
    default_output_name,
    run_benchmarks,
)
from repro.bench.trace import slot_simulation_trace_digest

__all__ = [
    "BenchDocument",
    "BenchHistory",
    "BenchResult",
    "compare_to_baseline",
    "default_output_name",
    "discover_history",
    "format_history_table",
    "render_history",
    "run_benchmarks",
    "slot_simulation_trace_digest",
]
