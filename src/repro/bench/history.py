"""Trend view over accumulated ``BENCH_<rev>.json`` documents.

Every ``python -m repro bench`` run writes one document; the committed
baselines live under ``benchmarks/baselines/`` and ad-hoc runs land in
the working directory.  ``python -m repro bench history`` reads *all*
of them and renders one row per tracked op with its value in every
document, oldest first, plus the latest-vs-oldest ratio — so a
regression shows up as a trend line, not just a single gate failure.

Discovery covers both locations (the baselines directory and the
repository root); root-level documents are flagged as strays, because
the durable home for benchmark evidence is ``benchmarks/baselines/``.
Documents are ordered by file modification time (then name) — bench
documents deliberately carry no wall-clock timestamp inside, and this
module is read-side tooling, outside every simulation path.

Micro ops compare on ``ns_per_op``; macro rows (``slot_sim*``) compare
on wall seconds, mirroring :func:`repro.bench.runner.compare_to_baseline`.
Fast-scale and full-scale documents measure different workloads, so
each document column is labelled with its scale and ratios are only
drawn between documents of the same scale as the newest one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.runner import BASELINE_RELPATH

#: Where documents are searched by default: the committed baselines
#: directory, then the repository root (strays, warned about).
BASELINES_DIR = os.path.dirname(BASELINE_RELPATH)

#: Documents look like ``BENCH_<rev>.json``.
BENCH_PREFIX = "BENCH_"


@dataclass
class BenchDocument:
    """One parsed ``BENCH_<rev>.json`` plus its provenance."""

    path: str
    rev: str
    fast: bool
    results: Dict[str, dict]
    mtime: float
    stray: bool = False

    @property
    def label(self) -> str:
        """The column label: the rev, scale-tagged when fast."""
        return f"{self.rev} (fast)" if self.fast else self.rev


@dataclass
class BenchHistory:
    """Every discovered document, oldest first, plus discovery notes."""

    documents: List[BenchDocument] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)


def _is_bench_document(name: str) -> bool:
    return name.startswith(BENCH_PREFIX) and name.endswith(".json")


def _parse_document(path: str, stray: bool) -> Optional[BenchDocument]:
    try:
        with open(path) as handle:
            raw = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(raw, dict) or not isinstance(raw.get("results"), dict):
        return None
    return BenchDocument(
        path=path,
        rev=str(raw.get("rev", "?")),
        fast=bool(raw.get("fast")),
        results=raw["results"],
        mtime=os.path.getmtime(path),
        stray=stray,
    )


def discover_history(
    root: str = ".", extra_paths: Sequence[str] = ()
) -> BenchHistory:
    """Find every bench document under ``root``.

    Looks in ``<root>/benchmarks/baselines/`` (the durable home) and
    ``<root>`` itself (strays from ad-hoc ``bench`` runs, which earn a
    relocation warning).  ``extra_paths`` adds explicit files, each
    required to exist.  Documents that fail to parse are skipped with a
    warning — history must render even next to a torn write.
    """
    history = BenchHistory()
    candidates: List[Tuple[str, bool]] = []
    baselines = os.path.join(root, BASELINES_DIR)
    if os.path.isdir(baselines):
        for name in sorted(os.listdir(baselines)):
            if _is_bench_document(name):
                candidates.append((os.path.join(baselines, name), False))
    for name in sorted(os.listdir(root) if os.path.isdir(root) else ()):
        if _is_bench_document(name):
            candidates.append((os.path.join(root, name), True))
    for raw in extra_paths:
        if not os.path.isfile(raw):
            raise FileNotFoundError(f"no such bench document: {raw}")
        candidates.append((raw, False))

    seen = set()
    for path, stray in candidates:
        key = os.path.abspath(path)
        if key in seen:
            continue
        seen.add(key)
        document = _parse_document(path, stray)
        if document is None:
            history.warnings.append(f"skipping unreadable bench document {path}")
            continue
        if stray:
            history.warnings.append(
                f"stray bench document {path} — move it into "
                f"{BASELINES_DIR}/ to keep it with the committed baselines"
            )
        history.documents.append(document)
    history.documents.sort(key=lambda d: (d.mtime, d.path))
    return history


def _op_value(result: dict) -> Optional[float]:
    """The compared quantity of one op row (see module docs)."""
    metrics = result.get("metrics") or {}
    if "wall_s" in metrics:
        value = metrics.get("wall_s")
    else:
        value = result.get("ns_per_op")
    try:
        number = float(value)
    except (TypeError, ValueError):
        return None
    return number if number > 0 else None


def _format_value(name: str, value: Optional[float]) -> str:
    if value is None:
        return "-"
    if name.startswith("slot_sim"):
        return f"{value:.3f}s"
    if value >= 1e6:
        return f"{value / 1e6:,.2f}ms"
    if value >= 1e3:
        return f"{value / 1e3:,.1f}us"
    return f"{value:,.0f}ns"


def format_history_table(history: BenchHistory) -> str:
    """One aligned text table: op rows x document columns + trend.

    The ``trend`` column is newest-value / oldest-same-scale-value for
    each op (>1 is slower); ops missing from either end show ``-``.
    """
    from repro.metrics.reporting import format_table

    documents = history.documents
    if not documents:
        return "no BENCH_*.json documents found"
    ops = sorted({name for doc in documents for name in doc.results})
    newest = documents[-1]
    comparable = [doc for doc in documents if doc.fast == newest.fast]
    oldest_same_scale = comparable[0]

    header = ["op"] + [doc.label for doc in documents] + ["trend"]
    rows: List[List[str]] = []
    for op in ops:
        row = [op]
        for doc in documents:
            result = doc.results.get(op)
            value = _op_value(result) if result is not None else None
            row.append(_format_value(op, value))
        first = oldest_same_scale.results.get(op)
        last = newest.results.get(op)
        first_value = _op_value(first) if first is not None else None
        last_value = _op_value(last) if last is not None else None
        if first_value and last_value and oldest_same_scale is not newest:
            row.append(f"{last_value / first_value:.2f}x")
        else:
            row.append("-")
        rows.append(row)
    return format_table(header, rows)


def render_history(
    root: str = ".", extra_paths: Sequence[str] = ()
) -> Tuple[str, List[str]]:
    """The ``bench history`` report body plus discovery warnings."""
    history = discover_history(root, extra_paths)
    lines = [format_history_table(history)]
    if history.documents:
        lines.append("")
        lines.append(
            f"{len(history.documents)} document(s), oldest first; "
            f"trend compares {history.documents[-1].label} against the "
            f"oldest same-scale document (>1.00x is slower)"
        )
        for doc in history.documents:
            marker = "  [stray]" if doc.stray else ""
            lines.append(f"  {doc.label:<24} {doc.path}{marker}")
    return "\n".join(lines), history.warnings
