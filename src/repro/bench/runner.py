"""Benchmark runner: timed micro-ops plus the slot-simulation macro.

Each micro-benchmark is a no-argument callable returning the number of
operations it performed; the harness calibrates a repeat count, times
several rounds and reports the *best* round (minimum is the standard
estimator for single-process benchmarks — slower rounds measure
interference, not the code).

Op set (tracked across PRs — renaming one silently drops its
regression coverage, so don't):

``header_encode_warm``     canonical header encoding, caches warm
``header_digest_cold``     header hash with identity caches cleared
``header_digest_warm``     header hash, caches warm (the common case:
                           every push/validate re-digests old headers)
``header_references``      Δ membership test (child-of check)
``header_verify_signature`` Eq. (6) check over the signing payload
``wire_encode_header``     wire-format serialization
``wps_select``             Algorithm 1 on a 50-node geometric topology
``kernel_callbacks``       schedule+dispatch of one-shot callbacks
``kernel_cancel_churn``    cancelled-event pops (lazy cancellation)
``dag_insert_chain``       LogicalDag insertion of a 200-header chain
``slot_sim``               the macro workload (wall seconds, events/s,
                           blocks/s and a canonical trace digest)
``slot_sim_faults``        the macro workload under a mid-run crash +
                           rejoin (the fault-engine overhead row)
``slot_sim_pbft``          the PBFT baseline backend's macro workload
``slot_sim_iota``          the IOTA baseline backend's macro workload
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: A tracked op slower than ``baseline * REGRESSION_FACTOR`` fails the run.
REGRESSION_FACTOR = 2.0

#: Every op the harness knows (the valid values for ``--only``).
TRACKED_OPS = (
    "header_encode_warm",
    "header_digest_cold",
    "header_digest_warm",
    "header_references",
    "header_verify_signature",
    "wire_encode_header",
    "wps_select",
    "kernel_callbacks",
    "kernel_cancel_churn",
    "dag_insert_chain",
    "slot_sim",
    "slot_sim_faults",
    "slot_sim_pbft",
    "slot_sim_iota",
)

#: Repository-relative location of the committed regression baseline.
BASELINE_RELPATH = os.path.join("benchmarks", "baselines", "BENCH_baseline.json")

#: Cache attributes BlockHeader memoises on first use (cleared by the
#: cold-path benchmarks; absent attributes are ignored, so this list
#: also works against builds without identity caching).
_HEADER_CACHE_ATTRS = (
    "_hdr_signing_payload",
    "_hdr_encoded",
    "_hdr_digest_by_bits",
    "_hdr_ref_values",
    "_hdr_wire",
)


@dataclass
class BenchResult:
    """One benchmark's outcome."""

    name: str
    ns_per_op: float
    ops_per_sec: float
    iterations: int
    rounds: int
    metrics: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "ns_per_op": self.ns_per_op,
            "ops_per_sec": self.ops_per_sec,
            "iterations": self.iterations,
            "rounds": self.rounds,
            "metrics": self.metrics,
        }


def _time_op(
    name: str,
    op: Callable[[], int],
    min_round_time: float,
    rounds: int,
) -> BenchResult:
    """Time ``op`` (which returns its op count) over several rounds."""
    # Calibrate: repeat the op within a round until a round is long
    # enough for the clock to resolve it meaningfully.
    ops_per_call = max(1, op())
    repeats = 1
    start = time.perf_counter()
    op()
    single = max(time.perf_counter() - start, 1e-9)
    while single * repeats < min_round_time:
        repeats *= 2
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            op()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    total_ops = ops_per_call * repeats
    ns_per_op = best * 1e9 / total_ops
    return BenchResult(
        name=name,
        ns_per_op=ns_per_op,
        ops_per_sec=1e9 / ns_per_op if ns_per_op > 0 else 0.0,
        iterations=total_ops,
        rounds=rounds,
    )


def _clear_header_caches(header) -> None:
    """Drop memoised identity state so the next digest() is cold."""
    for attr in _HEADER_CACHE_ATTRS:
        header.__dict__.pop(attr, None)


# -- fixture construction ----------------------------------------------------

def _build_header_pool(count: int, digests_per_header: int):
    from repro.core.block import build_block, make_body
    from repro.core.config import ProtocolConfig
    from repro.crypto.hashing import hash_bytes
    from repro.crypto.keys import KeyPair

    config = ProtocolConfig(body_bits=80_000, gamma=8)
    keypair = KeyPair.generate(1)
    headers = []
    for i in range(count):
        digests = {
            j: hash_bytes(f"d{i}:{j}".encode())
            for j in range(digests_per_header)
        }
        block = build_block(
            origin=1, index=i, time=float(i), body=make_body(1, i, config),
            digests=digests, keypair=keypair, config=config,
        )
        headers.append(block.header)
    return headers, keypair, config


def _build_chain_headers(length: int):
    from repro.core.block import build_block, make_body
    from repro.core.config import ProtocolConfig
    from repro.crypto.keys import KeyPair

    config = ProtocolConfig(body_bits=80_000, gamma=8)
    keypair = KeyPair.generate(1)
    headers = []
    previous = None
    for i in range(length):
        digests = {1: previous.digest()} if previous is not None else {}
        block = build_block(
            origin=1, index=i, time=float(i), body=make_body(1, i, config),
            digests=digests, keypair=keypair, config=config,
        )
        headers.append(block.header)
        previous = block
    return headers


# -- micro-benchmarks --------------------------------------------------------

def _micro_benchmarks(
    fast: bool, only: Optional[List[str]] = None
) -> List[Tuple[str, Callable[[], int]]]:
    """The micro op list; fixtures are built only for ops in ``only``.

    Building the header pool and chain means puzzle-solving and signing
    dozens of blocks, so a filtered run (``--only slot_sim``) must not
    pay for fixtures no selected op uses.
    """
    import random

    from repro.core import wire
    from repro.core.dag import LogicalDag
    from repro.core.pop.wps import weighted_path_selection
    from repro.crypto.hashing import hash_bytes
    from repro.net.topology import sequential_geometric_topology
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RandomStreams

    def wanted(*names: str) -> bool:
        return not only or any(name in only for name in names)

    benchmarks: List[Tuple[str, Callable[[], int]]] = []

    if wanted(
        "header_encode_warm", "header_digest_cold", "header_digest_warm",
        "header_references", "header_verify_signature", "wire_encode_header",
    ):
        pool_size = 16 if fast else 64
        headers, keypair, _config = _build_header_pool(pool_size, 8)
        hit = next(iter(headers[0].digests.values()))
        miss = hash_bytes(b"not-a-parent")

        def header_encode_warm() -> int:
            for header in headers:
                header.encode()
            return len(headers)

        def header_digest_cold() -> int:
            for header in headers:
                _clear_header_caches(header)
                header.digest()
            return len(headers)

        def header_digest_warm() -> int:
            for header in headers:
                header.digest()
            return len(headers)

        def header_references() -> int:
            first = headers[0]
            for header in headers:
                first.references(hit)
                header.references(miss)
            return 2 * len(headers)

        def header_verify_signature() -> int:
            public = keypair.public
            for header in headers:
                header.verify_signature(public)
            return len(headers)

        def wire_encode_header() -> int:
            for header in headers:
                wire.encode_header(header)
            return len(headers)

        benchmarks += [
            ("header_encode_warm", header_encode_warm),
            ("header_digest_cold", header_digest_cold),
            ("header_digest_warm", header_digest_warm),
            ("header_references", header_references),
            ("header_verify_signature", header_verify_signature),
            ("wire_encode_header", wire_encode_header),
        ]

    if wanted("wps_select"):
        topology = sequential_geometric_topology(
            node_count=50, streams=RandomStreams(1)
        )
        # Fixed-seed local RNGs: the microbench measures WPS wall time on
        # a frozen case set, outside any scenario's named streams.
        wps_rng = random.Random(0)  # repro: allow[unseeded-random]
        node_ids = topology.node_ids
        wps_cases = []
        case_rng = random.Random(7)  # repro: allow[unseeded-random]
        for _ in range(8 if fast else 32):
            node = case_rng.choice(node_ids)
            candidates = sorted(topology.neighbors(node)) or [node_ids[0]]
            consensus = set(case_rng.sample(node_ids, 10))
            wps_cases.append((consensus, candidates))

        def wps_select() -> int:
            for consensus, candidates in wps_cases:
                weighted_path_selection(consensus, candidates, topology, wps_rng)
            return len(wps_cases)

        benchmarks.append(("wps_select", wps_select))

    if wanted("kernel_callbacks", "kernel_cancel_churn"):
        kernel_events = 500 if fast else 5_000

        def kernel_callbacks() -> int:
            sim = Simulator()
            fired = [0]

            def tick() -> None:
                fired[0] += 1

            for i in range(kernel_events):
                sim.call_at(float(i % 17), tick)
            sim.run()
            return kernel_events

        def kernel_cancel_churn() -> int:
            sim = Simulator()
            handles = [sim.call_at(1.0, lambda: None) for _ in range(kernel_events)]
            for handle in handles[::2]:
                handle.cancel()
            sim.run()
            return kernel_events

        benchmarks.append(("kernel_callbacks", kernel_callbacks))
        benchmarks.append(("kernel_cancel_churn", kernel_cancel_churn))

    if wanted("dag_insert_chain"):
        chain = _build_chain_headers(50 if fast else 200)

        def dag_insert_chain() -> int:
            dag = LogicalDag()
            for header in chain:
                dag.add_header(header)
            return len(chain)

        benchmarks.append(("dag_insert_chain", dag_insert_chain))

    return benchmarks


# -- the macro workload -------------------------------------------------------

def _slot_sim_result(spec, wall, events, blocks, validations, success_rate,
                     trace_sha256, routed=False, cached=False) -> BenchResult:
    metrics = {
        "scenario": spec.name,
        "nodes": spec.node_count,
        "slots": spec.workload.slots,
        "gamma": spec.protocol.gamma,
        "wall_s": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "blocks": blocks,
        "blocks_per_sec": blocks / wall if wall > 0 else 0.0,
        "validations": validations,
        "success_rate": success_rate,
        "trace_sha256": trace_sha256,
    }
    if routed:
        metrics["campaign_routed"] = True
    if cached:
        metrics["cached"] = True
    return BenchResult(
        name="slot_sim",
        ns_per_op=wall * 1e9 / max(events, 1),
        ops_per_sec=events / wall if wall > 0 else 0.0,
        iterations=events,
        rounds=1,
        metrics=metrics,
    )


def _run_slot_sim(fast: bool, spec=None, executor=None, telemetry=None,
                  spans=None) -> BenchResult:
    """The macro workload, timed.

    Without an executor the workload runs inline (timing only the slot
    driving, exactly as the committed baselines were recorded).  With
    one, the run is submitted as a campaign cell — the worker-side wall
    time additionally covers deployment construction, so compare such
    numbers only against baselines recorded the same way.

    ``telemetry`` (a :class:`~repro.telemetry.events.TelemetryRecorder`)
    records the run's event stream *inside* the timed region — that is
    deliberate, so ``bench --telemetry`` measures the instrumentation
    overhead the docs/observability.md budget (< 1.10x) gates.
    ``spans`` (a :class:`~repro.telemetry.spans.SpanRecorder`) likewise
    puts the block-lifecycle collectors inside the timed region, so
    ``bench --telemetry DIR --trace-sample RATE`` measures the tracing
    budget the same way.  Both are ignored on the executor-routed path
    (cells run in worker processes).
    """
    from repro.bench.trace import slot_simulation_trace_digest
    from repro.scenario import ScenarioRunner, bench_scenario

    if spec is None:
        spec = bench_scenario(fast=fast)

    if executor is not None:
        from repro.campaign.executor import run_campaign
        from repro.campaign.spec import CampaignSpec, CellSpec

        campaign = CampaignSpec(
            name="bench-slot-sim", cells=(CellSpec(scenario=spec),)
        )
        cell = run_campaign(campaign, executor).cells[0]
        payload = cell.payload
        return _slot_sim_result(
            spec,
            wall=cell.elapsed_s,
            events=int(payload["events"]),
            blocks=int(payload["total_blocks"]),
            validations=int(payload["validations"]),
            success_rate=float(payload["success_rate"]),
            trace_sha256=str(payload["trace_sha256"]),
            routed=True,
            cached=cell.cached,
        )

    runner = ScenarioRunner(spec, telemetry=telemetry, spans=spans).build()
    workload_spec = spec.workload

    start = time.perf_counter()
    runner.advance_to(workload_spec.slots)
    if workload_spec.run_until_quiet:
        runner.workload.run_until_quiet(max_extra_time=workload_spec.quiet_time)
    wall = time.perf_counter() - start

    deployment, workload = runner.deployment, runner.workload
    return _slot_sim_result(
        spec,
        wall=wall,
        events=deployment.sim.processed_count,
        blocks=workload.total_blocks(),
        validations=len(workload.validations),
        success_rate=workload.success_rate(),
        trace_sha256=slot_simulation_trace_digest(workload),
    )


def _run_ledger_slot_sim(backend: str, fast: bool, telemetry=None,
                         spans=None) -> BenchResult:
    """A baseline backend's macro workload, timed end to end.

    Unlike the 2LDAG macro (which times only slot driving), deployment
    construction is cheap here, so the whole
    :class:`~repro.scenario.runner.ScenarioRunner` drive is timed —
    build, slots, settle, digest collection.
    """
    from repro.scenario import ScenarioRunner, ledger_bench_scenario

    spec = ledger_bench_scenario(backend, fast=fast)
    start = time.perf_counter()
    result = ScenarioRunner(spec, telemetry=telemetry, spans=spans).run()
    wall = time.perf_counter() - start
    bench = _slot_sim_result(
        spec,
        wall=wall,
        events=result.events,
        blocks=result.total_blocks,
        validations=result.validations,
        success_rate=result.success_rate,
        trace_sha256=result.trace_sha256,
    )
    bench.name = f"slot_sim_{backend}"
    bench.metrics["backend"] = backend
    return bench


# -- orchestration ------------------------------------------------------------

def run_benchmarks(
    fast: bool = False,
    only: Optional[List[str]] = None,
    log: Callable[[str], None] = lambda _msg: None,
    slot_sim_spec=None,
    executor=None,
    telemetry_dir: Optional[str] = None,
    trace_sample: Optional[float] = None,
) -> Dict[str, BenchResult]:
    """Run all (or ``only`` the named) benchmarks; returns name -> result.

    ``slot_sim_spec`` optionally replaces the macro workload's scenario
    (``python -m repro bench --scenario ...``); the default is the
    registered ``bench-fast`` / ``bench-full`` preset.  ``executor``
    routes the macro workload through the campaign engine (see
    :func:`_run_slot_sim` for the timing caveat).  ``telemetry_dir``
    records each macro workload's event stream there, inside the timed
    region — compare the ``slot_sim`` wall clock against a plain run to
    measure the instrumentation overhead.  ``trace_sample`` (requires
    ``telemetry_dir``) additionally records block-lifecycle trace
    streams at that sample rate, measuring the tracing budget the same
    way.
    """
    if trace_sample is not None and telemetry_dir is None:
        raise ValueError("trace_sample requires telemetry_dir")

    def _recorder():
        if telemetry_dir is None:
            return None
        from repro.telemetry import TelemetryRecorder

        return TelemetryRecorder(telemetry_dir)

    def _spans():
        if trace_sample is None:
            return None
        from repro.telemetry.spans import SpanRecorder

        return SpanRecorder(telemetry_dir, sample=trace_sample)

    min_round_time = 0.005 if fast else 0.1
    rounds = 2 if fast else 5
    results: Dict[str, BenchResult] = {}
    for name, op in _micro_benchmarks(fast, only):
        if only and name not in only:
            continue
        result = _time_op(name, op, min_round_time, rounds)
        results[name] = result
        log(f"{name:<26} {result.ns_per_op:>14,.0f} ns/op "
            f"({result.ops_per_sec:>14,.0f} ops/s)")
    if not only or "slot_sim" in only:
        result = _run_slot_sim(fast, spec=slot_sim_spec, executor=executor,
                               telemetry=_recorder(), spans=_spans())
        results["slot_sim"] = result
        metrics = result.metrics
        log(f"{'slot_sim':<26} {metrics['wall_s']:.3f} s wall, "
            f"{metrics['events_per_sec']:,.0f} events/s, "
            f"{metrics['blocks_per_sec']:,.0f} blocks/s, "
            f"trace {str(metrics['trace_sha256'])[:12]}…")
    if not only or "slot_sim_faults" in only:
        from repro.scenario import fault_bench_scenario

        result = _run_slot_sim(fast, spec=fault_bench_scenario(fast),
                               telemetry=_recorder(), spans=_spans())
        result.name = "slot_sim_faults"
        result.metrics["faulted"] = True
        results["slot_sim_faults"] = result
        metrics = result.metrics
        log(f"{'slot_sim_faults':<26} {metrics['wall_s']:.3f} s wall, "
            f"{metrics['events_per_sec']:,.0f} events/s, "
            f"{metrics['blocks_per_sec']:,.0f} blocks/s, "
            f"trace {str(metrics['trace_sha256'])[:12]}…")
    for backend in ("pbft", "iota"):
        name = f"slot_sim_{backend}"
        if only and name not in only:
            continue
        result = _run_ledger_slot_sim(backend, fast, telemetry=_recorder(),
                                      spans=_spans())
        results[name] = result
        metrics = result.metrics
        log(f"{name:<26} {metrics['wall_s']:.3f} s wall, "
            f"{metrics['events_per_sec']:,.0f} events/s, "
            f"trace {str(metrics['trace_sha256'])[:12]}…")
    return results


def git_revision() -> str:
    """Short git revision of the working tree, or ``norev``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if proc.returncode == 0 and proc.stdout.strip():
            return proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        # SubprocessError covers TimeoutExpired, which is not an OSError.
        pass
    return "norev"


def default_output_name(rev: Optional[str] = None) -> str:
    """``BENCH_<rev>.json``."""
    return f"BENCH_{rev if rev is not None else git_revision()}.json"


def results_to_json(
    results: Dict[str, BenchResult], fast: bool, rev: Optional[str] = None
) -> Dict[str, object]:
    """The serializable document written to ``BENCH_<rev>.json``."""
    return {
        "schema": 1,
        "rev": rev if rev is not None else git_revision(),
        "fast": fast,
        "results": {name: r.to_json() for name, r in sorted(results.items())},
    }


def compare_to_baseline(
    current: Dict[str, object], baseline: Dict[str, object]
) -> List[Tuple[str, float, bool]]:
    """Per-op slowdown ratios vs. a baseline document.

    Returns ``(name, ratio, regressed)`` for every op present in both
    documents; ``ratio`` is ``current_ns / baseline_ns`` (>1 is slower)
    and ``regressed`` flags ratios above :data:`REGRESSION_FACTOR`.
    Macro workloads (every ``slot_sim*`` row, baseline backends
    included) are compared on wall seconds — unless the current run
    routed the workload through the campaign executor
    (``campaign_routed``), whose wall time also covers deployment
    construction and is not comparable to serially recorded baselines;
    that row is skipped.  An op missing from the baseline document (a
    newly added row whose refreshed baseline has not landed yet) is
    skipped rather than failed.
    """
    rows: List[Tuple[str, float, bool]] = []
    current_results = current.get("results", {})
    baseline_results = baseline.get("results", {})
    for name in sorted(set(current_results) & set(baseline_results)):
        if name.startswith("slot_sim"):
            if current_results[name].get("metrics", {}).get("campaign_routed"):
                continue
            now = current_results[name].get("metrics", {}).get("wall_s")
            then = baseline_results[name].get("metrics", {}).get("wall_s")
        else:
            now = current_results[name].get("ns_per_op")
            then = baseline_results[name].get("ns_per_op")
        if not now or not then:
            continue
        ratio = float(now) / float(then)
        rows.append((name, ratio, ratio > REGRESSION_FACTOR))
    return rows


def load_baseline(path: str) -> Optional[Dict[str, object]]:
    """Parse a baseline document, or ``None`` if the file is absent."""
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)
