"""Canonical trace digests for determinism checks.

A *trace digest* is a SHA-256 over everything observable about a
finished :class:`~repro.core.protocol.SlotSimulation`: which blocks
were generated in which slot, every PoP outcome (success, consensus
set, path, message counts), the number of kernel events processed and
the final simulated clock.  Two runs with the same seed must produce
the same digest — this is the invariant every hot-path optimisation in
this codebase is held to (see ``docs/performance.md``).

The encoding is a plain line-oriented text format (stable across
Python versions — no ``repr`` of floats beyond ``!r`` of values the
simulation itself quantises, no dict iteration order dependence).
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.core.protocol import SlotSimulation


def slot_simulation_trace_lines(workload: SlotSimulation) -> List[str]:
    """The canonical text lines describing a finished workload."""
    deployment = workload.deployment
    lines: List[str] = []
    for slot in sorted(workload.blocks_by_slot):
        blocks = ",".join(str(b) for b in sorted(workload.blocks_by_slot[slot]))
        lines.append(f"slot {slot}: {blocks}")
    for record in workload.validations:
        outcome = record.outcome
        consensus = ",".join(str(n) for n in sorted(outcome.consensus_set))
        path = ",".join(str(h.block_id) for h in outcome.path)
        lines.append(
            f"pop validator={record.validator} verifier={record.verifier} "
            f"target={record.block_id} slot={record.slot_started} "
            f"success={outcome.success} error={outcome.error} "
            f"consensus=[{consensus}] path=[{path}] "
            f"req={outcome.requests_sent} rpy={outcome.replies_received} "
            f"timeouts={outcome.timeouts} invalid={outcome.invalid_replies} "
            f"tps={outcome.tps_steps} rollbacks={outcome.rollbacks}"
        )
    lines.append(f"events {deployment.sim.processed_count}")
    lines.append(f"now {deployment.sim.now!r}")
    lines.append(f"blocks {workload.total_blocks()}")
    return lines


def slot_simulation_trace_digest(workload: SlotSimulation) -> str:
    """Hex SHA-256 of the canonical trace of a finished workload."""
    payload = "\n".join(slot_simulation_trace_lines(workload)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()
