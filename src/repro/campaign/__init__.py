"""The campaign engine: parallel, cached, resumable scenario fleets.

Where :mod:`repro.scenario` makes one run a pure function of a
declarative spec, this package scales that property out: a
:class:`CampaignSpec` is an ordered set of cells (scenario + cell kind
+ params), and a :class:`CampaignExecutor` runs them concurrently
across worker processes, memoises each cell's result in a
content-addressed on-disk cache, and journals completions so an
interrupted fleet resumes where it left off.  Serial and parallel runs
are byte-identical — only wall-clock changes.

The executor is chaos-tolerant: failed attempts retry with
deterministic seeded backoff, hung cells are killed at a wall-clock
budget, a crashed worker pool respawns with only the lost cells
resubmitted, and ``keep_going`` quarantines incurable cells instead of
aborting the fleet.  A seeded :class:`ChaosSpec` (``$REPRO_CHAOS``)
injects harness faults on purpose to prove all of that converges to
byte-identical results — see :mod:`repro.campaign.chaos`.

Entry points: ``python -m repro campaign run/status/clean`` and the
``executor=`` parameter every multi-run experiment
(``fig7``/``fig8``/``fig9``, the sweeps, the attack comparison, the
bench macro) now accepts.  See ``docs/campaigns.md``.
"""

from repro.campaign.cache import (
    CACHE_ENV_VAR,
    ResultCache,
    default_cache_dir,
    payload_digest,
    summarize_cell_events,
)
from repro.campaign.cells import (
    cell_kind_names,
    execute_cell,
    register_cell_kind,
    run_scenario_cells,
)
from repro.campaign.chaos import (
    CHAOS_ENV_VAR,
    ChaosError,
    ChaosInjectedError,
    ChaosSpec,
    chaos_from_env,
    seeded_backoff,
)
from repro.campaign.dashboard import render_dashboard, write_dashboard
from repro.campaign.executor import (
    STATUS_SCHEMA_VERSION,
    CampaignExecutor,
    CampaignResult,
    CellFailure,
    CellResult,
    CellStatus,
    run_campaign,
)
from repro.campaign.presets import (
    campaign_names,
    get_campaign,
    register_campaign,
)
from repro.campaign.spec import (
    CAMPAIGN_CODE_VERSION,
    CAMPAIGN_FORMAT_VERSION,
    CampaignError,
    CampaignSpec,
    CellSpec,
    apply_override,
    expand_grid,
    replicate_seeds,
)

__all__ = [
    "STATUS_SCHEMA_VERSION",
    "CACHE_ENV_VAR",
    "CAMPAIGN_CODE_VERSION",
    "CAMPAIGN_FORMAT_VERSION",
    "CHAOS_ENV_VAR",
    "CampaignError",
    "CampaignExecutor",
    "CampaignResult",
    "CampaignSpec",
    "CellFailure",
    "CellResult",
    "CellSpec",
    "CellStatus",
    "ChaosError",
    "ChaosInjectedError",
    "ChaosSpec",
    "ResultCache",
    "apply_override",
    "campaign_names",
    "cell_kind_names",
    "chaos_from_env",
    "default_cache_dir",
    "execute_cell",
    "expand_grid",
    "get_campaign",
    "payload_digest",
    "register_campaign",
    "register_cell_kind",
    "render_dashboard",
    "replicate_seeds",
    "run_campaign",
    "run_scenario_cells",
    "seeded_backoff",
    "summarize_cell_events",
    "write_dashboard",
]
