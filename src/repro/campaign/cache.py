"""Content-addressed on-disk cache of cell results, plus run journals.

This is the repository's first durable artifact store.  Layout under
the cache root (``$REPRO_CACHE_DIR`` or ``.repro_cache/``)::

    cells/<d2>/<digest>.json       one finished cell's payload envelope
    journal/<campaign>.jsonl       append-only per-run completion log

Cell entries are keyed purely by the cell's content digest (spec +
kind + params + code version — see
:meth:`~repro.campaign.spec.CellSpec.digest`), so the cache needs no
invalidation logic: changing anything about a cell changes its key,
and stale entries are simply never read again.  Envelopes that are
unreadable, truncated, or carry a different format/code version load
as misses — a killed worker can at worst waste one recompute, never
poison a result (writes are atomic via
:func:`~repro.experiments.persistence.atomic_write_text`).

Journals are the resume/status record: one JSON line per event.
Appends are single ``write`` calls of one line; a torn final line from
a crash is skipped on read.  The event schema (see
``docs/campaigns.md``):

``start``
    A run began with uncached work: campaign name, cell counts,
    worker count (plus the active ``chaos`` schedule, if any).
``cell``
    One cell computed successfully: index, digest, label, wall time
    (plus ``attempts`` when retries were consumed).
``cell-failed``
    One attempt of one cell failed: ``attempt`` (0-based), ``kind``
    (``exception`` / ``chaos`` / ``timeout`` / ``worker-crash``) and
    the error text.
``cell-retry``
    A failed cell was rescheduled: the next attempt number and the
    deterministic backoff applied.
``cell-quarantined``
    A cell exhausted its retries under ``--keep-going``: total
    attempts and the final error.
``cell-flaky``
    A recomputed cell's payload digest disagreed with an earlier
    successful attempt — the determinism cross-check tripped.
``pool-respawn``
    The worker pool died (or was killed to stop a hung cell) and was
    respawned: which in-flight cells were lost / timed out / requeued.
``end``
    The run finished: computed count, wall time (plus ``quarantined``
    when cells were left behind).
``abort``
    The run raised out of the executor (fail-fast cell failure,
    Ctrl-C, …): the reason and wall time.  Every run that journalled a
    ``start`` terminates with exactly one ``end`` or ``abort``.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.campaign.spec import CAMPAIGN_CODE_VERSION, CellSpec
from repro.experiments.persistence import atomic_write_text

#: Format marker for cache envelopes; mismatches load as cache misses.
CACHE_FORMAT_VERSION = 1

#: Environment override for the cache root.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIRNAME = ".repro_cache"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``./.repro_cache``."""
    override = os.environ.get(CACHE_ENV_VAR)
    return Path(override) if override else Path(DEFAULT_CACHE_DIRNAME)


def payload_digest(payload: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of one cell payload.

    The determinism cross-check currency: two successful computations
    of the same cell must produce the same payload digest, or the
    executor flags the cell flaky (``cell-flaky`` journal event).
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def summarize_cell_events(events: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Per-cell-digest failure history distilled from journal events.

    Returns ``digest -> {failed_attempts, quarantined, flaky,
    last_error}`` aggregated across every run the journal records (the
    journal is append-only, so counts are historical totals).  A
    ``cell`` success event supersedes an earlier quarantine — the
    rerun-retries-only-failures loop resolved it.
    """
    summary: Dict[str, Dict[str, Any]] = {}
    for event in events:
        digest = event.get("digest")
        if not isinstance(digest, str) or not digest:
            continue
        record = summary.setdefault(digest, {
            "failed_attempts": 0,
            "quarantined": False,
            "flaky": False,
            "last_error": "",
        })
        kind = event.get("event")
        if kind == "cell-failed":
            record["failed_attempts"] += 1
            record["last_error"] = (
                f"{event.get('kind', 'exception')}: {event.get('error', '')}"
            )
        elif kind == "cell-quarantined":
            record["quarantined"] = True
        elif kind == "cell-flaky":
            record["flaky"] = True
        elif kind == "cell":
            record["quarantined"] = False
    return summary


class ResultCache:
    """Durable store of finished cell payloads, keyed by content digest."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    @property
    def cells_dir(self) -> Path:
        return self.root / "cells"

    @property
    def journal_dir(self) -> Path:
        return self.root / "journal"

    def cell_path(self, digest: str) -> Path:
        """Where the envelope for ``digest`` lives (2-char shard dirs)."""
        return self.cells_dir / digest[:2] / f"{digest}.json"

    # -- cell entries ------------------------------------------------------
    def load(self, digest: str) -> Optional[Dict[str, Any]]:
        """The stored envelope for ``digest``, or ``None`` on any miss.

        Anything wrong — absent file, truncated JSON, foreign format or
        code version, digest mismatch — is a miss, never an error: the
        executor recomputes and overwrites.
        """
        try:
            document = json.loads(self.cell_path(digest).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(document, dict):
            return None
        if document.get("format_version") != CACHE_FORMAT_VERSION:
            return None
        if document.get("code_version") != CAMPAIGN_CODE_VERSION:
            return None
        if document.get("cell_digest") != digest:
            return None
        if not isinstance(document.get("payload"), dict):
            return None
        return document

    def store(
        self, digest: str, cell: CellSpec, payload: Dict[str, Any], elapsed_s: float
    ) -> None:
        """Atomically persist one finished cell's payload."""
        document = {
            "format_version": CACHE_FORMAT_VERSION,
            "code_version": CAMPAIGN_CODE_VERSION,
            "cell_digest": digest,
            "kind": cell.kind,
            "scenario": cell.scenario.name,
            "elapsed_s": elapsed_s,
            "payload": payload,
        }
        path = self.cell_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, json.dumps(document, indent=2, sort_keys=True) + "\n")

    def remove(self, digest: str) -> bool:
        """Drop one entry; ``True`` if it existed."""
        try:
            self.cell_path(digest).unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Drop every cell entry and journal; returns entries removed."""
        removed = 0
        if self.cells_dir.is_dir():
            removed = sum(1 for _ in self.cells_dir.glob("*/*.json"))
            shutil.rmtree(self.cells_dir)
        if self.journal_dir.is_dir():
            shutil.rmtree(self.journal_dir)
        return removed

    # -- journals ----------------------------------------------------------
    def journal_path(self, campaign_digest: str) -> Path:
        return self.journal_dir / f"{campaign_digest}.jsonl"

    def append_journal(self, campaign_digest: str, record: Dict[str, Any]) -> None:
        """Append one event line to the campaign's journal."""
        path = self.journal_path(campaign_digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line)

    def read_journal(self, campaign_digest: str) -> List[Dict[str, Any]]:
        """Every parseable journal event, oldest first."""
        try:
            text = self.journal_path(campaign_digest).read_text()
        except OSError:
            return []
        events: List[Dict[str, Any]] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn final line from a crash
            if isinstance(event, dict):
                events.append(event)
        return events

    def remove_journal(self, campaign_digest: str) -> bool:
        """Drop one campaign's journal; ``True`` if it existed."""
        try:
            self.journal_path(campaign_digest).unlink()
            return True
        except OSError:
            return False
