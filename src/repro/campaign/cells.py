"""Cell kinds: what executing one campaign cell means.

A *cell runner* is a function ``CellSpec -> dict`` whose return value
is pure JSON data — it crosses process boundaries (the parallel
executor runs cells in worker processes) and lands verbatim in the
on-disk result cache.  Kinds register with
:func:`register_cell_kind`; consumers that define their own kind
(Fig. 9 probe series, sweep points, attack audits) register from their
home module, and :data:`KIND_HOME_MODULES` lets any process — a fresh
worker included — resolve a kind it has not imported yet.

The built-in ``scenario`` kind runs the spec's whole slot workload and
returns :meth:`~repro.scenario.runner.ScenarioResult.to_dict`, which
carries the canonical trace digest — the byte-identity witness the
campaign determinism tests compare across worker counts.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.campaign.spec import CampaignError, CampaignSpec, CellSpec
from repro.scenario.runner import ScenarioResult, ScenarioRunner
from repro.scenario.spec import ScenarioSpec

#: A cell runner: executes one cell, returns a JSON-serializable payload.
CellRunner = Callable[[CellSpec], Dict[str, Any]]

_CELL_KINDS: Dict[str, CellRunner] = {}

#: kind -> module that registers it, imported on demand.  This keeps
#: the campaign package free of experiment imports (no cycles) while
#: letting worker processes execute kinds their parent registered via
#: a plain module import — safe under both fork and spawn.
KIND_HOME_MODULES: Dict[str, str] = {
    "scenario": "repro.campaign.cells",
    "fig9-series": "repro.experiments.fig9_consensus",
    "gamma-sweep-point": "repro.experiments.sweeps",
    "density-sweep-point": "repro.experiments.sweeps",
    "attack-audit": "repro.experiments.attack_compare",
    "fault-grid-point": "repro.experiments.fault_resilience",
}


def register_cell_kind(name: str) -> Callable[[CellRunner], CellRunner]:
    """Register the decorated function as the runner for ``name``.

    The runner's defining module is recorded as the kind's home, so a
    fresh worker process (spawn start method included) can resolve a
    consumer-registered kind by importing that module.
    """

    def decorate(runner: CellRunner) -> CellRunner:
        existing = _CELL_KINDS.get(name)
        if existing is not None and existing is not runner:
            raise ValueError(f"cell kind {name!r} is already registered")
        _CELL_KINDS[name] = runner
        KIND_HOME_MODULES.setdefault(name, runner.__module__)
        return runner

    return decorate


def cell_kind_names() -> List[str]:
    """Every kind executable right now (registered or resolvable)."""
    return sorted(set(_CELL_KINDS) | set(KIND_HOME_MODULES))


def resolve_cell_kind(kind: str) -> CellRunner:
    """The runner for ``kind``, importing its home module if needed."""
    runner = _CELL_KINDS.get(kind)
    if runner is None and kind in KIND_HOME_MODULES:
        importlib.import_module(KIND_HOME_MODULES[kind])
        runner = _CELL_KINDS.get(kind)
    if runner is None:
        raise CampaignError(
            f"unknown cell kind {kind!r}; known: {', '.join(cell_kind_names())}"
        )
    return runner


def execute_cell(cell: CellSpec) -> Dict[str, Any]:
    """Run one cell to completion; returns its JSON payload."""
    return resolve_cell_kind(cell.kind)(cell)


@register_cell_kind("scenario")
def run_scenario_cell(cell: CellSpec) -> Dict[str, Any]:
    """The default kind: run the whole slot workload, return the result.

    Telemetry is env-driven so it reaches worker processes without
    widening the cell payload: ``$REPRO_TELEMETRY`` opts into per-slot
    streams, ``$REPRO_TRACE_SAMPLE`` into block-lifecycle trace
    streams.  Both recorders are pure observers — the payload (and its
    trace digest, the campaign's byte-identity witness) is identical
    with them on or off — and both truncate their stream on
    ``run_started``, so a chaos-retried cell rewrites cleanly.
    """
    from repro.telemetry import telemetry_dir_from_env
    from repro.telemetry.spans import SpanRecorder, trace_sample_from_env

    telemetry = None
    telemetry_dir = telemetry_dir_from_env()
    if telemetry_dir:
        from repro.telemetry import TelemetryRecorder

        telemetry = TelemetryRecorder(telemetry_dir)
    spans = None
    sample = trace_sample_from_env()
    if telemetry_dir and sample is not None:
        spans = SpanRecorder(telemetry_dir, sample=sample)
    runner = ScenarioRunner(cell.scenario, telemetry=telemetry, spans=spans)
    return runner.run().to_dict()


def run_scenario_cells(
    specs: Sequence[ScenarioSpec],
    executor: Optional[object] = None,
    name: str = "adhoc",
) -> List[ScenarioResult]:
    """Run plain scenario cells through an executor; results in order.

    The shared submission path for consumers (Fig. 7/8, bench) whose
    cells are whole scenario runs: with ``executor=None`` an ephemeral
    serial, cache-free executor preserves the exact single-process
    behaviour (and golden digests); passing a configured
    :class:`~repro.campaign.executor.CampaignExecutor` adds parallelism
    and caching without touching the consumer.
    """
    from repro.campaign.executor import run_campaign

    campaign = CampaignSpec(
        name=name, cells=tuple(CellSpec(scenario=spec) for spec in specs)
    )
    result = run_campaign(campaign, executor)
    return [ScenarioResult.from_dict(cell.payload) for cell in result.cells]
