"""Deterministic chaos for the campaign harness itself.

:mod:`repro.faults` teaches the *ledgers under test* to suffer
declarative fault timelines; this module points the same philosophy at
the measurement infrastructure (in the PBFT spirit: the harness should
tolerate the faults it exists to study).  A :class:`ChaosSpec` is a
seeded schedule of harness faults — injected cell exceptions,
SIGKILL'd pool workers, artificial hangs — that the
:class:`~repro.campaign.executor.CampaignExecutor` replays while
running a campaign.

Chaos never touches what a cell computes: an afflicted attempt fails,
dies, or stalls *before* the cell executes, so a chaos-ridden run that
converges must converge to payloads byte-identical to a clean serial
run.  That property is what the chaos self-tests
(``tests/campaign/test_chaos.py``) and the CI chaos gate pin.

Determinism
-----------
Which cells suffer which fault is a pure function of the chaos seed
and the cell digests (ranked via :func:`repro.sim.rng.derive_seed`,
the same seeding idiom the fault layer and retry backoff use), so a
chaos schedule replays identically regardless of worker count,
completion order, or wall-clock.  Faults apply only to attempts
``<= max_attempt`` (default: the first attempt only), which is what
lets bounded retries always converge.

Enable chaos by passing ``chaos=ChaosSpec(...)`` to the executor, or
globally via the ``REPRO_CHAOS`` environment variable (inline JSON or
a path to a JSON file) — the hook the CI chaos gate and the test
fixtures use.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Union

from repro.sim.rng import derive_seed, derive_unit

#: Environment variable enabling chaos globally (inline JSON or a path).
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: The harness fault kinds a chaos plan can assign to a cell.
CHAOS_EXCEPTION = "exception"
CHAOS_KILL = "kill"
CHAOS_HANG = "hang"
CHAOS_KINDS = (CHAOS_EXCEPTION, CHAOS_KILL, CHAOS_HANG)


class ChaosError(ValueError):
    """A chaos schedule that cannot describe a runnable plan."""


class ChaosInjectedError(RuntimeError):
    """The transient failure an afflicted cell attempt raises.

    Defined at module level so it pickles cleanly across the process
    boundary and the parent can classify it (journal kind ``chaos``).
    """


@dataclass(frozen=True)
class ChaosSpec:
    """A seeded schedule of harness faults for one campaign run.

    ``exceptions`` / ``kills`` / ``hangs`` count how many distinct
    pending cells suffer each fault kind; *which* cells is decided by
    :meth:`plan`, a pure function of ``seed`` and the cell digests.
    ``hang_s`` is how long a hung attempt sleeps before executing
    normally (pair it with the executor's ``cell_timeout`` to exercise
    the kill-and-retry path).  Attempts numbered above ``max_attempt``
    run chaos-free, so retried cells converge.
    """

    seed: int = 0
    exceptions: int = 0
    kills: int = 0
    hangs: int = 0
    hang_s: float = 30.0
    max_attempt: int = 0

    def __post_init__(self) -> None:
        for name in ("exceptions", "kills", "hangs"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ChaosError(
                    f"chaos {name} must be a non-negative int, got {value!r}"
                )
        if self.hang_s <= 0:
            raise ChaosError(f"chaos hang_s must be positive, got {self.hang_s!r}")
        if not isinstance(self.max_attempt, int) or self.max_attempt < 0:
            raise ChaosError(
                f"chaos max_attempt must be a non-negative int, got {self.max_attempt!r}"
            )

    @property
    def total(self) -> int:
        """How many cells the plan afflicts (at most)."""
        return self.exceptions + self.kills + self.hangs

    def plan(self, digests: Iterable[str]) -> Dict[str, str]:
        """``digest -> chaos kind`` for this run's pending cells.

        Digests are ranked by a seeded hash, then the first ``kills``
        suffer worker kills, the next ``hangs`` hang, and the next
        ``exceptions`` raise.  The ranking depends only on ``seed`` and
        the digest *set* — never on submission or completion order —
        so serial and parallel runs afflict the same cells.  With fewer
        pending cells than faults, the plan truncates.
        """
        ranked = sorted(
            set(digests), key=lambda d: (derive_seed(self.seed, f"chaos:{d}"), d)
        )
        plan: Dict[str, str] = {}
        cursor = 0
        for kind, count in (
            (CHAOS_KILL, self.kills),
            (CHAOS_HANG, self.hangs),
            (CHAOS_EXCEPTION, self.exceptions),
        ):
            for digest in ranked[cursor:cursor + count]:
                plan[digest] = kind
            cursor += count
        return plan

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (round-trips through :meth:`from_dict`)."""
        return {
            "seed": self.seed,
            "exceptions": self.exceptions,
            "kills": self.kills,
            "hangs": self.hangs,
            "hang_s": self.hang_s,
            "max_attempt": self.max_attempt,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChaosSpec":
        if not isinstance(payload, Mapping):
            raise ChaosError(f"chaos spec must be an object, got {payload!r}")
        data = dict(payload)
        kwargs = {
            name: data.pop(name)
            for name in ("seed", "exceptions", "kills", "hangs", "hang_s", "max_attempt")
            if name in data
        }
        if data:
            raise ChaosError(f"unknown chaos field(s): {', '.join(sorted(data))}")
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ChaosSpec":
        try:
            payload = json.loads(Path(path).read_text())
        except OSError as error:
            raise ChaosError(f"cannot read chaos spec {path}: {error}")
        except ValueError as error:
            raise ChaosError(f"chaos spec {path} is not valid JSON: {error}")
        return cls.from_dict(payload)

    def describe(self) -> str:
        """One line for logs: what this schedule will inflict."""
        return (
            f"chaos seed={self.seed}: {self.exceptions} exception(s), "
            f"{self.kills} worker kill(s), {self.hangs} hang(s) of {self.hang_s:g}s "
            f"(attempts <= {self.max_attempt})"
        )


def chaos_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[ChaosSpec]:
    """The ``$REPRO_CHAOS`` schedule, or ``None`` when chaos is off.

    The value is inline JSON (starts with ``{``) or a path to a JSON
    file; anything unparsable raises :class:`ChaosError` rather than
    silently running without chaos.
    """
    value = (environ if environ is not None else os.environ).get(CHAOS_ENV_VAR, "")
    value = value.strip()
    if not value:
        return None
    if value.startswith("{"):
        try:
            payload = json.loads(value)
        except ValueError as error:
            raise ChaosError(f"${CHAOS_ENV_VAR} is not valid JSON: {error}")
        return ChaosSpec.from_dict(payload)
    return ChaosSpec.from_file(value)


def seeded_backoff(base_s: float, digest: str, attempt: int) -> float:
    """Deterministic exponential backoff before retry ``attempt`` (1-based).

    ``base_s * 2**(attempt-1)``, jittered into ``[0.5x, 1.5x)`` by a
    unit draw seeded from the cell digest and attempt number — the same
    :func:`~repro.sim.rng.derive_unit` idiom chaos planning uses — so a
    retried cell backs off identically in every run, on every worker.
    """
    if base_s <= 0:
        return 0.0
    jitter = 0.5 + derive_unit(int(digest[:16], 16), f"backoff:{attempt}")
    return base_s * (2 ** max(0, attempt - 1)) * jitter


def perform_chaos(directive: Mapping[str, Any]) -> None:
    """Inflict one chaos directive inside a worker, *before* the cell runs.

    ``exception`` raises :class:`ChaosInjectedError`; ``kill`` SIGKILLs
    the worker process (simulated as an injected exception on the
    serial path, where the "worker" is the main process); ``hang``
    sleeps ``hang_s`` and then lets the cell execute normally — under a
    cell timeout the attempt is killed mid-sleep, without one it merely
    finishes late.  None of these paths can alter a cell's payload.
    """
    kind = directive.get("kind")
    if kind == CHAOS_HANG:
        time.sleep(float(directive.get("hang_s", 30.0)))
    elif kind == CHAOS_KILL:
        if directive.get("simulate_kill"):
            raise ChaosInjectedError(
                "chaos: worker kill (simulated on the serial path)"
            )
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == CHAOS_EXCEPTION:
        raise ChaosInjectedError("chaos: injected cell exception")
    else:  # pragma: no cover - directives are built by the executor
        raise ChaosError(f"unknown chaos directive kind {kind!r}")
