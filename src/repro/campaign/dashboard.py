"""Self-contained static HTML dashboards for campaigns.

``python -m repro campaign dashboard CAMPAIGN`` renders one HTML file
— no external scripts, stylesheets or fonts, so it can be archived
next to the result cache or attached to CI artifacts and opened
anywhere.  The dashboard is assembled purely from data the campaign
machinery already persists:

* per-cell standing from
  :meth:`~repro.campaign.executor.CampaignExecutor.status_report`
  (done / failing / quarantined / pending, attempts, flakiness);
* harness-event counts (retries, chaos injections, pool respawns)
  from the campaign's journal;
* per-slot storage/traffic series charted as inline SVG from the
  cached cell payloads of completed scenario cells.

Rendering is deterministic for a given cache/journal state: cells keep
campaign order, series and legends sort lexicographically, and no
wall-clock timestamp is stamped into the page.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.executor import CampaignExecutor, CellStatus
from repro.campaign.spec import CampaignSpec

#: Fixed palette (Okabe-Ito) so series colours are stable run to run.
_PALETTE = (
    "#0072B2", "#D55E00", "#009E73", "#CC79A7",
    "#E69F00", "#56B4E9", "#F0E442", "#000000",
)

#: The payload series charted, with axis titles.
_CHARTED_SERIES = (
    ("storage_mb", "Mean storage per node (MB)"),
    ("traffic_mbit", "Mean transmit per node (Mbit)"),
)

_STATE_COLORS = {
    "done": "#009E73",
    "pending": "#999999",
    "failing": "#E69F00",
    "quarantined": "#D55E00",
}


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float) -> str:
    return f"{value:.4g}"


def _svg_line_chart(
    title: str,
    lines: Dict[str, List[Tuple[float, float]]],
    width: int = 640,
    height: int = 260,
) -> str:
    """One inline SVG line chart; ``lines`` maps legend label -> points."""
    pad_l, pad_r, pad_t, pad_b = 56, 16, 28, 36
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    points = [p for pts in lines.values() for p in pts]
    if not points:
        return (
            f'<svg width="{width}" height="{height}" role="img">'
            f'<text x="{width // 2}" y="{height // 2}" text-anchor="middle" '
            f'fill="#777">{_esc(title)}: no completed cells to chart</text></svg>'
        )
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(0.0, min(ys)), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    def sx(x: float) -> float:
        return pad_l + (x - x_min) / x_span * plot_w

    def sy(y: float) -> float:
        return pad_t + plot_h - (y - y_min) / y_span * plot_h

    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'style="background:#fff">',
        f'<text x="{pad_l}" y="18" font-size="13" font-weight="bold">'
        f'{_esc(title)}</text>',
        f'<line x1="{pad_l}" y1="{pad_t}" x2="{pad_l}" '
        f'y2="{pad_t + plot_h}" stroke="#333"/>',
        f'<line x1="{pad_l}" y1="{pad_t + plot_h}" x2="{pad_l + plot_w}" '
        f'y2="{pad_t + plot_h}" stroke="#333"/>',
        f'<text x="{pad_l - 6}" y="{pad_t + 4}" text-anchor="end" '
        f'font-size="11">{_fmt(y_max)}</text>',
        f'<text x="{pad_l - 6}" y="{pad_t + plot_h + 4}" text-anchor="end" '
        f'font-size="11">{_fmt(y_min)}</text>',
        f'<text x="{pad_l}" y="{height - 8}" font-size="11">{_fmt(x_min)}</text>',
        f'<text x="{pad_l + plot_w}" y="{height - 8}" text-anchor="end" '
        f'font-size="11">{_fmt(x_max)} (slot)</text>',
    ]
    for i, label in enumerate(sorted(lines)):
        pts = lines[label]
        if not pts:
            continue
        color = _PALETTE[i % len(_PALETTE)]
        coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="1.8"/>'
        )
        for x, y in pts:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2.4" '
                f'fill="{color}"/>'
            )
        legend_y = pad_t + 14 * i
        parts.append(
            f'<rect x="{pad_l + plot_w - 150}" y="{legend_y}" width="10" '
            f'height="10" fill="{color}"/>'
            f'<text x="{pad_l + plot_w - 136}" y="{legend_y + 9}" '
            f'font-size="11">{_esc(label)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _journal_counts(events: Sequence[Dict[str, Any]]) -> Dict[str, int]:
    """Harness-event totals out of one campaign journal."""
    counts = {
        "completions": 0,
        "failed_attempts": 0,
        "retries": 0,
        "pool_respawns": 0,
        "quarantined": 0,
        "flaky": 0,
        "chaos_runs": 0,
        "aborts": 0,
    }
    for event in events:
        kind = event.get("event")
        if kind == "cell":
            counts["completions"] += 1
        elif kind == "cell-failed":
            counts["failed_attempts"] += 1
        elif kind == "cell-retry":
            counts["retries"] += 1
        elif kind == "pool-respawn":
            counts["pool_respawns"] += 1
        elif kind == "cell-quarantined":
            counts["quarantined"] += 1
        elif kind == "cell-flaky":
            counts["flaky"] += 1
        elif kind == "abort":
            counts["aborts"] += 1
        elif kind == "start" and event.get("chaos"):
            counts["chaos_runs"] += 1
    return counts


def _status_table(rows: Sequence[CellStatus]) -> str:
    cells = [
        "<table><thead><tr><th>#</th><th>cell</th><th>state</th>"
        "<th>digest</th><th>failed attempts</th><th>flaky</th>"
        "<th>last error</th></tr></thead><tbody>"
    ]
    for i, row in enumerate(rows):
        color = _STATE_COLORS.get(row.state, "#333")
        cells.append(
            f"<tr><td>{i + 1}</td><td>{_esc(row.cell.label)}</td>"
            f'<td style="color:{color};font-weight:bold">{_esc(row.state)}</td>'
            f"<td><code>{_esc(row.digest[:12])}</code></td>"
            f"<td>{row.failed_attempts}</td>"
            f"<td>{'yes' if row.flaky else ''}</td>"
            f"<td>{_esc(row.last_error[:120])}</td></tr>"
        )
    cells.append("</tbody></table>")
    return "".join(cells)


def _series_lines(
    executor: CampaignExecutor,
    rows: Sequence[CellStatus],
    series_key: str,
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-cell (slot, value) lines for one payload series key."""
    lines: Dict[str, List[Tuple[float, float]]] = {}
    if executor.cache is None:
        return lines
    for row in rows:
        if not row.cached:
            continue
        document = executor.cache.load(row.digest)
        if document is None:
            continue
        payload = document.get("payload", {})
        slots = payload.get("sample_slots")
        values = payload.get(series_key)
        if not isinstance(slots, list) or not isinstance(values, list):
            continue
        if len(slots) != len(values) or not slots:
            continue
        lines[row.cell.label] = [
            (float(s), float(v)) for s, v in zip(slots, values)
        ]
    return lines


_MONITOR_COLORS = {"pass": "#009E73", "fail": "#D55E00", "skip": "#999999"}


def _monitor_panel(monitors: Dict[str, Any]) -> str:
    """The invariant-monitor verdict table for one monitors document."""
    counts = monitors["counts"]
    color = _MONITOR_COLORS.get(monitors["status"], "#333")
    parts = [
        "<h2>Invariant monitors</h2>",
        f'<p>verdict <b style="color:{color}">{_esc(monitors["status"])}</b>'
        f' · {counts["pass"]} pass / {counts["fail"]} fail / '
        f'{counts["skip"]} skip</p>',
        "<table><thead><tr><th>scenario</th><th>backend</th><th>seed</th>"
        "<th>monitor</th><th>status</th><th>detail</th></tr></thead><tbody>",
    ]
    for run in monitors["runs"]:
        for verdict in run["monitors"]:
            vcolor = _MONITOR_COLORS.get(verdict["status"], "#333")
            parts.append(
                f"<tr><td>{_esc(run['scenario'])}</td>"
                f"<td>{_esc(run['backend'])}</td><td>{run['seed']}</td>"
                f"<td>{_esc(verdict['id'])}</td>"
                f'<td style="color:{vcolor};font-weight:bold">'
                f"{_esc(verdict['status'])}</td>"
                f"<td>{_esc(verdict['detail'])}</td></tr>"
            )
    parts.append("</tbody></table>")
    return "".join(parts)


def _waterfall_panel(waterfalls: Sequence[Tuple[str, str]]) -> str:
    """Inline block-lifecycle waterfall SVGs, one figure per (caption, svg).

    The SVGs come from :func:`repro.telemetry.tracepath.waterfall_svg`,
    which HTML-escapes every interpolated string itself, so they embed
    verbatim; only the captions are escaped here.
    """
    parts = ["<h2>Block-lifecycle waterfalls</h2>"]
    for caption, svg in waterfalls:
        parts.append(
            f"<figure>{svg}<figcaption>{_esc(caption)}</figcaption></figure>"
        )
    return "".join(parts)


def render_dashboard(
    campaign: CampaignSpec,
    executor: CampaignExecutor,
    monitors: Optional[Dict[str, Any]] = None,
    waterfalls: Optional[Sequence[Tuple[str, str]]] = None,
) -> str:
    """The complete dashboard HTML for ``campaign``'s current state.

    ``monitors`` is an optional verdict document from
    :func:`repro.telemetry.monitors.evaluate_monitors`; ``waterfalls``
    an optional sequence of (caption, svg) block-lifecycle figures.
    Both render as extra panels when given.
    """
    rows = executor.status_report(campaign)
    events: List[Dict[str, Any]] = []
    if executor.cache is not None:
        events = executor.cache.read_journal(campaign.digest())
    counts = _journal_counts(events)
    done = sum(1 for row in rows if row.state == "done")

    badges = "".join(
        f'<span class="badge"><b>{counts[key]}</b> {label}</span>'
        for key, label in (
            ("completions", "journalled completions"),
            ("failed_attempts", "failed attempts"),
            ("retries", "retries"),
            ("pool_respawns", "pool respawns"),
            ("quarantined", "quarantined"),
            ("flaky", "flaky"),
            ("chaos_runs", "chaos runs"),
            ("aborts", "aborts"),
        )
    )
    charts = "".join(
        f'<figure>{_svg_line_chart(title, _series_lines(executor, rows, key))}'
        f"</figure>"
        for key, title in _CHARTED_SERIES
    )
    monitor_panel = _monitor_panel(monitors) if monitors is not None else ""
    waterfall_panel = _waterfall_panel(waterfalls) if waterfalls else ""
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>campaign {_esc(campaign.name)}</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #222; }}
h1 {{ font-size: 1.4rem; }} code {{ font-size: 12px; }}
table {{ border-collapse: collapse; margin: 1rem 0; }}
th, td {{ border: 1px solid #ccc; padding: 4px 10px; text-align: left; }}
th {{ background: #f2f2f2; }}
.badge {{ display: inline-block; background: #f2f2f2; border: 1px solid #ccc;
  border-radius: 4px; padding: 2px 8px; margin: 2px 6px 2px 0; }}
figure {{ margin: 1rem 0; border: 1px solid #eee; display: inline-block;
  padding: 4px; }}
</style>
</head>
<body>
<h1>Campaign <code>{_esc(campaign.name)}</code></h1>
<p>{_esc(campaign.description)}</p>
<p><b>{done}</b> of <b>{len(rows)}</b> cells done ·
campaign digest <code>{_esc(campaign.digest()[:16])}</code></p>
<h2>Harness events</h2>
<p>{badges}</p>
<h2>Cells</h2>
{_status_table(rows)}
{monitor_panel}
<h2>Per-slot series (completed cells)</h2>
{charts}
{waterfall_panel}
</body>
</html>
"""


def write_dashboard(
    campaign: CampaignSpec,
    executor: CampaignExecutor,
    path: Union[str, Path],
    monitors: Optional[Dict[str, Any]] = None,
    waterfalls: Optional[Sequence[Tuple[str, str]]] = None,
) -> Path:
    """Render and atomically write the dashboard; returns the path."""
    from repro.experiments.persistence import atomic_write_text

    target = Path(path)
    atomic_write_text(
        target,
        render_dashboard(campaign, executor, monitors, waterfalls),
    )
    return target
