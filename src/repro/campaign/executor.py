"""Chaos-tolerant parallel, cached, resumable execution of campaign cells.

:class:`CampaignExecutor` is a service object (construct once, run
many campaigns) with four independent capabilities:

* **parallelism** — with ``workers >= 2``, pending cells fan out
  across a :class:`~concurrent.futures.ProcessPoolExecutor`.  Every
  cell is a pure function of its spec (its scenario carries its own
  master seed, and all randomness flows through
  :class:`~repro.sim.rng.RandomStreams`), so results — trace digests
  included — are byte-identical to a serial run; only wall-clock
  changes.  The default ``workers=0`` runs cells in-process, in order,
  preserving the exact historical behaviour.
* **caching** — with ``use_cache=True`` each finished cell's payload
  is persisted to the content-addressed :class:`ResultCache`; a later
  run of any campaign containing that cell (same digest) is served
  from disk without executing.  ``force=True`` recomputes and
  overwrites.
* **resumability** — because completion is journalled and cached
  per-cell, an interrupted campaign re-run computes only the cells
  that never finished; completed cells replay from the cache.  Failed
  and quarantined cells are never cached, so a rerun retries exactly
  them — resumability covers failures, not just cache hits.
* **resilience** — failed attempts retry with deterministic seeded
  backoff (``retries``, default 2); hung cells are killed at
  ``cell_timeout`` and retried; a dead worker process
  (:class:`~concurrent.futures.process.BrokenProcessPool`) respawns
  the pool and resubmits only the lost cells; ``keep_going=True``
  completes every healthy cell and quarantines the rest with
  structured journal events instead of aborting.  A seeded
  :class:`~repro.campaign.chaos.ChaosSpec` (``$REPRO_CHAOS``) drives
  the self-tests that pin all of this.

Results always come back in campaign order, regardless of worker
completion order, so downstream consumers see deterministic output.

Failure semantics
-----------------
An attempt can fail four ways, all journalled as ``cell-failed``
events: its own exception (``exception``, or ``chaos`` when injected),
a wall-clock overrun (``timeout``), or its worker dying
(``worker-crash``).  Timeouts are enforced pre-emptively on the
parallel path (the pool is killed — ``Future.cancel`` cannot stop a
running cell — and respawned) and post-hoc on the serial path (the
over-budget payload is discarded, but its digest seeds the flaky
cross-check).  When a worker dies, *every* in-flight cell is charged
one ``worker-crash`` attempt — the culprit cannot be identified, and
charging all of them bounds crash loops — whereas cells killed as
collateral of a *timeout* are requeued free of charge (the overdue
cell is known).  A cell that exhausts ``retries`` either aborts the
run (default: ``CampaignError`` after an ``abort`` journal event, with
queued cells cancelled and in-flight workers killed) or, under
``keep_going``, is quarantined and reported in the
:class:`CampaignResult`.

Every computed payload is cross-checked against any earlier successful
attempt of the same cell (a pre-``force`` cache envelope, or a
discarded over-budget serial payload): a digest mismatch flags the
cell *flaky* — nondeterministic — via ``cell-flaky`` journal events
and :attr:`CellResult.flaky`, rather than passing silently.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, Union

from repro.campaign.cache import ResultCache, payload_digest, summarize_cell_events
from repro.campaign.cells import execute_cell
from repro.campaign.chaos import (
    CHAOS_HANG,
    CHAOS_KILL,
    ChaosInjectedError,
    ChaosSpec,
    chaos_from_env,
    perform_chaos,
    seeded_backoff,
)
from repro.campaign.spec import CampaignError, CampaignSpec, CellSpec

#: Failure kinds recorded on attempts (``cell-failed`` journal events).
FAIL_EXCEPTION = "exception"
FAIL_CHAOS = "chaos"
FAIL_TIMEOUT = "timeout"
FAIL_WORKER_CRASH = "worker-crash"

#: Pinned schema version of :meth:`CampaignExecutor.status_document`.
STATUS_SCHEMA_VERSION = 1


def _cell_worker(
    cell_payload: Dict[str, Any], chaos: Optional[Dict[str, Any]] = None
) -> Tuple[Dict[str, Any], float]:
    """Execute one serialized cell; module-level so workers can pickle it.

    ``chaos`` is an optional directive from the seeded
    :class:`~repro.campaign.chaos.ChaosSpec` plan, inflicted *before*
    the cell executes (raise / SIGKILL / sleep) so an afflicted attempt
    can fail or stall but never alter a payload.  The serial path calls
    this same function, which is what guarantees parallel and serial
    runs compute byte-identical payloads.
    """
    if chaos is not None:
        perform_chaos(chaos)
    cell = CellSpec.from_dict(cell_payload)
    start = time.perf_counter()
    payload = execute_cell(cell)
    return payload, time.perf_counter() - start


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool: cancel queued cells, SIGKILL running workers.

    ``Future.cancel`` is a no-op once a cell is running, so the only
    way to stop a hung or no-longer-wanted in-flight cell is to kill
    its worker process.  Partial work is discarded; the result cache
    cannot be poisoned because payloads are persisted (atomically) by
    the *parent*, only after a clean result arrives.
    """
    # grab the worker handles first: shutdown() drops its reference
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.kill()
        except Exception:  # pragma: no cover - worker already gone
            pass


def _classify(error: BaseException) -> str:
    """The journal failure kind for one attempt's exception."""
    return FAIL_CHAOS if isinstance(error, ChaosInjectedError) else FAIL_EXCEPTION


class _Abort(Exception):
    """Internal fail-fast signal; carries the error to raise and its cause."""

    def __init__(self, error: CampaignError, cause: Optional[BaseException] = None):
        super().__init__(str(error))
        self.error = error
        self.cause = cause


@dataclass(frozen=True)
class CellFailure:
    """One failed execution attempt of one cell."""

    attempt: int  # 0-based attempt number that failed
    kind: str  # exception | chaos | timeout | worker-crash
    error: str


@dataclass
class CellResult:
    """One cell's outcome within a finished campaign run."""

    index: int
    cell: CellSpec
    digest: str
    payload: Dict[str, Any]
    cached: bool
    elapsed_s: float
    attempts: int = 1
    failures: Tuple[CellFailure, ...] = ()
    quarantined: bool = False
    flaky: bool = False

    @property
    def ok(self) -> bool:
        """Whether this cell finished with a usable payload."""
        return not self.quarantined

    @property
    def trace_sha256(self) -> str:
        """The canonical trace digest, when the payload carries one."""
        value = self.payload.get("trace_sha256", "")
        return value if isinstance(value, str) else ""


@dataclass(frozen=True)
class CellStatus:
    """One cell's standing, from the cache plus the journal history."""

    cell: CellSpec
    digest: str
    cached: bool
    failed_attempts: int = 0
    quarantined: bool = False
    flaky: bool = False
    last_error: str = ""

    @property
    def state(self) -> str:
        """``done`` / ``quarantined`` / ``failing`` / ``pending``."""
        if self.cached:
            return "done"
        if self.quarantined:
            return "quarantined"
        if self.failed_attempts:
            return "failing"
        return "pending"


@dataclass
class CampaignResult:
    """Everything a finished campaign run produced, in campaign order."""

    campaign: CampaignSpec
    digest: str
    workers: int
    wall_s: float
    cells: List[CellResult] = field(default_factory=list)

    @property
    def computed_count(self) -> int:
        return sum(1 for cell in self.cells if not cell.cached and cell.ok)

    @property
    def cached_count(self) -> int:
        return sum(1 for cell in self.cells if cell.cached)

    @property
    def quarantined_count(self) -> int:
        return sum(1 for cell in self.cells if cell.quarantined)

    @property
    def flaky_count(self) -> int:
        return sum(1 for cell in self.cells if cell.flaky)

    @property
    def ok(self) -> bool:
        """Whether every cell finished with a usable payload."""
        return self.quarantined_count == 0

    def quarantined_cells(self) -> List[CellResult]:
        """The cells left behind by a ``keep_going`` run, campaign order."""
        return [cell for cell in self.cells if cell.quarantined]

    def payloads(self) -> List[Dict[str, Any]]:
        """The raw cell payloads, in campaign order (``{}`` if quarantined)."""
        return [cell.payload for cell in self.cells]

    def summary(self) -> str:
        """One line for humans: cells, hit/compute split, wall time."""
        mode = f"{self.workers} workers" if self.workers >= 2 else "serial"
        split = f"{self.computed_count} computed, {self.cached_count} cached"
        if self.quarantined_count:
            split += f", {self.quarantined_count} quarantined"
        if self.flaky_count:
            split += f", {self.flaky_count} FLAKY"
        return (
            f"campaign {self.campaign.name}: {len(self.cells)} cells "
            f"({split}) in {self.wall_s:.2f}s ({mode})"
        )


class _RunState:
    """Mutable bookkeeping for one ``CampaignExecutor.run`` invocation."""

    def __init__(
        self,
        campaign: CampaignSpec,
        digests: List[str],
        campaign_digest: str,
        emit: Callable[[str], None],
        keep_going: bool,
    ) -> None:
        self.campaign = campaign
        self.digests = digests
        self.campaign_digest = campaign_digest
        self.emit = emit
        self.keep_going = keep_going
        self.total = len(campaign.cells)
        self.results: Dict[int, CellResult] = {}
        self.attempts: Dict[int, int] = {}  # index -> failed attempts so far
        self.failures: Dict[int, List[CellFailure]] = {}
        self.prior_payload: Dict[int, str] = {}  # index -> earlier success digest
        self.chaos_plan: Dict[str, str] = {}
        self.journal_on = False


class CampaignExecutor:
    """Runs campaigns: fan-out across workers, memoise on disk, journal.

    Parameters
    ----------
    workers:
        Process count for pending cells; ``0``/``1`` run serially
        in-process (the default — current behaviour and golden digests
        are preserved).
    cache_dir:
        Result-cache root; defaults to ``$REPRO_CACHE_DIR`` or
        ``./.repro_cache``.
    use_cache:
        ``False`` disables both the cache and the journal — every cell
        computes, nothing is persisted (what experiment entry points
        use unless the caller opts in).
    retries:
        How many times one cell may be re-attempted after a failed
        attempt (exception, timeout, or worker crash) before the run
        aborts — or, under ``keep_going``, the cell is quarantined.
        Each retry waits a deterministic seeded backoff
        (:func:`~repro.campaign.chaos.seeded_backoff` over
        ``backoff_s``).
    cell_timeout:
        Wall-clock budget per cell attempt, in seconds.  On the
        parallel path an overdue cell's worker is killed (the pool
        respawns; innocent in-flight cells are requeued without being
        charged an attempt); on the serial path the budget is enforced
        post-hoc — a cell cannot be pre-empted in-process, so the
        over-budget payload is discarded and the cell retried.
        ``None`` (default) disables the budget.
    chaos:
        A :class:`~repro.campaign.chaos.ChaosSpec` of harness faults
        to inject (self-test/CI instrumentation).  Defaults to the
        ``$REPRO_CHAOS`` schedule, or no chaos.
    telemetry:
        An optional
        :class:`~repro.telemetry.campaign.CampaignTelemetry` updated
        at the same points the journal is written (cache hits,
        completions, failed attempts, retries, quarantines, pool
        respawns).  Write-only observation — the executor never reads
        it back, so cell payloads and digests are unaffected.
    """

    def __init__(
        self,
        workers: int = 0,
        cache_dir: Union[str, None] = None,
        use_cache: bool = True,
        retries: int = 2,
        cell_timeout: Optional[float] = None,
        backoff_s: float = 0.05,
        chaos: Optional[ChaosSpec] = None,
        telemetry=None,
    ) -> None:
        self.workers = max(0, int(workers or 0))
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if use_cache else None
        )
        self.retries = max(0, int(retries))
        self.cell_timeout = float(cell_timeout) if cell_timeout else None
        self.backoff_s = max(0.0, float(backoff_s))
        self.chaos = chaos if chaos is not None else chaos_from_env()
        self.telemetry = telemetry

    # -- execution ---------------------------------------------------------
    def run(
        self,
        campaign: CampaignSpec,
        force: bool = False,
        log: Optional[Callable[[str], None]] = None,
        keep_going: bool = False,
    ) -> CampaignResult:
        """Execute ``campaign``; cached cells replay, the rest compute.

        ``force=True`` ignores (and overwrites) cached entries — each
        recomputed payload is cross-checked against the overwritten one
        and digest mismatches are flagged flaky.  ``keep_going=True``
        completes every healthy cell and quarantines cells that exhaust
        their retries instead of aborting.  ``log`` receives one
        progress line per cell event.

        Every exit path that journalled a ``start`` appends a terminal
        record: ``end`` on completion (quarantine count included) or
        ``abort`` with the failure reason when the run raises.
        """
        emit = log or (lambda _message: None)
        start = time.perf_counter()
        total = len(campaign.cells)
        digests = [cell.digest() for cell in campaign.cells]
        state = _RunState(
            campaign=campaign,
            digests=digests,
            campaign_digest=campaign.digest(),
            emit=emit,
            keep_going=keep_going,
        )

        pending: List[int] = []
        for index, (cell, digest) in enumerate(zip(campaign.cells, digests)):
            document = self.cache.load(digest) if self.cache is not None else None
            if document is not None and not force:
                state.results[index] = CellResult(
                    index=index,
                    cell=cell,
                    digest=digest,
                    payload=document["payload"],
                    cached=True,
                    elapsed_s=float(document.get("elapsed_s") or 0.0),
                )
                emit(f"[{index + 1}/{total}] {cell.label}: cached ({digest[:12]})")
                if self.telemetry is not None:
                    self.telemetry.cell_cached(campaign.name)
                continue
            if document is not None:
                # force-recompute: the overwritten payload seeds the
                # determinism cross-check for the fresh computation
                state.prior_payload[index] = payload_digest(document["payload"])
            pending.append(index)

        state.journal_on = self.cache is not None and bool(pending)
        if self.chaos is not None and pending:
            state.chaos_plan = self.chaos.plan(digests[index] for index in pending)
            if state.chaos_plan:
                emit(self.chaos.describe())
        if state.journal_on:
            record = {
                "event": "start",
                "campaign": campaign.name,
                "cells": total,
                "pending": len(pending),
                "workers": self.workers,
            }
            if state.chaos_plan:
                record["chaos"] = self.chaos.to_dict()
            self._journal(state, record)

        try:
            if pending and self.workers >= 2:
                self._run_parallel(state, pending)
            elif pending:
                self._run_serial(state, pending)
        except _Abort as stop:
            self._journal(state, {
                "event": "abort",
                "reason": str(stop.error),
                "wall_s": round(time.perf_counter() - start, 6),
            })
            raise stop.error from stop.cause
        except BaseException as error:
            # Ctrl-C, MemoryError, ... — the journal still gets its
            # terminal record with the cause and wall time.
            self._journal(state, {
                "event": "abort",
                "reason": f"{type(error).__name__}: {error}",
                "wall_s": round(time.perf_counter() - start, 6),
            })
            raise

        wall = time.perf_counter() - start
        quarantined = sum(
            1 for index in pending if state.results[index].quarantined
        )
        if state.journal_on:
            record = {
                "event": "end",
                "computed": len(pending) - quarantined,
                "wall_s": round(wall, 6),
            }
            if quarantined:
                record["quarantined"] = quarantined
            self._journal(state, record)
        return CampaignResult(
            campaign=campaign,
            digest=state.campaign_digest,
            workers=self.workers,
            wall_s=wall,
            cells=[state.results[index] for index in range(total)],
        )

    # -- execution paths ---------------------------------------------------
    def _run_serial(self, state: _RunState, pending: List[int]) -> None:
        """In-process execution with retries and post-hoc timeouts."""
        ready: Deque[int] = deque(pending)
        while ready:
            index = ready.popleft()
            cell = state.campaign.cells[index]
            try:
                payload, elapsed = _cell_worker(
                    cell.to_dict(), self._chaos_directive(state, index, serial=True)
                )
            except Exception as error:
                delay = self._fail_attempt(
                    state, index, _classify(error), str(error), cause=error
                )
                if delay is not None:
                    time.sleep(delay)
                    ready.appendleft(index)
                continue
            if self.cell_timeout is not None and elapsed > self.cell_timeout:
                # Serial cells cannot be pre-empted; enforce post-hoc.
                # The discarded payload seeds the flaky cross-check.
                state.prior_payload.setdefault(index, payload_digest(payload))
                delay = self._fail_attempt(
                    state, index, FAIL_TIMEOUT,
                    f"cell took {elapsed:.2f}s, over the {self.cell_timeout:g}s "
                    "budget (serial enforcement is post-hoc)",
                )
                if delay is not None:
                    time.sleep(delay)
                    ready.appendleft(index)
                continue
            self._complete(state, index, payload, elapsed)

    def _run_parallel(self, state: _RunState, pending: List[int]) -> None:
        """Supervised pool execution: timeouts, crash recovery, retries.

        Cells are submitted in a window of at most ``workers`` at a
        time, so every outstanding future is genuinely running and its
        deadline is meaningful.  The pool is killed and respawned to
        stop overdue cells or recover from a dead worker; queued cells
        are cancelled via ``shutdown(cancel_futures=True)`` and
        in-flight workers killed on abort (cancelling a running future
        is a no-op — see :func:`_terminate_pool`).
        """
        max_workers = min(self.workers, len(pending))
        ready: Deque[int] = deque(pending)
        retries_due: List[Tuple[float, int]] = []  # (monotonic due time, index)
        inflight: Dict[Future, Tuple[int, float]] = {}  # future -> (index, deadline)
        pool = ProcessPoolExecutor(max_workers=max_workers)
        respawns = 0
        try:
            while ready or retries_due or inflight:
                now = time.monotonic()
                while retries_due and retries_due[0][0] <= now:
                    ready.append(heapq.heappop(retries_due)[1])
                while ready and len(inflight) < max_workers:
                    index = ready.popleft()
                    future = pool.submit(
                        _cell_worker,
                        state.campaign.cells[index].to_dict(),
                        self._chaos_directive(state, index, serial=False),
                    )
                    deadline = (
                        now + self.cell_timeout if self.cell_timeout else float("inf")
                    )
                    inflight[future] = (index, deadline)
                if not inflight:
                    # nothing running: wait out the next backoff timer
                    time.sleep(max(0.0, retries_due[0][0] - time.monotonic()))
                    continue

                horizon = min(deadline for _i, deadline in inflight.values())
                if retries_due:
                    horizon = min(horizon, retries_due[0][0])
                timeout = (
                    None if horizon == float("inf")
                    else max(0.0, horizon - time.monotonic()) + 0.01
                )
                wait(set(inflight), timeout=timeout, return_when=FIRST_COMPLETED)

                # Sweep everything finished *now* (completions may race
                # the deadline check), then judge the stragglers.
                pool_broken = False
                crash_lost: List[int] = []
                for future in [f for f in list(inflight) if f.done()]:
                    index, _deadline = inflight.pop(future)
                    try:
                        payload, elapsed = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        crash_lost.append(index)
                    except Exception as error:
                        self._retry_later(
                            state, retries_due, index,
                            _classify(error), str(error), cause=error,
                        )
                    else:
                        self._complete(state, index, payload, elapsed)

                if pool_broken or getattr(pool, "_broken", False):
                    # A worker died (SIGKILL, OOM, segfault).  Everything
                    # still in flight is lost with it; each lost cell is
                    # charged one worker-crash attempt (the culprit is
                    # unknowable, and charging all bounds crash loops).
                    crash_lost.extend(index for index, _d in inflight.values())
                    inflight.clear()
                    respawns += 1
                    self._journal(state, {
                        "event": "pool-respawn",
                        "respawn": respawns,
                        "lost": sorted(crash_lost),
                    })
                    if self.telemetry is not None:
                        self.telemetry.pool_respawned(state.campaign.name)
                    state.emit(
                        f"worker process died; respawning pool and resubmitting "
                        f"{len(crash_lost)} lost cell(s)"
                    )
                    _terminate_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=max_workers)
                    for index in sorted(crash_lost):
                        self._retry_later(
                            state, retries_due, index, FAIL_WORKER_CRASH,
                            "worker process died mid-cell (killed or crashed)",
                        )
                    continue

                if self.cell_timeout is None:
                    continue
                now = time.monotonic()
                overdue = {
                    future: index
                    for future, (index, deadline) in inflight.items()
                    if deadline <= now
                }
                if not overdue:
                    continue
                # A hung cell can only be stopped by killing its worker,
                # which takes the pool down with it: innocent in-flight
                # cells are requeued without being charged an attempt.
                requeued = sorted(
                    index for future, (index, _d) in inflight.items()
                    if future not in overdue
                )
                inflight.clear()
                respawns += 1
                self._journal(state, {
                    "event": "pool-respawn",
                    "respawn": respawns,
                    "timed_out": sorted(overdue.values()),
                    "requeued": requeued,
                })
                if self.telemetry is not None:
                    self.telemetry.pool_respawned(state.campaign.name)
                _terminate_pool(pool)
                pool = ProcessPoolExecutor(max_workers=max_workers)
                for index in sorted(overdue.values()):
                    self._retry_later(
                        state, retries_due, index, FAIL_TIMEOUT,
                        f"exceeded the {self.cell_timeout:g}s cell timeout "
                        "(worker killed)",
                    )
                ready.extend(requeued)
        except BaseException:
            # Fail-fast abort or unexpected error: cancel queued cells,
            # kill in-flight workers, then let run() journal the abort.
            _terminate_pool(pool)
            raise
        pool.shutdown(wait=True)

    # -- per-cell bookkeeping ----------------------------------------------
    def _chaos_directive(
        self, state: _RunState, index: int, serial: bool
    ) -> Optional[Dict[str, Any]]:
        """The chaos to inflict on this attempt of this cell, if any."""
        if self.chaos is None or not state.chaos_plan:
            return None
        kind = state.chaos_plan.get(state.digests[index])
        if kind is None or state.attempts.get(index, 0) > self.chaos.max_attempt:
            return None
        directive: Dict[str, Any] = {"kind": kind}
        if kind == CHAOS_HANG:
            directive["hang_s"] = self.chaos.hang_s
        elif kind == CHAOS_KILL and serial:
            directive["simulate_kill"] = True
        return directive

    def _journal(self, state: _RunState, record: Dict[str, Any]) -> None:
        if state.journal_on and self.cache is not None:
            self.cache.append_journal(state.campaign_digest, record)

    def _complete(
        self, state: _RunState, index: int, payload: Dict[str, Any], elapsed: float
    ) -> None:
        """Record one successful computation (cache, journal, flaky check)."""
        cell, digest = state.campaign.cells[index], state.digests[index]
        attempts = state.attempts.get(index, 0) + 1
        fresh_digest = payload_digest(payload)
        earlier = state.prior_payload.get(index)
        flaky = earlier is not None and earlier != fresh_digest
        if flaky:
            self._journal(state, {
                "event": "cell-flaky",
                "index": index,
                "digest": digest,
                "label": cell.label,
                "expected": earlier,
                "got": fresh_digest,
            })
            state.emit(
                f"[{index + 1}/{state.total}] {cell.label}: FLAKY — payload "
                f"digest {fresh_digest[:12]} != earlier successful attempt "
                f"{earlier[:12]}"
            )
            if self.telemetry is not None:
                self.telemetry.cell_flaky(state.campaign.name)
        if self.cache is not None:
            self.cache.store(digest, cell, payload, elapsed)
            record = {
                "event": "cell",
                "index": index,
                "digest": digest,
                "label": cell.label,
                "elapsed_s": round(elapsed, 6),
            }
            if attempts > 1:
                record["attempts"] = attempts
            self._journal(state, record)
        state.results[index] = CellResult(
            index=index,
            cell=cell,
            digest=digest,
            payload=payload,
            cached=False,
            elapsed_s=elapsed,
            attempts=attempts,
            failures=tuple(state.failures.get(index, ())),
            flaky=flaky,
        )
        suffix = f", attempt {attempts}" if attempts > 1 else ""
        state.emit(
            f"[{index + 1}/{state.total}] {cell.label}: "
            f"computed in {elapsed:.2f}s ({digest[:12]}{suffix})"
        )
        if self.telemetry is not None:
            self.telemetry.cell_computed(state.campaign.name, elapsed)

    def _fail_attempt(
        self,
        state: _RunState,
        index: int,
        kind: str,
        error: str,
        cause: Optional[BaseException] = None,
    ) -> Optional[float]:
        """Record one failed attempt; decide what happens to the cell.

        Returns the deterministic backoff delay (seconds) when the cell
        should retry, or ``None`` when it was quarantined.  In
        fail-fast mode (``keep_going=False``) an exhausted cell raises
        :class:`_Abort` instead, which ``run()`` turns into a journal
        ``abort`` event plus a :class:`CampaignError`.
        """
        attempt = state.attempts.get(index, 0)
        state.attempts[index] = attempt + 1
        cell, digest = state.campaign.cells[index], state.digests[index]
        failure = CellFailure(attempt=attempt, kind=kind, error=error)
        state.failures.setdefault(index, []).append(failure)
        self._journal(state, {
            "event": "cell-failed",
            "index": index,
            "digest": digest,
            "label": cell.label,
            "attempt": attempt,
            "kind": kind,
            "error": error[:500],
        })
        state.emit(
            f"[{index + 1}/{state.total}] {cell.label}: attempt {attempt + 1} "
            f"failed ({kind}: {error})"
        )
        if self.telemetry is not None:
            self.telemetry.attempt_failed(state.campaign.name, kind)
        next_attempt = state.attempts[index]
        if next_attempt <= self.retries:
            delay = seeded_backoff(self.backoff_s, digest, next_attempt)
            self._journal(state, {
                "event": "cell-retry",
                "index": index,
                "digest": digest,
                "attempt": next_attempt,
                "backoff_s": round(delay, 6),
            })
            if self.telemetry is not None:
                self.telemetry.retry_scheduled(state.campaign.name)
            return delay
        if state.keep_going:
            self._quarantine(state, index)
            return None
        raise _Abort(
            CampaignError(
                f"cell {cell.label!r} failed after {next_attempt} attempt(s): {error}"
            ),
            cause=cause,
        )

    def _retry_later(
        self,
        state: _RunState,
        retries_due: List[Tuple[float, int]],
        index: int,
        kind: str,
        error: str,
        cause: Optional[BaseException] = None,
    ) -> None:
        """Parallel-path failure: schedule the retry on the backoff heap."""
        delay = self._fail_attempt(state, index, kind, error, cause=cause)
        if delay is not None:
            heapq.heappush(retries_due, (time.monotonic() + delay, index))

    def _quarantine(self, state: _RunState, index: int) -> None:
        """Give up on one cell under ``keep_going``; the run continues."""
        cell, digest = state.campaign.cells[index], state.digests[index]
        failures = tuple(state.failures.get(index, ()))
        last = failures[-1].error if failures else ""
        self._journal(state, {
            "event": "cell-quarantined",
            "index": index,
            "digest": digest,
            "label": cell.label,
            "attempts": state.attempts.get(index, 0),
            "error": last[:500],
        })
        state.results[index] = CellResult(
            index=index,
            cell=cell,
            digest=digest,
            payload={},
            cached=False,
            elapsed_s=0.0,
            attempts=state.attempts.get(index, 0),
            failures=failures,
            quarantined=True,
        )
        state.emit(
            f"[{index + 1}/{state.total}] {cell.label}: QUARANTINED after "
            f"{state.attempts.get(index, 0)} attempt(s) ({last})"
        )
        if self.telemetry is not None:
            self.telemetry.cell_quarantined(state.campaign.name)

    # -- inspection / maintenance -----------------------------------------
    def status(self, campaign: CampaignSpec) -> List[Tuple[CellSpec, str, bool]]:
        """Per-cell ``(cell, digest, cached)`` without executing anything."""
        rows: List[Tuple[CellSpec, str, bool]] = []
        for cell in campaign.cells:
            digest = cell.digest()
            cached = self.cache is not None and self.cache.load(digest) is not None
            rows.append((cell, digest, cached))
        return rows

    def status_report(self, campaign: CampaignSpec) -> List[CellStatus]:
        """Per-cell standing including journalled failure history.

        Extends :meth:`status` with what the campaign's journal records
        about failed attempts, quarantines and flakiness, so ``campaign
        status`` can show *why* a cell is missing, not just that it is.
        """
        history: Dict[str, Dict[str, Any]] = {}
        if self.cache is not None:
            history = summarize_cell_events(
                self.cache.read_journal(campaign.digest())
            )
        rows: List[CellStatus] = []
        for cell, digest, cached in self.status(campaign):
            record = history.get(digest, {})
            rows.append(CellStatus(
                cell=cell,
                digest=digest,
                cached=cached,
                failed_attempts=int(record.get("failed_attempts", 0)),
                quarantined=bool(record.get("quarantined")) and not cached,
                flaky=bool(record.get("flaky")),
                last_error=str(record.get("last_error", "")),
            ))
        return rows

    def status_document(self, campaign: CampaignSpec) -> Dict[str, Any]:
        """:meth:`status_report` as a pinned-schema JSON document.

        The machine face of ``campaign status --json``: dashboards and
        CI consume this instead of screen-scraping the text report.
        Schema (version :data:`STATUS_SCHEMA_VERSION`; any key addition
        or semantic change bumps it)::

            {schema, campaign, campaign_digest, total,
             counts: {done, failing, pending, quarantined},
             cells: [{index, label, digest, state, cached,
                      failed_attempts, quarantined, flaky, last_error}]}
        """
        rows = self.status_report(campaign)
        counts = {"done": 0, "failing": 0, "pending": 0, "quarantined": 0}
        cells = []
        for index, row in enumerate(rows):
            counts[row.state] += 1
            cells.append({
                "index": index,
                "label": row.cell.label,
                "digest": row.digest,
                "state": row.state,
                "cached": row.cached,
                "failed_attempts": row.failed_attempts,
                "quarantined": row.quarantined,
                "flaky": row.flaky,
                "last_error": row.last_error,
            })
        return {
            "schema": STATUS_SCHEMA_VERSION,
            "campaign": campaign.name,
            "campaign_digest": campaign.digest(),
            "total": len(rows),
            "counts": counts,
            "cells": cells,
        }

    def clean(self, campaign: CampaignSpec) -> int:
        """Drop the campaign's cached cells and journal; entries removed."""
        if self.cache is None:
            return 0
        removed = sum(
            1 for cell in campaign.cells if self.cache.remove(cell.digest())
        )
        self.cache.remove_journal(campaign.digest())
        return removed


def run_campaign(
    campaign: CampaignSpec,
    executor: Optional[CampaignExecutor] = None,
    **run_kwargs: Any,
) -> CampaignResult:
    """Run ``campaign``; without an executor, serially and cache-free.

    The helper every experiment entry point calls: passing no executor
    reproduces the historical single-process behaviour exactly, while a
    configured executor layers in parallelism, caching, retries and
    journaling.
    """
    runner = executor if executor is not None else CampaignExecutor(use_cache=False)
    return runner.run(campaign, **run_kwargs)
