"""Parallel, cached, resumable execution of campaign cells.

:class:`CampaignExecutor` is a service object (construct once, run
many campaigns) with three independent capabilities:

* **parallelism** — with ``workers >= 2``, pending cells fan out
  across a :class:`~concurrent.futures.ProcessPoolExecutor`.  Every
  cell is a pure function of its spec (its scenario carries its own
  master seed, and all randomness flows through
  :class:`~repro.sim.rng.RandomStreams`), so results — trace digests
  included — are byte-identical to a serial run; only wall-clock
  changes.  The default ``workers=0`` runs cells in-process, in order,
  preserving the exact historical behaviour.
* **caching** — with ``use_cache=True`` each finished cell's payload
  is persisted to the content-addressed :class:`ResultCache`; a later
  run of any campaign containing that cell (same digest) is served
  from disk without executing.  ``force=True`` recomputes and
  overwrites.
* **resumability** — because completion is journalled and cached
  per-cell, an interrupted campaign re-run computes only the cells
  that never finished; completed cells replay from the cache.

Results always come back in campaign order, regardless of worker
completion order, so downstream consumers see deterministic output.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.campaign.cache import ResultCache
from repro.campaign.cells import execute_cell
from repro.campaign.spec import CampaignError, CampaignSpec, CellSpec


def _cell_worker(cell_payload: Dict[str, Any]) -> Tuple[Dict[str, Any], float]:
    """Execute one serialized cell; module-level so workers can pickle it.

    The serial path calls this same function, which is what guarantees
    parallel and serial runs compute byte-identical payloads.
    """
    cell = CellSpec.from_dict(cell_payload)
    start = time.perf_counter()
    payload = execute_cell(cell)
    return payload, time.perf_counter() - start


@dataclass
class CellResult:
    """One cell's outcome within a finished campaign run."""

    index: int
    cell: CellSpec
    digest: str
    payload: Dict[str, Any]
    cached: bool
    elapsed_s: float

    @property
    def trace_sha256(self) -> str:
        """The canonical trace digest, when the payload carries one."""
        value = self.payload.get("trace_sha256", "")
        return value if isinstance(value, str) else ""


@dataclass
class CampaignResult:
    """Everything a finished campaign run produced, in campaign order."""

    campaign: CampaignSpec
    digest: str
    workers: int
    wall_s: float
    cells: List[CellResult] = field(default_factory=list)

    @property
    def computed_count(self) -> int:
        return sum(1 for cell in self.cells if not cell.cached)

    @property
    def cached_count(self) -> int:
        return sum(1 for cell in self.cells if cell.cached)

    def payloads(self) -> List[Dict[str, Any]]:
        """The raw cell payloads, in campaign order."""
        return [cell.payload for cell in self.cells]

    def summary(self) -> str:
        """One line for humans: cells, hit/compute split, wall time."""
        mode = f"{self.workers} workers" if self.workers >= 2 else "serial"
        return (
            f"campaign {self.campaign.name}: {len(self.cells)} cells "
            f"({self.computed_count} computed, {self.cached_count} cached) "
            f"in {self.wall_s:.2f}s ({mode})"
        )


class CampaignExecutor:
    """Runs campaigns: fan-out across workers, memoise on disk, journal.

    Parameters
    ----------
    workers:
        Process count for pending cells; ``0``/``1`` run serially
        in-process (the default — current behaviour and golden digests
        are preserved).
    cache_dir:
        Result-cache root; defaults to ``$REPRO_CACHE_DIR`` or
        ``./.repro_cache``.
    use_cache:
        ``False`` disables both the cache and the journal — every cell
        computes, nothing is persisted (what experiment entry points
        use unless the caller opts in).
    """

    def __init__(
        self,
        workers: int = 0,
        cache_dir: Union[str, None] = None,
        use_cache: bool = True,
    ) -> None:
        self.workers = max(0, int(workers or 0))
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if use_cache else None
        )

    # -- execution ---------------------------------------------------------
    def run(
        self,
        campaign: CampaignSpec,
        force: bool = False,
        log: Optional[Callable[[str], None]] = None,
    ) -> CampaignResult:
        """Execute ``campaign``; cached cells replay, the rest compute.

        ``force=True`` ignores (and overwrites) cached entries.  ``log``
        receives one progress line per cell as it completes.
        """
        emit = log or (lambda _message: None)
        start = time.perf_counter()
        total = len(campaign.cells)
        digests = [cell.digest() for cell in campaign.cells]
        campaign_digest = campaign.digest()

        results: Dict[int, CellResult] = {}
        pending: List[int] = []
        for index, (cell, digest) in enumerate(zip(campaign.cells, digests)):
            document = None
            if not force and self.cache is not None:
                document = self.cache.load(digest)
            if document is not None:
                results[index] = CellResult(
                    index=index,
                    cell=cell,
                    digest=digest,
                    payload=document["payload"],
                    cached=True,
                    elapsed_s=float(document.get("elapsed_s") or 0.0),
                )
                emit(f"[{index + 1}/{total}] {cell.label}: cached ({digest[:12]})")
            else:
                pending.append(index)

        if self.cache is not None and pending:
            self.cache.append_journal(campaign_digest, {
                "event": "start",
                "campaign": campaign.name,
                "cells": total,
                "pending": len(pending),
                "workers": self.workers,
            })

        def complete(index: int, payload: Dict[str, Any], elapsed: float) -> None:
            cell, digest = campaign.cells[index], digests[index]
            if self.cache is not None:
                self.cache.store(digest, cell, payload, elapsed)
                self.cache.append_journal(campaign_digest, {
                    "event": "cell",
                    "index": index,
                    "digest": digest,
                    "label": cell.label,
                    "elapsed_s": round(elapsed, 6),
                })
            results[index] = CellResult(
                index=index,
                cell=cell,
                digest=digest,
                payload=payload,
                cached=False,
                elapsed_s=elapsed,
            )
            emit(
                f"[{index + 1}/{total}] {cell.label}: "
                f"computed in {elapsed:.2f}s ({digest[:12]})"
            )

        if pending and self.workers >= 2:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending))
            ) as pool:
                futures = {
                    pool.submit(_cell_worker, campaign.cells[index].to_dict()): index
                    for index in pending
                }
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        payload, elapsed = future.result()
                    except Exception as error:
                        for other in futures:
                            other.cancel()
                        raise CampaignError(
                            f"cell {campaign.cells[index].label!r} failed: {error}"
                        ) from error
                    complete(index, payload, elapsed)
        else:
            for index in pending:
                try:
                    payload, elapsed = _cell_worker(campaign.cells[index].to_dict())
                except Exception as error:
                    raise CampaignError(
                        f"cell {campaign.cells[index].label!r} failed: {error}"
                    ) from error
                complete(index, payload, elapsed)

        wall = time.perf_counter() - start
        if self.cache is not None and pending:
            self.cache.append_journal(campaign_digest, {
                "event": "end",
                "computed": len(pending),
                "wall_s": round(wall, 6),
            })
        return CampaignResult(
            campaign=campaign,
            digest=campaign_digest,
            workers=self.workers,
            wall_s=wall,
            cells=[results[index] for index in range(total)],
        )

    # -- inspection / maintenance -----------------------------------------
    def status(self, campaign: CampaignSpec) -> List[Tuple[CellSpec, str, bool]]:
        """Per-cell ``(cell, digest, cached)`` without executing anything."""
        rows: List[Tuple[CellSpec, str, bool]] = []
        for cell in campaign.cells:
            digest = cell.digest()
            cached = self.cache is not None and self.cache.load(digest) is not None
            rows.append((cell, digest, cached))
        return rows

    def clean(self, campaign: CampaignSpec) -> int:
        """Drop the campaign's cached cells and journal; entries removed."""
        if self.cache is None:
            return 0
        removed = sum(
            1 for cell in campaign.cells if self.cache.remove(cell.digest())
        )
        self.cache.remove_journal(campaign.digest())
        return removed


def run_campaign(
    campaign: CampaignSpec,
    executor: Optional[CampaignExecutor] = None,
    **run_kwargs: Any,
) -> CampaignResult:
    """Run ``campaign``; without an executor, serially and cache-free.

    The helper every experiment entry point calls: passing no executor
    reproduces the historical single-process behaviour exactly, while a
    configured executor layers in parallelism, caching and journaling.
    """
    runner = executor if executor is not None else CampaignExecutor(use_cache=False)
    return runner.run(campaign, **run_kwargs)
