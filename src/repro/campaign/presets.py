"""Named campaign presets.

Mirrors the scenario preset registry one level up: stable names map to
:class:`~repro.campaign.spec.CampaignSpec` factories so canonical
fleets are discoverable (``python -m repro campaign list``), runnable
(``campaign run NAME``) and exportable (``campaign show NAME``)
without hand-writing a campaign document.

Factories are registered by explicit name and may import experiment
modules lazily — the campaign package itself never depends on the
experiments layer at import time.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.campaign.spec import CampaignSpec, CellSpec, expand_grid, replicate_seeds
from repro.scenario.registry import bench_scenario, fig7_scenario, get_scenario

_CAMPAIGNS: Dict[str, Callable[[], CampaignSpec]] = {}


def register_campaign(
    name: str,
) -> Callable[[Callable[[], CampaignSpec]], Callable[[], CampaignSpec]]:
    """Register the decorated zero-argument factory under ``name``."""

    def decorate(factory: Callable[[], CampaignSpec]) -> Callable[[], CampaignSpec]:
        if name in _CAMPAIGNS:
            raise ValueError(f"campaign {name!r} is already registered")
        _CAMPAIGNS[name] = factory
        return factory

    return decorate


def campaign_names() -> List[str]:
    """All registered campaign preset names, sorted."""
    return sorted(_CAMPAIGNS)


def get_campaign(name: str) -> CampaignSpec:
    """A fresh campaign spec for ``name``; ``KeyError`` with the roster."""
    factory = _CAMPAIGNS.get(name)
    if factory is None:
        raise KeyError(
            f"unknown campaign {name!r}; known: {', '.join(campaign_names())}"
        )
    return factory()


@register_campaign("smoke")
def _smoke() -> CampaignSpec:
    """Four tiny seed replicas — the CI parallel-execution smoke.

    ``ledger-comparison`` runs generation-time PoP, so each seed's
    trace digest is distinct — a real determinism probe, not just a
    liveness check.
    """
    return CampaignSpec(
        name="smoke",
        description=(
            "ledger-comparison replicated over 4 seeds — a seconds-long "
            "fleet (with PoP, so traces are seed-sensitive) for verifying "
            "parallel execution and caching end to end"
        ),
        cells=replicate_seeds(get_scenario("ledger-comparison"), (0, 1, 2, 3)),
    )


@register_campaign("bench-grid")
def _bench_grid() -> CampaignSpec:
    """The bench macro workload replicated over seeds — the speedup demo."""
    return CampaignSpec(
        name="bench-grid",
        description=(
            "the bench-full macro workload (~1s per cell) over 6 seeds; "
            "run with --workers N to see near-linear wall-clock speedup, "
            "re-run to see every cell served from cache"
        ),
        cells=replicate_seeds(bench_scenario(fast=False), (0, 1, 2, 3, 4, 5)),
    )


@register_campaign("ledger-grid")
def _ledger_grid() -> CampaignSpec:
    """Every ledger backend × 4 seeds on the comparison workload."""
    return CampaignSpec(
        name="ledger-grid",
        description=(
            "the ledger-comparison workload on every registered backend "
            "(2LDAG, PBFT, IOTA) over 4 seeds — 12 cells; the three-ledger "
            "scoreboard as one parallel, cached fleet"
        ),
        cells=expand_grid(
            get_scenario("ledger-comparison"),
            {"backend": ["2ldag", "pbft", "iota"], "seed": [0, 1, 2, 3]},
        ),
    )


@register_campaign("fault-grid")
def _fault_grid() -> CampaignSpec:
    """Every backend under escalating fault intensity — the resilience grid."""
    from repro.experiments.fault_resilience import fault_grid_cells

    return CampaignSpec(
        name="fault-grid",
        description=(
            "fault resilience on every registered backend: 3 backends x "
            "fault intensities {none, crash, stress} x 2 seeds — 18 cells "
            "measuring consensus progress, storage and PoP success under "
            "crash/rejoin, partitions and degraded links"
        ),
        cells=fault_grid_cells(),
    )


@register_campaign("fig7-quick")
def _fig7_quick() -> CampaignSpec:
    """The three Fig. 7 body sizes at quick scale as one fleet."""
    from repro.experiments.common import ExperimentScale

    scale = ExperimentScale.quick()
    return CampaignSpec(
        name="fig7-quick",
        description=(
            "Fig. 7 storage runs for C in {0.1, 0.5, 1.0} MB at quick scale"
        ),
        cells=tuple(
            CellSpec(scenario=fig7_scenario(body_mb, scale))
            for body_mb in (0.1, 0.5, 1.0)
        ),
    )


@register_campaign("gamma-sweep")
def _gamma_sweep() -> CampaignSpec:
    """The γ message-cost sweep (Props. 4/6 bracketing) as cells."""
    from repro.experiments.sweeps import gamma_sweep_cells

    return CampaignSpec(
        name="gamma-sweep",
        description=(
            "cold-cache PoP message cost vs tolerance γ in {2, 4, 6, 8} "
            "(Propositions 4 and 6 bracket the measurements)"
        ),
        cells=gamma_sweep_cells((2, 4, 6, 8)),
    )


@register_campaign("density-sweep")
def _density_sweep() -> CampaignSpec:
    """The radio-range density sweep as cells."""
    from repro.experiments.sweeps import density_sweep_cells

    return CampaignSpec(
        name="density-sweep",
        description=(
            "digest overhead vs PoP cost across radio ranges "
            "{60, 100, 140} m (denser networks: bigger Δ, shorter paths)"
        ),
        cells=density_sweep_cells((60.0, 100.0, 140.0)),
    )


@register_campaign("attack-roster")
def _attack_roster() -> CampaignSpec:
    """Every attack preset audited from honest and victim viewpoints."""
    from repro.experiments.attack_compare import attack_roster_cells

    return CampaignSpec(
        name="attack-roster",
        description=(
            "PoP audit scoreboard across the adversary roster: clean "
            "baseline, majority coalition, eclipse (honest and victim "
            "views) and sybil"
        ),
        cells=attack_roster_cells(),
    )
