"""Campaign specifications: declarative fleets of scenario cells.

A *campaign* is an ordered set of runnable cells.  Each
:class:`CellSpec` pairs a :class:`~repro.scenario.spec.ScenarioSpec`
with a *cell kind* (what to do with the built deployment — run the
slot workload, probe it Fig. 9-style, audit it under attack, …) and a
small JSON ``params`` dict the kind interprets.  Because a cell is a
pure function of its spec, it has a stable content digest
(:meth:`CellSpec.digest`) that keys the on-disk result cache and makes
re-running a campaign compute only missing or invalidated cells.

Campaigns are built three ways, all converging on the same cell tuple:

* programmatically — :func:`expand_grid` applies a cartesian product
  of dotted-path overrides (``"protocol.gamma": [4, 8]``) to a base
  scenario, :func:`replicate_seeds` is the seed-replication shorthand;
* from JSON — :meth:`CampaignSpec.from_file` reads a campaign document
  whose cell entries reference presets or inline scenario specs plus
  optional ``grid`` / ``seeds`` expansions;
* from the preset registry — :mod:`repro.campaign.presets` names the
  canonical fleets (``smoke``, ``bench-grid``, ``gamma-sweep``, …).

Execution lives in :mod:`repro.campaign.executor`; cell kinds in
:mod:`repro.campaign.cells`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from repro.scenario.registry import get_scenario, scenario_names
from repro.scenario.spec import ScenarioError, ScenarioSpec

#: Format marker for serialized campaign documents.
CAMPAIGN_FORMAT_VERSION = 1

#: Bumped whenever cell execution semantics change in a way that makes
#: previously cached payloads wrong; part of every cell digest, so a
#: bump invalidates the whole result cache at once.
CAMPAIGN_CODE_VERSION = 1


class CampaignError(ValueError):
    """A campaign that cannot describe a runnable fleet."""


def _canonical_json(payload: Any) -> str:
    """The canonical (sorted, compact) JSON text digests are taken over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CellSpec:
    """One unit of campaign work: a scenario plus how to execute it.

    ``kind`` selects the registered cell runner (see
    :mod:`repro.campaign.cells`); ``params`` are kind-specific knobs
    (e.g. probe counts) and must be JSON-serializable — they are part
    of the cell's cache digest.
    """

    scenario: ScenarioSpec
    kind: str = "scenario"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise CampaignError(f"cell kind must be a non-empty string, got {self.kind!r}")
        try:
            _canonical_json(dict(self.params))
        except (TypeError, ValueError) as error:
            raise CampaignError(f"cell params must be JSON-serializable: {error}")

    @property
    def label(self) -> str:
        """Human-readable identity for progress lines and journals."""
        if self.kind == "scenario":
            return self.scenario.name
        return f"{self.kind}:{self.scenario.name}"

    def digest(self) -> str:
        """Stable content digest keying this cell's cached result.

        Covers the cell kind, its params, the full scenario spec (which
        embeds the spec format version) and the campaign code version —
        any change to what the cell would compute, or to how cells are
        computed, yields a different digest and therefore a cache miss.

        Execution knobs are deliberately *excluded*: worker count,
        caching, retries, timeouts and chaos schedules affect how (and
        whether) a cell gets computed, never what it computes, so a
        payload cached under any of them is valid under all of them.
        """
        document = {
            "code_version": CAMPAIGN_CODE_VERSION,
            "kind": self.kind,
            "params": dict(self.params),
            "scenario": self.scenario.to_dict(),
        }
        return hashlib.sha256(_canonical_json(document).encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (round-trips through :meth:`from_dict`)."""
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "scenario": self.scenario.to_dict(),
        }
        if self.params:
            payload["params"] = dict(self.params)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CellSpec":
        """Rebuild one expanded cell (``scenario`` or ``preset`` form)."""
        data = dict(payload)
        kind = data.pop("kind", "scenario")
        params = data.pop("params", {})
        preset = data.pop("preset", None)
        scenario_data = data.pop("scenario", None)
        if data:
            raise CampaignError(
                f"unknown cell field(s): {', '.join(sorted(data))}"
            )
        scenario = _resolve_base_scenario(preset, scenario_data)
        if not isinstance(params, Mapping):
            raise CampaignError(f"cell params must be an object, got {params!r}")
        return cls(scenario=scenario, kind=kind, params=dict(params))


# -- grid expansion -----------------------------------------------------------

def apply_override(spec: ScenarioSpec, path: str, value: Any) -> ScenarioSpec:
    """Return ``spec`` with the dotted-``path`` field replaced by ``value``.

    ``path`` addresses nested spec sections (``"protocol.gamma"``,
    ``"workload.slots"``, ``"topology.node_count"``, plain ``"seed"``);
    JSON lists become tuples for tuple-typed fields.  Validation re-runs
    on the rebuilt spec, so an override can never produce a spec the
    scenario layer would reject at run time.
    """
    parts = path.split(".")

    def descend(obj: Any, remaining: List[str], trail: List[str]) -> Any:
        name = remaining[0]
        known = {f.name for f in dataclasses.fields(obj)}
        if name not in known:
            raise CampaignError(
                f"unknown override field {'.'.join(trail + [name])!r}; "
                f"{type(obj).__name__} has: {', '.join(sorted(known))}"
            )
        if len(remaining) == 1:
            leaf = tuple(value) if isinstance(value, list) else value
            return replace(obj, **{name: leaf})
        child = getattr(obj, name)
        if not dataclasses.is_dataclass(child) or child is None:
            raise CampaignError(
                f"override field {'.'.join(trail + [name])!r} is not a nested section"
            )
        return replace(obj, **{name: descend(child, remaining[1:], trail + [name])})

    try:
        return descend(spec, parts, [])
    except ScenarioError as error:
        raise CampaignError(
            f"override {path}={value!r} produces an invalid scenario: {error}"
        )


def expand_grid(
    base: ScenarioSpec,
    axes: Mapping[str, Sequence[Any]],
    kind: str = "scenario",
    params: Mapping[str, Any] = None,
) -> Tuple[CellSpec, ...]:
    """One cell per point of the cartesian product of ``axes``.

    ``axes`` maps dotted field paths to value lists; expansion order is
    the axes' declaration order (row-major), so a campaign document
    always expands to the same ordered cell tuple.  Expanded scenarios
    are renamed ``base[axis=value,...]`` so progress lines and cached
    entries are self-describing.
    """
    if not axes:
        return (CellSpec(scenario=base, kind=kind, params=dict(params or {})),)
    paths = list(axes)
    for path in paths:
        values = axes[path]
        if not isinstance(values, (list, tuple)) or len(values) == 0:
            raise CampaignError(
                f"grid axis {path!r} needs a non-empty list of values, got {values!r}"
            )
    cells: List[CellSpec] = []
    for combo in itertools.product(*(list(axes[path]) for path in paths)):
        spec = base
        for path, value in zip(paths, combo):
            spec = apply_override(spec, path, value)
        label = ",".join(f"{path}={value}" for path, value in zip(paths, combo))
        spec = replace(spec, name=f"{base.name}[{label}]")
        cells.append(CellSpec(scenario=spec, kind=kind, params=dict(params or {})))
    return tuple(cells)


def replicate_seeds(
    base: ScenarioSpec,
    seeds: Sequence[int],
    kind: str = "scenario",
    params: Mapping[str, Any] = None,
) -> Tuple[CellSpec, ...]:
    """Seed replication: the same scenario once per master seed."""
    return expand_grid(base, {"seed": list(seeds)}, kind=kind, params=params)


def _resolve_base_scenario(preset: Any, scenario_data: Any) -> ScenarioSpec:
    """The base scenario a cell entry names (exactly one source)."""
    if (preset is None) == (scenario_data is None):
        raise CampaignError(
            "cell entry needs exactly one of 'preset' or 'scenario'"
        )
    if preset is not None:
        try:
            return get_scenario(str(preset))
        except KeyError:
            raise CampaignError(
                f"unknown scenario preset {preset!r}; "
                f"known: {', '.join(scenario_names())}"
            )
    try:
        return ScenarioSpec.from_dict(dict(scenario_data))
    except (ScenarioError, TypeError, ValueError) as error:
        raise CampaignError(f"invalid inline scenario: {error}")


def _cells_from_entry(entry: Any, index: int) -> Tuple[CellSpec, ...]:
    """Expand one campaign-document cell entry into concrete cells."""
    if not isinstance(entry, Mapping):
        raise CampaignError(f"cell entry {index} must be an object, got {entry!r}")
    data = dict(entry)
    kind = data.pop("kind", "scenario")
    params = data.pop("params", {})
    grid = data.pop("grid", {})
    seeds = data.pop("seeds", None)
    preset = data.pop("preset", None)
    scenario_data = data.pop("scenario", None)
    if data:
        raise CampaignError(
            f"cell entry {index}: unknown field(s) {', '.join(sorted(data))}"
        )
    if not isinstance(grid, Mapping):
        raise CampaignError(f"cell entry {index}: 'grid' must be an object")
    try:
        base = _resolve_base_scenario(preset, scenario_data)
    except CampaignError as error:
        raise CampaignError(f"cell entry {index}: {error}")
    axes: Dict[str, Sequence[Any]] = dict(grid)
    if seeds is not None:
        if "seed" in axes:
            raise CampaignError(
                f"cell entry {index}: give either 'seeds' or a 'seed' grid axis, not both"
            )
        axes["seed"] = list(seeds)
    try:
        return expand_grid(base, axes, kind=kind, params=dict(params or {}))
    except CampaignError as error:
        raise CampaignError(f"cell entry {index}: {error}")


@dataclass(frozen=True)
class CampaignSpec:
    """An ordered, content-addressed fleet of cells.

    Cell order is meaningful (results come back in campaign order
    regardless of completion order) and duplicate cells are rejected —
    two cells with equal digests would compute the same thing twice and
    make "this cached entry belongs to that cell" ambiguous.
    """

    name: str
    description: str = ""
    cells: Tuple[CellSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign needs a non-empty name")
        if not self.cells:
            raise CampaignError(f"campaign {self.name!r} has no cells")
        seen: Dict[str, str] = {}
        for cell in self.cells:
            digest = cell.digest()
            if digest in seen:
                raise CampaignError(
                    f"campaign {self.name!r} contains duplicate cells: "
                    f"{seen[digest]!r} and {cell.label!r} have identical specs"
                )
            seen[digest] = cell.label

    def digest(self) -> str:
        """Stable identity of this campaign (names its journal file)."""
        document = {
            "name": self.name,
            "cells": [cell.digest() for cell in self.cells],
        }
        return hashlib.sha256(_canonical_json(document).encode("utf-8")).hexdigest()

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The fully expanded JSON form (round-trips via :meth:`from_dict`)."""
        payload: Dict[str, Any] = {
            "format_version": CAMPAIGN_FORMAT_VERSION,
            "name": self.name,
            "cells": [cell.to_dict() for cell in self.cells],
        }
        if self.description:
            payload["description"] = self.description
        return payload

    def to_json(self, indent: int = 2) -> str:
        """The canonical JSON text of this campaign."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        """Build a campaign from a document; grids/seeds are expanded."""
        if not isinstance(payload, Mapping):
            raise CampaignError(f"campaign document must be an object, got {payload!r}")
        data = dict(payload)
        version = data.pop("format_version", CAMPAIGN_FORMAT_VERSION)
        if version != CAMPAIGN_FORMAT_VERSION:
            raise CampaignError(f"unsupported campaign format {version!r}")
        name = data.pop("name", "")
        description = data.pop("description", "")
        entries = data.pop("cells", None)
        if data:
            raise CampaignError(
                f"unknown campaign field(s): {', '.join(sorted(data))}"
            )
        if not isinstance(entries, list) or not entries:
            raise CampaignError("campaign needs a non-empty 'cells' list")
        cells: List[CellSpec] = []
        for index, entry in enumerate(entries):
            cells.extend(_cells_from_entry(entry, index))
        return cls(name=str(name), description=str(description), cells=tuple(cells))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Load a campaign document from a JSON file."""
        try:
            payload = json.loads(Path(path).read_text())
        except ValueError as error:
            raise CampaignError(f"campaign file {path} is not valid JSON: {error}")
        return cls.from_dict(payload)

    def save(self, path: Union[str, Path]) -> None:
        """Write the expanded canonical JSON of this campaign atomically."""
        from repro.experiments.persistence import atomic_write_text

        atomic_write_text(path, self.to_json())
