"""Static determinism & architecture analysis (``python -m repro lint``).

A small AST rule engine enforcing the tree's architecture invariants at
diff time — the conventions the chaos harness can only probe
probabilistically are machine-checked here deterministically:

* all randomness flows through :mod:`repro.sim.rng` named streams
  (``unseeded-random``);
* simulation paths never read the wall clock (``wall-clock-in-sim``)
  or the PYTHONHASHSEED-dependent builtin ``hash()``
  (``builtin-hash-in-digest``);
* deployments are built only by the scenario pipeline
  (``network-outside-scenario``) and ledgers reached only through the
  backend registry (``backend-bypass``);
* result files are written crash-atomically (``non-atomic-json-write``);
* spec dataclasses stay frozen (``unfrozen-spec-dataclass``) and no
  function shares a mutable default (``mutable-default-arg``).

See ``docs/static-analysis.md`` for the full catalogue, the inline
``# repro: allow[rule-id]`` suppression pragma and the baseline
workflow.  The engine lives in :mod:`repro.checks.engine`, the concrete
rules in :mod:`repro.checks.rules`.
"""

from repro.checks.baseline import (
    baseline_document,
    finding_key,
    load_baseline,
    write_baseline,
)
from repro.checks.cli import run_lint
from repro.checks.engine import (
    ERROR,
    WARNING,
    CheckError,
    CheckReport,
    Finding,
    ModuleUnderCheck,
    Rule,
    build_rules,
    check_paths,
    check_source,
    get_rule,
    register_rule,
    rule_ids,
)
from repro.checks.report import render_json, render_rule_list, render_text
from repro.checks.rules import rule_catalogue

__all__ = [
    "ERROR",
    "WARNING",
    "CheckError",
    "CheckReport",
    "Finding",
    "ModuleUnderCheck",
    "Rule",
    "baseline_document",
    "build_rules",
    "check_paths",
    "check_source",
    "finding_key",
    "get_rule",
    "load_baseline",
    "register_rule",
    "render_json",
    "render_rule_list",
    "render_text",
    "rule_catalogue",
    "rule_ids",
    "run_lint",
    "write_baseline",
]
