"""Committed baselines: grandfather existing findings, gate new ones.

A baseline is a JSON file listing known findings as stable
``(rule, path, line)`` keys.  ``repro lint --baseline FILE`` subtracts
them from the report, so a tree with legacy debt can still enforce the
invariants on every *new* line of code; deleting an entry (or the whole
file) resurfaces the finding immediately.  ``--write-baseline FILE``
snapshots the current findings — the workflow for adopting a rule on an
old tree is: write the baseline, commit it, burn it down entry by
entry.  This tree ships lint-clean with no baseline at all.

Baselines are written through
:func:`repro.experiments.persistence.atomic_write_text`, the same
crash-atomic path the ``non-atomic-json-write`` rule enforces.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Set, Tuple, Union

from repro.checks.engine import CheckError, Finding

#: Format marker for baseline files, bumped on breaking layout changes.
BASELINE_FORMAT_VERSION = 1

#: The key a finding is grandfathered by.
BaselineKey = Tuple[str, str, int]


def finding_key(finding: Finding) -> BaselineKey:
    """The ``(rule, path, line)`` identity of a finding."""
    return (finding.rule, finding.path, finding.line)


def load_baseline(path: Union[str, Path]) -> Set[BaselineKey]:
    """Read a baseline file into a set of grandfathered keys."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise CheckError(f"baseline file not found: {path}")
    except (OSError, json.JSONDecodeError) as error:
        raise CheckError(f"cannot read baseline {path}: {error}")
    if not isinstance(payload, dict):
        raise CheckError(f"baseline {path} is not a JSON object")
    version = payload.get("format_version")
    if version != BASELINE_FORMAT_VERSION:
        raise CheckError(
            f"baseline {path} has unsupported format_version {version!r}"
        )
    keys: Set[BaselineKey] = set()
    for entry in payload.get("findings", []):
        if not isinstance(entry, dict):
            raise CheckError(f"baseline {path} has a malformed entry: {entry!r}")
        try:
            keys.add((str(entry["rule"]), str(entry["path"]), int(entry["line"])))
        except (KeyError, TypeError, ValueError):
            raise CheckError(f"baseline {path} has a malformed entry: {entry!r}")
    return keys


def baseline_document(findings: Sequence[Finding]) -> Dict[str, Any]:
    """The JSON document grandfathering ``findings``.

    Messages ride along for human review but are not part of the
    matching key, so rewording a rule never invalidates a baseline.
    """
    entries: List[Dict[str, Any]] = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }
        for finding in sorted(findings)
    ]
    return {"format_version": BASELINE_FORMAT_VERSION, "findings": entries}


def write_baseline(path: Union[str, Path], findings: Sequence[Finding]) -> None:
    """Snapshot ``findings`` as a baseline file, atomically."""
    from repro.experiments.persistence import atomic_write_text

    text = json.dumps(baseline_document(findings), indent=2, sort_keys=True) + "\n"
    atomic_write_text(path, text)
