"""The ``python -m repro lint`` entry point.

Exit codes follow the gate contract CI relies on:

* ``0`` — no error-severity findings (warnings may exist);
* ``1`` — at least one non-baselined, non-suppressed error finding;
* ``2`` — the invocation itself is bad (unknown rule/severity, missing
  path or baseline, malformed baseline file).

Usage examples::

    python -m repro lint src
    python -m repro lint --format json src tests
    python -m repro lint --select unseeded-random,wall-clock-in-sim src
    python -m repro lint --severity mutable-default-arg=warning src
    python -m repro lint --write-baseline lint-baseline.json src
    python -m repro lint --baseline lint-baseline.json src
    python -m repro lint --list
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Set

from repro.checks.baseline import (
    BaselineKey,
    load_baseline,
    write_baseline,
)
from repro.checks.engine import (
    CheckError,
    build_rules,
    check_paths,
)
from repro.checks.report import render_json, render_rule_list, render_text

#: What ``repro lint`` checks when no path is given.
DEFAULT_PATHS = ("src",)


def _split_ids(values: Optional[List[str]]) -> Optional[List[str]]:
    """Flatten repeatable, comma-separated id flags; None when unused."""
    if not values:
        return None
    out: List[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def _severity_overrides(values: Optional[List[str]]) -> Dict[str, str]:
    """Parse ``--severity rule=level`` pairs."""
    overrides: Dict[str, str] = {}
    for value in values or []:
        rule_id, separator, level = value.partition("=")
        if not separator or not rule_id or not level:
            raise CheckError(
                f"--severity takes RULE=LEVEL (e.g. mutable-default-arg="
                f"warning), got {value!r}"
            )
        overrides[rule_id.strip()] = level.strip()
    return overrides


def run_lint(args: object) -> int:
    """Execute the lint subcommand parsed by :mod:`repro.cli`."""
    try:
        if getattr(args, "list_rules", False):
            print(render_rule_list())
            return 0
        rules = build_rules(
            select=_split_ids(getattr(args, "select", None)),
            ignore=_split_ids(getattr(args, "ignore", None)),
            severities=_severity_overrides(getattr(args, "severity", None)),
        )
        baseline: Optional[Set[BaselineKey]] = None
        baseline_path = getattr(args, "baseline", None)
        if baseline_path:
            baseline = load_baseline(baseline_path)
        paths = list(getattr(args, "paths", None) or DEFAULT_PATHS)
        report = check_paths(paths, rules=rules, baseline=baseline)
        write_path = getattr(args, "write_baseline", None)
        if write_path:
            write_baseline(write_path, report.findings)
            print(
                f"baseline with {len(report.findings)} finding(s) "
                f"written to {write_path}"
            )
            return 0
        output_format = getattr(args, "format", "text")
        if output_format == "json":
            sys.stdout.write(render_json(report))
        else:
            print(render_text(report, verbose=getattr(args, "verbose", False)))
        return 1 if report.error_count else 0
    except CheckError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
