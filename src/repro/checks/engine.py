"""The rule engine behind ``python -m repro lint``.

The reproduction's determinism and crash-safety guarantees rest on
conventions — all randomness through named streams, no wall clocks in
simulation paths, atomic JSON persistence — that the chaos harness can
only probe probabilistically.  This engine checks them *statically*: a
:class:`Rule` inspects one parsed module and yields :class:`Finding`
records; the engine walks a file tree, applies every registered rule,
honours inline ``# repro: allow[rule-id]`` suppressions and an optional
committed baseline, and reports stable ``path:line`` findings.

Rules are registered with :func:`register_rule` and looked up by their
stable string id (``unseeded-random``, ``non-atomic-json-write``, …);
the concrete invariants live in :mod:`repro.checks.rules`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

#: Finding severities, mildest last.  Only ``error`` findings make the
#: lint exit non-zero; ``warning`` findings are reported but advisory.
ERROR = "error"
WARNING = "warning"
SEVERITIES = (ERROR, WARNING)

#: The inline suppression pragma: ``# repro: allow[rule-id]`` (several
#: ids comma-separated).  It silences matching findings on its own line
#: or, when the pragma stands on a comment-only line, on the next line.
_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")

#: The synthetic rule id findings about unparseable files carry.
PARSE_ERROR_RULE = "parse-error"


class CheckError(Exception):
    """A lint invocation that cannot run (bad path, bad rule id, ...)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a ``path:line:col`` location.

    Ordering is by location then rule id, which is the stable order
    reports and baselines use.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def describe(self) -> str:
        """The canonical one-line text rendering."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


class Rule:
    """One statically checkable invariant.

    Subclasses define the stable ``id``, a default ``severity``, a one-
    line ``summary`` and a ``rationale`` (both surfaced by ``--list``
    and the docs), and implement :meth:`check` over a parsed module.
    """

    id: str = ""
    severity: str = ERROR
    summary: str = ""
    rationale: str = ""

    def check(self, module: "ModuleUnderCheck") -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for mypy

    def finding(
        self, module: "ModuleUnderCheck", node: ast.AST, message: str
    ) -> Finding:
        """A :class:`Finding` anchored at ``node`` in ``module``."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=self.severity,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a :class:`Rule` to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"rule {cls.id!r} has unknown severity {cls.severity!r}")
    _REGISTRY[cls.id] = cls
    return cls


def rule_ids() -> Tuple[str, ...]:
    """All registered rule ids, sorted."""
    _ensure_rules_loaded()
    return tuple(sorted(_REGISTRY))


def get_rule(rule_id: str) -> Type[Rule]:
    """The registered rule class for ``rule_id``."""
    _ensure_rules_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise CheckError(
            f"unknown rule id {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        )


def _ensure_rules_loaded() -> None:
    # The concrete rules register themselves on import; resolving them
    # lazily keeps engine <-> rules imports acyclic.
    import repro.checks.rules  # noqa: F401  (imported for registration)


class ModuleUnderCheck:
    """One parsed source file plus the lookups rules need.

    ``path`` is the path findings report (as discovered, POSIX
    separators); ``rel`` is the module's *architecture-relative* path —
    the portion starting at the ``repro/`` package when present — which
    is what path-scoped rules match against, so checks behave the same
    whether the tree is linted as ``src``, ``src/repro`` or an absolute
    path.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines: List[str] = source.splitlines()
        self.rel = _architecture_relative(path)
        self._imports: Optional[Dict[str, str]] = None
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    # -- lookups -----------------------------------------------------------
    @property
    def imports(self) -> Mapping[str, str]:
        """Local name -> dotted origin for every import in the module.

        ``import random`` maps ``random -> random``; ``from os import
        urandom as u`` maps ``u -> os.urandom``.  Later imports of the
        same name win, matching runtime rebinding closely enough for
        invariant checking.
        """
        if self._imports is None:
            table: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.asname:
                            table[alias.asname] = alias.name
                        else:
                            # ``import a.b.c`` binds ``a``; deeper
                            # segments resolve through the attribute
                            # chain walker in :meth:`resolve`.
                            head = alias.name.split(".")[0]
                            table[head] = head
                elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        local = alias.asname or alias.name
                        table[local] = f"{node.module}.{alias.name}"
            self._imports = table
        return self._imports

    @property
    def parents(self) -> Mapping[ast.AST, ast.AST]:
        """Child -> parent for every node in the tree (built lazily)."""
        if self._parents is None:
            table: Dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    table[child] = parent
            self._parents = table
        return self._parents

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The dotted origin of a Name/Attribute chain, or ``None``.

        A bare builtin resolves to itself (``open`` -> ``"open"``); an
        imported name resolves through :attr:`imports` (``Random`` ->
        ``"random.Random"`` after ``from random import Random``).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.imports.get(node.id, node.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def enclosing_functions(self, node: ast.AST) -> Iterator[ast.AST]:
        """The function definitions ``node`` sits inside, innermost first."""
        parents = self.parents
        current: Optional[ast.AST] = parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield current
            current = parents.get(current)

    def in_path(self, *prefixes: str) -> bool:
        """Whether this module's architecture-relative path matches.

        A prefix ending in ``/`` matches a package subtree; any other
        prefix must match the path exactly.
        """
        for prefix in prefixes:
            if prefix.endswith("/"):
                if self.rel.startswith(prefix):
                    return True
            elif self.rel == prefix:
                return True
        return False

    # -- suppressions ------------------------------------------------------
    def suppressed_ids(self, line: int) -> Set[str]:
        """The rule ids an ``allow`` pragma silences on ``line``.

        A pragma counts when it sits on the line itself or on a
        comment-only line directly above it.
        """
        ids = self._pragma_ids(line)
        if line >= 2:
            above = self.lines[line - 2].strip()
            if above.startswith("#"):
                ids |= self._pragma_ids(line - 1)
        return ids

    def _pragma_ids(self, line: int) -> Set[str]:
        if not 1 <= line <= len(self.lines):
            return set()
        match = _PRAGMA.search(self.lines[line - 1])
        if not match:
            return set()
        return {part.strip() for part in match.group(1).split(",") if part.strip()}


def _architecture_relative(path: str) -> str:
    parts = Path(path).as_posix().split("/")
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return Path(path).as_posix()


@dataclass
class CheckReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def error_count(self) -> int:
        """Findings that should fail the gate."""
        return sum(1 for f in self.findings if f.severity == ERROR)

    @property
    def warning_count(self) -> int:
        """Advisory findings."""
        return sum(1 for f in self.findings if f.severity == WARNING)

    def summary(self) -> str:
        """The one-line run summary the CLI prints last."""
        return (
            f"{self.files_checked} file(s) checked: "
            f"{self.error_count} error(s), {self.warning_count} warning(s), "
            f"{self.suppressed} suppressed, {self.baselined} baselined"
        )


def build_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    severities: Optional[Mapping[str, str]] = None,
) -> List[Rule]:
    """Instantiate the configured rule set.

    ``select`` restricts to the named ids, ``ignore`` drops ids, and
    ``severities`` overrides per-rule severity (``{"mutable-default-arg":
    "warning"}``).  Unknown ids raise :class:`CheckError`.
    """
    _ensure_rules_loaded()
    chosen = list(select) if select else list(rule_ids())
    for rule_id in list(chosen) + list(ignore or []):
        get_rule(rule_id)  # validates
    if ignore:
        dropped = set(ignore)
        chosen = [rule_id for rule_id in chosen if rule_id not in dropped]
    rules: List[Rule] = []
    for rule_id in chosen:
        rule = get_rule(rule_id)()
        override = (severities or {}).get(rule_id)
        if override is not None:
            if override not in SEVERITIES:
                raise CheckError(
                    f"unknown severity {override!r} for rule {rule_id!r}; "
                    f"use one of: {', '.join(SEVERITIES)}"
                )
            rule.severity = override
        rules.append(rule)
    for rule_id in (severities or {}):
        get_rule(rule_id)  # validates ids that named no selected rule
    return rules


def discover_files(paths: Sequence[str]) -> List[Path]:
    """The python files under ``paths`` (files verbatim, dirs recursed)."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise CheckError(f"no such file or directory: {raw}")
    seen: Set[Path] = set()
    unique: List[Path] = []
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def check_source(
    path: str, source: str, rules: Sequence[Rule]
) -> Tuple[List[Finding], int]:
    """Check one in-memory module; returns (findings, suppressed count)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        finding = Finding(
            path=path,
            line=error.lineno or 1,
            col=(error.offset or 0) or 1,
            rule=PARSE_ERROR_RULE,
            severity=ERROR,
            message=f"file does not parse: {error.msg}",
        )
        return [finding], 0
    module = ModuleUnderCheck(path, source, tree)
    kept: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(module):
            if finding.rule in module.suppressed_ids(finding.line):
                suppressed += 1
            else:
                kept.append(finding)
    return sorted(kept), suppressed


def check_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Set[Tuple[str, str, int]]] = None,
) -> CheckReport:
    """Lint ``paths`` with ``rules`` (default: all registered).

    ``baseline`` holds grandfathered ``(rule, path, line)`` keys (see
    :mod:`repro.checks.baseline`); matching findings are counted but not
    reported, so legacy debt never blocks the gate while anything *new*
    does.
    """
    active = list(rules) if rules is not None else build_rules()
    report = CheckReport()
    for file_path in discover_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as error:
            raise CheckError(f"cannot read {file_path}: {error}")
        findings, suppressed = check_source(
            file_path.as_posix(), source, active
        )
        report.files_checked += 1
        report.suppressed += suppressed
        for finding in findings:
            if baseline and (finding.rule, finding.path, finding.line) in baseline:
                report.baselined += 1
            else:
                report.findings.append(finding)
    report.findings.sort()
    return report
