"""Rendering lint results: ``file:line`` text and a stable JSON schema.

The JSON layout is consumed by CI annotations and tests
(``tests/checks/test_cli_lint.py`` pins the schema), so keys are
append-only: removing or renaming one is a breaking change.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.checks.engine import CheckReport
from repro.checks.rules import rule_catalogue

#: Format marker for the ``--format json`` document.
REPORT_FORMAT_VERSION = 1


def render_text(report: CheckReport, verbose: bool = False) -> str:
    """The human-facing report: one ``path:line:col`` line per finding.

    ``verbose`` appends each offending rule's rationale once, after the
    findings — the lint equivalent of a compiler's explain mode.
    """
    lines = [finding.describe() for finding in report.findings]
    if verbose and report.findings:
        catalogue = rule_catalogue()
        lines.append("")
        for rule_id in sorted({f.rule for f in report.findings}):
            if rule_id in catalogue:
                _, summary, rationale = catalogue[rule_id]
                lines.append(f"{rule_id}: {summary}")
                lines.append(f"  {rationale}")
    lines.append(report.summary())
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    """The machine-facing report (schema pinned by the test suite)."""
    document: Dict[str, Any] = {
        "format_version": REPORT_FORMAT_VERSION,
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "severity": finding.severity,
                "message": finding.message,
            }
            for finding in report.findings
        ],
        "summary": {
            "files_checked": report.files_checked,
            "errors": report.error_count,
            "warnings": report.warning_count,
            "suppressed": report.suppressed,
            "baselined": report.baselined,
        },
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def render_rule_list() -> str:
    """The ``--list`` catalogue: id, severity, summary per rule."""
    catalogue = rule_catalogue()
    width = max(len(rule_id) for rule_id in catalogue)
    lines = [
        f"{rule_id:<{width}}  {severity:<7}  {summary}"
        for rule_id, (severity, summary, _) in sorted(catalogue.items())
    ]
    return "\n".join(lines)
