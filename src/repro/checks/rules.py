"""The concrete invariants ``python -m repro lint`` enforces.

Each rule encodes one architecture invariant from ROADMAP.md /
docs/static-analysis.md as an AST check.  Rule ids are stable API: they
appear in findings, inline ``# repro: allow[...]`` pragmas, baselines
and CI logs, so renaming one is a breaking change.

The determinism contract the first three rules protect: seeded trace
digests and campaign cell digests must be byte-identical across
serial/parallel/chaos runs, which is only true if every stochastic or
environment-dependent value flows from the scenario's named streams
(:mod:`repro.sim.rng`) — never from global RNG state, wall clocks or
``PYTHONHASHSEED``.  The architecture rules keep deployments flowing
through the one spec -> runner -> backend pipeline, and the persistence
rule keeps result files crash-atomic.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from repro.checks.engine import (
    ERROR,
    Finding,
    ModuleUnderCheck,
    Rule,
    register_rule,
)

#: Paths (architecture-relative, see ``ModuleUnderCheck.rel``) that make
#: up the *simulation* zone: code here executes inside seeded runs, so
#: any nondeterminism leaks straight into trace digests.
SIM_ZONE = (
    "repro/sim/",
    "repro/core/",
    "repro/baselines/",
    "repro/scenario/",
    "repro/attacks/",
    "repro/faults/",
    "repro/net/",
)

#: The one module allowed to touch :mod:`random` directly: it is where
#: named streams are minted from the master seed.
RNG_HOME = "repro/sim/rng.py"


@register_rule
class UnseededRandomRule(Rule):
    """All randomness must flow through ``repro.sim.rng`` named streams."""

    id = "unseeded-random"
    severity = ERROR
    summary = "randomness outside repro.sim.rng named streams"
    rationale = (
        "Global random.* state, os.urandom and uuid4 are invisible to the "
        "master seed: one stray draw reorders every later draw and silently "
        "changes seeded trace digests.  Derive a stream with "
        "RandomStreams.get(name) or a value with derive_seed/derive_unit."
    )

    #: Entropy sources that can never be replayed from a seed.
    NONDETERMINISTIC = ("os.urandom", "uuid.uuid4", "uuid.uuid1", "secrets.")

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        if module.in_path(RNG_HOME):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = module.resolve(node.func)
            if origin is None:
                continue
            if origin.startswith("random."):
                yield self.finding(
                    module,
                    node,
                    f"call to {origin}() bypasses the named-stream RNG "
                    f"(use repro.sim.rng.RandomStreams / derive_seed)",
                )
            elif any(
                origin == source or (source.endswith(".") and origin.startswith(source))
                for source in self.NONDETERMINISTIC
            ):
                yield self.finding(
                    module,
                    node,
                    f"{origin}() is nondeterministic entropy; seeded runs "
                    f"cannot replay it",
                )


@register_rule
class WallClockInSimRule(Rule):
    """Simulation paths must use simulated time, never the wall clock."""

    id = "wall-clock-in-sim"
    severity = ERROR
    summary = "wall-clock read inside a simulation path"
    rationale = (
        "Simulated time comes from the event kernel; reading the host clock "
        "in sim/core/baselines/scenario code makes results depend on machine "
        "speed, breaking byte-identical replay.  Wall timing belongs to "
        "infrastructure (bench, campaign executor)."
    )

    WALL_CLOCKS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        if not module.in_path(*SIM_ZONE):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = module.resolve(node.func)
            if origin in self.WALL_CLOCKS:
                yield self.finding(
                    module,
                    node,
                    f"{origin}() reads the wall clock inside the simulation "
                    f"zone; use kernel time (Simulator.now) instead",
                )


@register_rule
class WallClockInTelemetryRule(Rule):
    """Telemetry records only simulated/slot time, never the host clock."""

    id = "wall-clock-in-telemetry"
    severity = ERROR
    summary = "wall-clock read inside the telemetry layer"
    rationale = (
        "Telemetry streams, trace spans and monitor verdicts are pinned "
        "byte-for-byte in tests and CI; a host-clock timestamp anywhere in "
        "repro/telemetry/ would make recorded streams machine-dependent.  "
        "All times in streams are slot/kernel times handed in by the "
        "runner; wall timing belongs to infrastructure (bench, campaign "
        "executor)."
    )

    #: Same host-clock catalogue as ``wall-clock-in-sim``.
    WALL_CLOCKS = WallClockInSimRule.WALL_CLOCKS

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        if not module.in_path("repro/telemetry/"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = module.resolve(node.func)
            if origin in self.WALL_CLOCKS:
                yield self.finding(
                    module,
                    node,
                    f"{origin}() reads the wall clock inside the telemetry "
                    f"layer; record the slot/kernel time the runner "
                    f"provides instead",
                )


@register_rule
class BuiltinHashRule(Rule):
    """The builtin ``hash()`` is PYTHONHASHSEED-dependent; digests must
    come from :mod:`repro.crypto.hashing`."""

    id = "builtin-hash-in-digest"
    severity = ERROR
    summary = "PYTHONHASHSEED-dependent builtin hash()"
    rationale = (
        "hash() of a str/bytes changes across interpreter launches unless "
        "PYTHONHASHSEED is pinned; any digest, cache key or trace built on "
        "it differs between campaign workers.  Use repro.crypto.hashing "
        "(sha256) for content addressing.  __hash__ implementations "
        "delegating to hash() of their own fields are exempt — containers "
        "are iterated in insertion order, never hash order, in this tree."
    )

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Name) and node.func.id == "hash"):
                continue
            if any(
                getattr(fn, "name", "") == "__hash__"
                for fn in module.enclosing_functions(node)
            ):
                continue
            yield self.finding(
                module,
                node,
                "builtin hash() depends on PYTHONHASHSEED and varies across "
                "processes; use repro.crypto.hashing for stable digests",
            )


@register_rule
class NetworkOutsideScenarioRule(Rule):
    """Deployments are built only by the scenario pipeline."""

    id = "network-outside-scenario"
    severity = ERROR
    summary = "TwoLayerDagNetwork constructed outside repro.scenario"
    rationale = (
        "Every entry point goes spec -> ScenarioRunner -> backend; a "
        "hand-wired TwoLayerDagNetwork silently diverges from the presets "
        "(stream names, construction order) and its traces stop matching "
        "the golden digests.  Declare a ScenarioSpec instead."
    )

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        if module.in_path("repro/scenario/"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = module.resolve(node.func)
            if origin is not None and origin.split(".")[-1] == "TwoLayerDagNetwork":
                yield self.finding(
                    module,
                    node,
                    "TwoLayerDagNetwork constructed outside repro.scenario; "
                    "build deployments through ScenarioSpec + ScenarioRunner",
                )


@register_rule
class BackendBypassRule(Rule):
    """Live baseline ledgers are reached only via the backend registry."""

    id = "backend-bypass"
    severity = ERROR
    summary = "live baselines import outside the backend registry"
    rationale = (
        "PR 4 made pbft/iota registered LedgerBackends so every scenario is "
        "a three-ledger comparison; importing PbftCluster/IotaNetwork "
        "directly skips the registry's reseeding contract (identical "
        "topology per master seed).  Go through create_backend, or keep to "
        "the closed-form costmodels, which stay importable everywhere."
    )

    #: Importable from anywhere: pure closed-form cost models.
    ALLOWED_NAMES = frozenset({"PbftCostModel", "IotaCostModel"})

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        if module.in_path("repro/baselines/", "repro/scenario/backends.py"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if (
                        alias.name.startswith("repro.baselines")
                        and "costmodel" not in alias.name
                        and alias.name
                        not in ("repro.baselines",)  # bare package import is inert
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"import {alias.name} reaches a live baseline "
                            f"module; use repro.scenario.create_backend",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if not node.module.startswith("repro.baselines"):
                    continue
                if "costmodel" in node.module:
                    continue
                for alias in node.names:
                    if alias.name in self.ALLOWED_NAMES:
                        continue
                    yield self.finding(
                        module,
                        node,
                        f"from {node.module} import {alias.name} bypasses "
                        f"the ledger backend registry; use "
                        f"repro.scenario.create_backend (costmodel imports "
                        f"stay allowed)",
                    )


@register_rule
class NonAtomicWriteRule(Rule):
    """Result files are written atomically, never with a bare open()."""

    id = "non-atomic-json-write"
    severity = ERROR
    summary = "truncating open() instead of atomic_write_text"
    rationale = (
        "open(path, 'w') truncates before writing: a campaign worker killed "
        "mid-write (or chaos doing it on purpose) leaves a corrupt partial "
        "file that poisons caches and reports.  "
        "repro.experiments.persistence.atomic_write_text stages a temp file "
        "and os.replace()s it, so readers see old-or-new, never a prefix.  "
        "Append-only journals (mode 'a', one JSONL line per write) are a "
        "different, deliberately incremental idiom and are not flagged."
    )

    #: Modes that truncate or create the destination in place.
    TRUNCATING = frozenset("wx")

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        if module.in_path("repro/experiments/persistence.py"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = module.resolve(node.func)
            if origin not in ("open", "io.open"):
                continue
            mode = self._mode_argument(node)
            if mode is None:
                continue
            if any(flag in mode for flag in self.TRUNCATING):
                yield self.finding(
                    module,
                    node,
                    f"open(..., {mode!r}) truncates in place; use "
                    f"repro.experiments.persistence.atomic_write_text so a "
                    f"crash cannot leave a half-written file",
                )

    @staticmethod
    def _mode_argument(node: ast.Call) -> Optional[str]:
        mode: Optional[ast.expr]
        if len(node.args) >= 2:
            mode = node.args[1]
        else:
            mode = next(
                (kw.value for kw in node.keywords if kw.arg == "mode"), None
            )
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None


@register_rule
class UnfrozenSpecRule(Rule):
    """Spec dataclasses are frozen: digests hash their serialized form."""

    id = "unfrozen-spec-dataclass"
    severity = ERROR
    summary = "spec dataclass without frozen=True"
    rationale = (
        "Scenario/campaign/fault/chaos specs are content-addressed: cell "
        "digests hash their canonical JSON, and runners assume a spec "
        "cannot drift after validation.  A mutable spec invalidates both.  "
        "Spec status is structural: any @dataclass in a spec.py module, or "
        "named *Spec/*Params anywhere, must pass frozen=True."
    )

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        in_spec_module = module.rel.endswith("/spec.py")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            speclike = in_spec_module or node.name.endswith(("Spec", "Params"))
            if not speclike:
                continue
            decorator = self._dataclass_decorator(module, node)
            if decorator is None:
                continue
            if not self._is_frozen(decorator):
                yield self.finding(
                    module,
                    node,
                    f"spec dataclass {node.name} is not frozen=True; "
                    f"mutable specs break content-addressed digests",
                )

    @staticmethod
    def _dataclass_decorator(
        module: ModuleUnderCheck, node: ast.ClassDef
    ) -> Optional[ast.expr]:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            origin = module.resolve(target)
            if origin in ("dataclasses.dataclass", "dataclass"):
                return decorator
        return None

    @staticmethod
    def _is_frozen(decorator: ast.expr) -> bool:
        if not isinstance(decorator, ast.Call):
            return False
        for keyword in decorator.keywords:
            if keyword.arg == "frozen":
                value = keyword.value
                return isinstance(value, ast.Constant) and value.value is True
        return False


@register_rule
class MutableDefaultArgRule(Rule):
    """No mutable default arguments."""

    id = "mutable-default-arg"
    severity = ERROR
    summary = "mutable default argument"
    rationale = (
        "A list/dict/set default is created once and shared by every call: "
        "state leaks between runs, which in this tree means between "
        "scenario cells that must be independent.  Default to None (or a "
        "tuple) and construct inside the function."
    )

    MUTABLE_FACTORIES = frozenset(
        {
            "list",
            "dict",
            "set",
            "bytearray",
            "collections.defaultdict",
            "collections.OrderedDict",
            "collections.Counter",
            "collections.deque",
        }
    )

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(module, default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {node.name}(); the "
                        f"object is shared across calls — default to None "
                        f"and build it inside the function",
                    )

    def _is_mutable(self, module: ModuleUnderCheck, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            origin = module.resolve(node.func)
            return origin in self.MUTABLE_FACTORIES
        return False


@register_rule
class PrintInLibraryRule(Rule):
    """Library code returns data or emits telemetry; it never prints."""

    id = "print-in-library"
    severity = ERROR
    summary = "bare print() in library code"
    rationale = (
        "stdout belongs to the CLI: a print() buried in a runner, backend "
        "or experiment module corrupts machine-read output (campaign "
        "digest greps, --json reports, Prometheus expositions) and is "
        "invisible to campaign workers.  Library code returns data, takes "
        "a log callback, or emits telemetry events "
        "(repro.telemetry) — only the CLI front-ends (repro/cli.py, "
        "repro/checks/cli.py) and code outside the repro package "
        "(examples, tests) may print."
    )

    #: The CLI front-ends, the only repro modules that own stdout.
    CLI_HOMES = ("repro/cli.py", "repro/checks/cli.py")

    @staticmethod
    def _shadowed_calls(tree: ast.AST) -> set:
        """Call nodes inside functions that take ``print`` as a parameter
        (a log callback named print is not the builtin)."""
        shadowed: set = set()
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = fn.args
            names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
            if args.vararg is not None:
                names.add(args.vararg.arg)
            if args.kwarg is not None:
                names.add(args.kwarg.arg)
            if "print" not in names:
                continue
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    shadowed.add(id(node))
        return shadowed

    def check(self, module: ModuleUnderCheck) -> Iterator[Finding]:
        if not module.rel.startswith("repro/"):
            return
        if module.in_path(*self.CLI_HOMES):
            return
        shadowed = self._shadowed_calls(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if id(node) in shadowed:
                continue
            if module.resolve(node.func) != "print":
                continue
            yield self.finding(
                module,
                node,
                "print() writes to stdout from library code; return the "
                "data, take a log callback, or emit a telemetry event",
            )


def rule_catalogue() -> Dict[str, Tuple[str, str, str]]:
    """id -> (severity, summary, rationale) for docs and ``--list``."""
    from repro.checks.engine import get_rule, rule_ids

    catalogue: Dict[str, Tuple[str, str, str]] = {}
    for rule_id in rule_ids():
        cls = get_rule(rule_id)
        catalogue[rule_id] = (cls.severity, cls.summary, cls.rationale)
    return catalogue
