"""Command-line interface.

Run as ``python -m repro <command>``:

* ``simulate``  — run a scenario's slot workload and print a summary
  (including the canonical trace digest), optionally under an injected
  fault timeline (``--faults FILE|PRESET``, see ``docs/faults.md``);
* ``verify``    — run one PoP verification and print the outcome;
* ``scenarios`` — ``list`` the named presets, ``show`` one as JSON, or
  ``validate`` a hand-written spec file without running it;
* ``campaign``  — ``run``/``status``/``clean`` a fleet of scenario
  cells through the parallel, cached, resumable campaign engine
  (see ``docs/campaigns.md``);
* ``fig7`` / ``fig8`` / ``fig9`` — regenerate a paper figure as a text
  table (and ASCII chart);
* ``headline``  — print the abstract's measured ratios;
* ``report``    — the full markdown reproduction report;
* ``bench``     — run the performance benchmark harness and write
  ``BENCH_<rev>.json`` (see ``docs/performance.md``); ``bench
  history`` renders the trend across every accumulated document;
* ``telemetry`` — ``summarize``/``export``/``validate`` the
  structured per-slot event streams that ``--telemetry DIR`` (or
  ``$REPRO_TELEMETRY``) records (see ``docs/observability.md``).

Every workload-running subcommand accepts ``--scenario NAME`` (a
registry preset) or ``--scenario file.json`` (a spec exported with
``scenarios show``); see ``docs/scenarios.md``.  ``simulate``/``verify``
additionally take ``--backend 2ldag|pbft|iota`` to run the same
scenario on a comparison-baseline ledger.  The global ``--workers N``
flag (before the subcommand) fans multi-run commands out across worker
processes — the default stays serial, preserving current behaviour and
golden digests.  Examples::

    python -m repro simulate --nodes 25 --slots 40 --gamma 8
    python -m repro simulate --scenario quickstart
    python -m repro simulate --scenario ledger-comparison --backend pbft
    python -m repro simulate --scenario fault-demo --backend iota
    python -m repro simulate --scenario quickstart --faults mid-crash
    python -m repro scenarios show quickstart > s.json
    python -m repro scenarios validate s.json
    python -m repro simulate --scenario s.json
    python -m repro verify --nodes 16 --slots 20 --gamma 4 --target-slot 2
    python -m repro fig7 --body-mb 0.5 --quick
    python -m repro --workers 4 fig9 --panel d --quick
    python -m repro --workers 4 campaign run bench-grid
    python -m repro campaign run fault-grid --keep-going --cell-timeout 120
    python -m repro campaign status bench-grid
    python -m repro campaign status fault-grid --json
    python -m repro campaign dashboard fault-grid --out fault-grid.html
    python -m repro simulate --scenario fault-demo --telemetry .telemetry
    python -m repro telemetry summarize .telemetry
    python -m repro telemetry export .telemetry --out metrics.prom
    python -m repro bench history
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.common import ExperimentScale
from repro.faults import (
    FaultError,
    FaultScheduleSpec,
    build_fault_preset,
    fault_preset_names,
)
from repro.metrics.charts import render_chart
from repro.scenario import (
    DEFAULT_BACKEND,
    ProtocolSpec,
    ScenarioError,
    ScenarioRunner,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    backend_names,
    get_scenario,
    scenario_names,
)


def _looks_like_file(value: str) -> bool:
    """Whether a NAME|FILE argument should resolve as a file path."""
    return value.endswith(".json") or os.path.sep in value or os.path.exists(value)


def _load_from_file(label: str, value: str, from_file):
    """Load a spec file, mapping failures to CLI-friendly exits."""
    try:
        return from_file(value)
    except FileNotFoundError:
        raise SystemExit(f"{label} file not found: {value}")
    except ValueError as error:
        raise SystemExit(f"invalid {label} file {value}: {error}")


def _load_scenario(value: str) -> ScenarioSpec:
    """Resolve ``--scenario`` input: a JSON file path or a preset name."""
    if _looks_like_file(value):
        return _load_from_file("scenario", value, ScenarioSpec.from_file)
    try:
        return get_scenario(value)
    except KeyError:
        raise SystemExit(
            f"unknown scenario {value!r}; known: {', '.join(scenario_names())}"
        )


def _inline_spec(args, validate: bool, run_until_quiet: bool) -> ScenarioSpec:
    """The ad-hoc spec described by ``--nodes/--slots/--gamma/--body-mb``."""
    return ScenarioSpec(
        name="cli",
        protocol=ProtocolSpec.paper(gamma=args.gamma, body_mb=args.body_mb),
        topology=TopologySpec(node_count=args.nodes),
        workload=WorkloadSpec(
            slots=args.slots,
            generation_period=1,
            validate=validate,
            run_until_quiet=run_until_quiet,
        ),
        seed=args.seed,
    )


def _load_faults(value: str, spec: ScenarioSpec) -> FaultScheduleSpec:
    """Resolve ``--faults`` input: a schedule JSON file or a preset name.

    Presets are parameterized builders, scaled to the scenario's node
    count and slot count at resolution time.
    """
    if _looks_like_file(value):
        return _load_from_file("fault schedule", value, FaultScheduleSpec.from_file)
    try:
        return build_fault_preset(value, spec.node_count, spec.workload.slots)
    except FaultError as error:
        raise SystemExit(str(error))


def _scenario_spec(args, validate: bool = False, run_until_quiet: bool = False) -> ScenarioSpec:
    """The spec a workload subcommand should run (``--backend``/``--faults``
    applied)."""
    if args.scenario:
        spec = _load_scenario(args.scenario)
    else:
        spec = _inline_spec(args, validate=validate, run_until_quiet=run_until_quiet)
    backend = getattr(args, "backend", None)
    if backend and backend != spec.backend:
        try:
            spec = spec.with_backend(backend)
        except ScenarioError as error:
            raise SystemExit(f"cannot run on backend {backend!r}: {error}")
    faults = getattr(args, "faults", None)
    if faults:
        schedule = _load_faults(faults, spec)
        try:
            # --faults overrides whatever the spec declared (a legacy
            # churn block included).
            spec = spec.with_workload(faults=schedule, churn=None)
        except (ScenarioError, FaultError) as error:
            raise SystemExit(f"cannot apply fault schedule: {error}")
    return spec


def _executor_from_args(args, use_cache: Optional[bool] = None):
    """The campaign executor the global flags describe, or ``None``.

    ``None`` (no ``--workers``, no ``--cache-dir``) keeps multi-run
    commands on their historical serial in-process path.  An explicit
    ``--cache-dir`` opts the command into the result cache; callers may
    force ``use_cache`` off (the bench gate must always measure).
    """
    workers = getattr(args, "workers", 0) or 0
    cache_dir = getattr(args, "cache_dir", None)
    if use_cache is None:
        use_cache = cache_dir is not None
    if workers <= 1 and not use_cache:
        return None
    from repro.campaign import CampaignExecutor

    return CampaignExecutor(workers=workers, cache_dir=cache_dir, use_cache=use_cache)


def _spec_scale(spec: ScenarioSpec) -> ExperimentScale:
    """The experiment scale a scenario implies (for figure commands).

    Figure commands rebuild their canonical workloads (own γ sweeps,
    cost models, probes), so only the scenario's *scale* can be
    honoured — warn when the spec declares sections that cannot be.
    """
    ignored = []
    if spec.topology.kind != "sequential-geometric":
        ignored.append(f"topology kind {spec.topology.kind!r}")
    if spec.adversaries:
        ignored.append("adversaries")
    if spec.workload.fault_schedule() is not None:
        ignored.append("churn" if spec.workload.churn is not None else "faults")
    if ignored:
        print(
            f"note: figure commands use the scenario's scale only; "
            f"ignoring its {', '.join(ignored)} "
            f"(use 'simulate --scenario' to run the spec as declared)",
            file=sys.stderr,
        )
    if spec.scale is not None:
        return spec.scale
    return ExperimentScale(
        node_count=spec.node_count,
        slots=spec.workload.slots,
        sample_slots=(
            list(spec.workload.sample_slots)
            if spec.workload.sample_slots
            else [spec.workload.slots]
        ),
        validation=spec.workload.validate,
        seed=spec.seed,
    )


def _scale_from_args(args, spec: Optional[ScenarioSpec] = None) -> ExperimentScale:
    if spec is None and getattr(args, "scenario", None):
        spec = _load_scenario(args.scenario)
    if spec is not None:
        return _spec_scale(spec)
    if args.quick:
        return ExperimentScale.quick()
    return ExperimentScale.paper()


def _telemetry_dir(args) -> Optional[str]:
    """The telemetry directory in effect: ``--telemetry`` or the env."""
    from repro.telemetry import telemetry_dir_from_env

    return getattr(args, "telemetry", None) or telemetry_dir_from_env()


def _trace_sample(args) -> Optional[float]:
    """The block-trace sample rate in effect: ``--trace-sample`` or env."""
    from repro.telemetry.spans import trace_sample_from_env

    rate = getattr(args, "trace_sample", None)
    if rate is not None:
        return min(float(rate), 1.0) if rate > 0 else None
    return trace_sample_from_env()


def cmd_simulate(args) -> int:
    """Run a scenario's slot workload; print its summary and trace digest."""
    spec = _scenario_spec(args, validate=args.validate, run_until_quiet=True)
    telemetry = None
    telemetry_dir = _telemetry_dir(args)
    if telemetry_dir:
        from repro.telemetry import TelemetryRecorder

        telemetry = TelemetryRecorder(telemetry_dir)
    spans = None
    sample = _trace_sample(args)
    if sample is not None:
        if not telemetry_dir:
            print("--trace-sample needs a telemetry directory "
                  "(--telemetry or $REPRO_TELEMETRY)", file=sys.stderr)
            return 2
        from repro.telemetry.spans import SpanRecorder

        spans = SpanRecorder(telemetry_dir, sample=sample)
    runner = ScenarioRunner(spec, telemetry=telemetry, spans=spans)
    result = runner.run()
    print(result.summary())
    if telemetry is not None:
        print(f"telemetry stream: {telemetry.path} "
              f"({telemetry.records_written} record(s))")
    if spans is not None:
        print(f"trace stream: {spans.path} "
              f"({spans.blocks_traced} block(s) traced at sample {sample:g})")
    if runner.fault_engine is not None:
        applied = runner.fault_engine.applied
        print(f"faults applied: {len(applied)} event(s)")
        for event in applied:
            print(f"  {event.describe()}")
    return 0


def cmd_verify(args) -> int:
    """Run one PoP verification against a grown DAG."""
    spec = _scenario_spec(args)
    if spec.backend != DEFAULT_BACKEND:
        print(f"verify runs PoP, which only the {DEFAULT_BACKEND!r} backend "
              f"implements (got {spec.backend!r})", file=sys.stderr)
        return 2
    runner = ScenarioRunner(spec).build()
    runner.advance_to(spec.workload.slots)
    deployment, workload = runner.deployment, runner.workload
    targets = workload.blocks_by_slot.get(args.target_slot, [])
    if not targets:
        print(f"no blocks generated in slot {args.target_slot}", file=sys.stderr)
        return 1
    target = targets[0]
    validator_id = next(n for n in deployment.node_ids if n != target.origin)
    process = deployment.node(validator_id).verify_block(target.origin, target)
    deployment.sim.run()
    outcome = process.value
    print(f"block {target} verified by node {validator_id}: "
          f"{'SUCCESS' if outcome.success else f'FAILURE ({outcome.error})'}")
    print(f"consensus set ({len(outcome.consensus_set)} nodes): "
          f"{sorted(outcome.consensus_set)}")
    print(f"path length {len(outcome.path)}, messages {outcome.message_total}, "
          f"cache hits {outcome.tps_steps}, rollbacks {outcome.rollbacks}")
    return 0 if outcome.success else 2


def cmd_scenarios(args) -> int:
    """List the scenario presets, print one as JSON, or validate a file."""
    if args.action == "list":
        width = max(len(name) for name in scenario_names())
        bwidth = max(len(b) for b in backend_names())
        for name in scenario_names():
            spec = get_scenario(name)
            print(f"{name:<{width}}  {spec.backend:<{bwidth}}  {spec.description}")
        return 0
    if args.action == "validate":
        try:
            spec = ScenarioSpec.from_file(args.file)
        except FileNotFoundError:
            print(f"scenario file not found: {args.file}", file=sys.stderr)
            return 2
        except (ScenarioError, ValueError) as error:
            print(f"INVALID {args.file}: {error}", file=sys.stderr)
            return 2
        print(f"OK {args.file}: scenario {spec.name!r} "
              f"({spec.backend} backend, {spec.node_count} nodes, "
              f"{spec.workload.slots} slots, "
              f"gamma {spec.protocol.gamma}, seed {spec.seed})")
        schedule = spec.workload.fault_schedule()
        if schedule is not None:
            source = (
                "compiled from churn" if spec.workload.faults is None
                else "declared timeline"
            )
            print(f"fault schedule ({len(schedule.events)} event(s), {source}):")
            for line in schedule.describe():
                print(f"  {line}")
        return 0
    # show
    try:
        spec = get_scenario(args.name)
    except KeyError:
        print(f"unknown scenario {args.name!r}; "
              f"known: {', '.join(scenario_names())}", file=sys.stderr)
        return 2
    sys.stdout.write(spec.to_json())
    return 0


def _load_campaign(value: str):
    """Resolve campaign input: a JSON document path or a preset name."""
    from repro.campaign import CampaignSpec, campaign_names, get_campaign

    if _looks_like_file(value):
        return _load_from_file("campaign", value, CampaignSpec.from_file)
    try:
        return get_campaign(value)
    except KeyError:
        raise SystemExit(
            f"unknown campaign {value!r}; known: {', '.join(campaign_names())}"
        )


def cmd_campaign(args) -> int:
    """Run, inspect, or clean a campaign of scenario cells."""
    from repro.campaign import (
        CampaignError,
        CampaignExecutor,
        ChaosError,
        campaign_names,
        get_campaign,
    )

    if args.action == "list":
        width = max(len(name) for name in campaign_names())
        for name in campaign_names():
            campaign = get_campaign(name)
            print(f"{name:<{width}}  {len(campaign.cells):>3} cells  "
                  f"{campaign.description}")
        return 0
    if args.action == "show":
        sys.stdout.write(_load_campaign(args.spec).to_json())
        return 0

    campaign = _load_campaign(args.spec)
    telemetry_dir = (
        _telemetry_dir(args)
        if args.action in ("run", "dashboard", "status")
        else None
    )
    campaign_telemetry = None
    if telemetry_dir and args.action == "run":
        from repro.telemetry import TELEMETRY_ENV_VAR
        from repro.telemetry.campaign import CampaignTelemetry

        campaign_telemetry = CampaignTelemetry()
        # Worker processes pick telemetry up from the environment, so a
        # --telemetry flag must land there too for cells to stream.
        os.environ[TELEMETRY_ENV_VAR] = telemetry_dir
    if args.action == "run":
        from repro.telemetry.spans import TRACE_SAMPLE_ENV_VAR

        trace_sample = _trace_sample(args)
        if trace_sample is not None:
            if not telemetry_dir:
                print("--trace-sample needs a telemetry directory "
                      "(--telemetry or $REPRO_TELEMETRY)", file=sys.stderr)
                return 2
            os.environ[TRACE_SAMPLE_ENV_VAR] = f"{trace_sample:g}"
    monitors_mode = getattr(args, "monitors", "off")
    if monitors_mode != "off" and not telemetry_dir:
        print(f"--monitors {monitors_mode} needs a telemetry directory "
              "(--telemetry or $REPRO_TELEMETRY)", file=sys.stderr)
        return 2
    try:
        # status/clean parsers lack the resilience flags; getattr keeps
        # one construction path (and $REPRO_CHAOS is resolved here so a
        # bad schedule fails loudly instead of running chaos-free).
        executor = CampaignExecutor(
            workers=getattr(args, "workers", 0) or 0,
            cache_dir=args.cache_dir,
            use_cache=not getattr(args, "no_cache", False),
            retries=getattr(args, "retries", 2),
            cell_timeout=getattr(args, "cell_timeout", None),
            telemetry=campaign_telemetry,
        )
    except ChaosError as error:
        raise SystemExit(f"bad chaos spec: {error}")

    if args.action == "dashboard":
        from repro.campaign import write_dashboard

        monitors_doc = None
        waterfalls = None
        if telemetry_dir and os.path.isdir(telemetry_dir):
            from repro.telemetry import TelemetryError
            from repro.telemetry.monitors import evaluate_monitors
            from repro.telemetry import tracepath

            try:
                monitors_doc = evaluate_monitors([telemetry_dir])
                if not monitors_doc["runs"]:
                    monitors_doc = None
                waterfalls = []
                for path, records in tracepath.read_trace_streams(
                    [telemetry_dir]
                ):
                    figure = tracepath.waterfall_figure(path, records)
                    if figure is not None:
                        waterfalls.append(figure)
            except TelemetryError as error:
                print(f"skipping telemetry panels: {error}", file=sys.stderr)
                monitors_doc, waterfalls = None, None
        out = args.out or f"dashboard-{campaign.name}.html"
        write_dashboard(campaign, executor, out, monitors_doc, waterfalls)
        print(f"dashboard written to {out}")
        return 0

    if args.action == "status" and getattr(args, "json", False):
        import json

        document = executor.status_document(campaign)
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0

    if args.action == "status":
        rows = executor.status_report(campaign)
        done = sum(1 for row in rows if row.cached)
        for row in rows:
            line = f"  {row.state:<11}  {row.cell.label:<40} {row.digest[:12]}"
            if row.failed_attempts:
                line += f"  [{row.failed_attempts} failed attempt(s)"
                if row.flaky:
                    line += ", FLAKY"
                line += f": {row.last_error}]" if row.last_error else "]"
            print(line)
        quarantined = sum(1 for row in rows if row.quarantined)
        tail = f"({len(rows) - done} to compute)"
        if quarantined:
            tail = f"({len(rows) - done} to compute, {quarantined} quarantined)"
        print(f"campaign {campaign.name}: {done}/{len(rows)} cells cached {tail}")
        events = executor.cache.read_journal(campaign.digest()) if executor.cache else []
        if events:
            last = events[-1]
            print(f"last journal event: {last.get('event')} "
                  f"({executor.cache.journal_path(campaign.digest())})")
        if telemetry_dir:
            doc_path = os.path.join(
                telemetry_dir, f"monitors-{campaign.name}.json"
            )
            if os.path.exists(doc_path):
                from repro.telemetry import TelemetryError
                from repro.telemetry.monitors import load_monitor_document

                try:
                    document = load_monitor_document(doc_path)
                except TelemetryError as error:
                    print(f"monitors document invalid: {error}",
                          file=sys.stderr)
                    return 1
                counts = document["counts"]
                print(f"invariant monitors: {document['status']} "
                      f"({counts['pass']} pass, {counts['fail']} fail, "
                      f"{counts['skip']} skip) [{doc_path}]")
        return 0

    if args.action == "clean":
        removed = executor.clean(campaign)
        print(f"campaign {campaign.name}: removed {removed} cached cell(s)")
        return 0

    # run
    try:
        result = executor.run(
            campaign,
            force=getattr(args, "force", False),
            log=print,
            keep_going=getattr(args, "keep_going", False),
        )
    except CampaignError as error:
        print(f"campaign failed: {error}", file=sys.stderr)
        return 1
    print()
    for cell in result.cells:
        if cell.quarantined:
            last = cell.failures[-1].error if cell.failures else ""
            print(f"  {cell.cell.label:<40} QUARANTINED after {cell.attempts} "
                  f"attempt(s): {last}")
            continue
        source = "cached  " if cell.cached else f"{cell.elapsed_s:6.2f}s "
        trace = cell.trace_sha256[:16] or "-"
        print(f"  {cell.cell.label:<40} {source} trace {trace}")
    print(result.summary())
    if campaign_telemetry is not None:
        from repro.experiments.persistence import atomic_write_text

        prom_path = os.path.join(
            telemetry_dir, f"campaign-{campaign.name}.prom"
        )
        os.makedirs(telemetry_dir, exist_ok=True)
        atomic_write_text(prom_path, campaign_telemetry.render())
        print(f"campaign metrics exposition: {prom_path}")
    exit_code = 0
    if monitors_mode != "off":
        import json

        from repro.experiments.persistence import atomic_write_text
        from repro.telemetry import TelemetryError
        from repro.telemetry.monitors import (
            evaluate_monitors,
            format_monitor_table,
        )

        try:
            document = evaluate_monitors([telemetry_dir])
        except TelemetryError as error:
            print(f"monitor evaluation failed: {error}", file=sys.stderr)
            return 1
        doc_path = os.path.join(
            telemetry_dir, f"monitors-{campaign.name}.json"
        )
        atomic_write_text(
            doc_path, json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        print()
        print(format_monitor_table(document))
        print(f"monitors document: {doc_path}")
        if monitors_mode == "strict" and document["status"] != "pass":
            print("campaign gate: invariant monitors FAILED (strict mode)",
                  file=sys.stderr)
            exit_code = 1
    if result.quarantined_count:
        print(
            f"campaign degraded: {result.quarantined_count} cell(s) quarantined "
            f"(rerun retries only them)",
            file=sys.stderr,
        )
        return 1
    return exit_code


def cmd_fig7(args) -> int:
    """Regenerate a Fig. 7 storage panel."""
    from repro.experiments.fig7_storage import run_fig7

    spec = _load_scenario(args.scenario) if args.scenario else None
    body_mb = spec.protocol.body_mb if spec is not None else args.body_mb
    result = run_fig7(body_mb, _scale_from_args(args, spec),
                      executor=_executor_from_args(args))
    print(f"Fig. 7 storage overhead, C = {body_mb} MB (per-node MB)\n")
    print(result.to_table())
    print()
    print(render_chart(result.sample_slots, result.series_mb,
                       log_y=True, y_label="storage MB"))
    return 0


def cmd_fig8(args) -> int:
    """Regenerate the Fig. 8 communication panels."""
    from repro.experiments.fig8_comm import run_fig8

    result = run_fig8(_scale_from_args(args), executor=_executor_from_args(args))
    for panel, title in (("a", "overall"), ("b", "DAG construction"),
                         ("c", "consensus")):
        print(f"\nFig. 8({panel}) {title} (per-node Mbit)")
        print(result.to_table(panel))
    print()
    print(render_chart(result.sample_slots, result.overall_mbit,
                       log_y=True, y_label="communication Mbit"))
    return 0


def cmd_fig9(args) -> int:
    """Regenerate one Fig. 9 consensus-time panel."""
    from repro.experiments.fig9_consensus import PAPER_PANELS, run_fig9

    spec = PAPER_PANELS[args.panel]
    scale = _scale_from_args(args)
    gamma = max(2, round(spec["gamma"] * scale.node_count / 50))
    malicious = sorted({
        round(m * scale.node_count / 50) for m in spec["malicious_counts"]
    })
    malicious = [m for m in malicious if m <= gamma]
    result = run_fig9(gamma, malicious, scale=scale,
                      executor=_executor_from_args(args))
    print(f"Fig. 9({args.panel}) consensus failure probability, gamma={gamma}\n")
    print(result.to_table())
    for m in malicious:
        print(f"consensus slot with {m} malicious: {result.consensus_slot(m)}")
    return 0


def cmd_headline(args) -> int:
    """Print the measured headline ratios."""
    from repro.experiments.headline import run_headline

    result = run_headline(_scale_from_args(args),
                          executor=_executor_from_args(args))
    print(result.summary())
    return 0


def cmd_bench(args) -> int:
    """Run the benchmark harness; write and check BENCH_<rev>.json."""
    import json

    from repro.bench import runner as bench_runner

    unknown = sorted(set(args.only) - set(bench_runner.TRACKED_OPS))
    if unknown:
        print(f"unknown benchmark op(s): {', '.join(unknown)}; "
              f"known: {', '.join(bench_runner.TRACKED_OPS)}", file=sys.stderr)
        return 2

    fast = args.fast or os.environ.get("REPRO_BENCH_FAST") == "1"
    slot_sim_spec = _load_scenario(args.scenario) if args.scenario else None
    # Explicit flags only (no env fallback), matching --telemetry: an
    # ambient sample rate must never skew bench timings.
    trace_sample = getattr(args, "trace_sample", None)
    if trace_sample is not None and trace_sample <= 0:
        trace_sample = None
    if trace_sample is not None:
        trace_sample = min(float(trace_sample), 1.0)
        if getattr(args, "telemetry", None) is None:
            print("--trace-sample needs --telemetry DIR", file=sys.stderr)
            return 2
    results = bench_runner.run_benchmarks(
        fast=fast, only=args.only or None, log=print,
        slot_sim_spec=slot_sim_spec,
        executor=_executor_from_args(args, use_cache=False),
        telemetry_dir=getattr(args, "telemetry", None),
        trace_sample=trace_sample,
    )
    document = bench_runner.results_to_json(results, fast=fast)
    out_path = args.out or bench_runner.default_output_name(document["rev"])
    from repro.experiments.persistence import atomic_write_text

    atomic_write_text(out_path, json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\nresults written to {out_path}")

    if args.no_check:
        return 0
    baseline_path = args.baseline or bench_runner.BASELINE_RELPATH
    baseline = bench_runner.load_baseline(baseline_path)
    if baseline is None:
        print(f"no baseline at {baseline_path}; skipping regression check")
        return 0
    if bool(baseline.get("fast")) != fast:
        print(f"baseline {baseline_path} was recorded with "
              f"fast={baseline.get('fast')}; skipping regression check")
        return 0
    rows = bench_runner.compare_to_baseline(document, baseline)
    regressed = False
    print(f"\nvs. baseline {baseline_path} "
          f"(rev {baseline.get('rev', '?')}, fail at "
          f">{bench_runner.REGRESSION_FACTOR:.1f}x):")
    for name, ratio, is_regression in rows:
        marker = "REGRESSION" if is_regression else "ok"
        print(f"  {name:<26} {ratio:6.2f}x  {marker}")
        regressed = regressed or is_regression
    return 3 if regressed else 0


def cmd_bench_history(args) -> int:
    """Render the perf trend across accumulated BENCH_*.json documents."""
    from repro.bench.history import render_history

    try:
        body, warnings = render_history(args.root, args.paths)
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    print(body)
    return 0


def _telemetry_paths(args) -> List[str]:
    """The stream paths a telemetry subcommand should read."""
    if args.paths:
        return list(args.paths)
    fallback = _telemetry_dir(args)
    if fallback:
        return [fallback]
    raise SystemExit(
        "no telemetry paths given and $REPRO_TELEMETRY is unset; "
        "pass stream files or a telemetry directory"
    )


def cmd_telemetry(args) -> int:
    """Summarize, export, or validate per-slot telemetry event streams."""
    from repro.telemetry import (
        TelemetryError,
        discover_streams,
        export_prometheus,
        format_summary_table,
        summarize_streams,
        validate_stream,
    )

    from repro.telemetry.spans import is_trace_stream, validate_trace_stream

    paths = _telemetry_paths(args)
    if args.action == "validate":
        try:
            streams = discover_streams(paths)
        except TelemetryError as error:
            print(str(error), file=sys.stderr)
            return 2
        errors: List[str] = []
        records = 0
        traces = 0
        for stream in streams:
            text = stream.read_text()
            # Trace streams carry the v2 span schema; everything else
            # is a v1 per-slot stream.  Validate each against its own.
            if is_trace_stream(stream):
                traces += 1
                errors.extend(validate_trace_stream(text, source=str(stream)))
            else:
                errors.extend(validate_stream(text, source=str(stream)))
            records += sum(1 for line in text.splitlines() if line.strip())
        for message in errors:
            print(message, file=sys.stderr)
        if errors:
            print(f"INVALID: {len(errors)} schema violation(s) across "
                  f"{len(streams)} stream(s)", file=sys.stderr)
            return 1
        print(f"OK: {len(streams)} stream(s) ({traces} trace stream(s)), "
              f"{records} record(s), all fit the pinned schemas")
        return 0
    if args.action == "trace":
        from repro.telemetry import tracepath

        try:
            streams = tracepath.read_trace_streams(paths)
        except TelemetryError as error:
            print(str(error), file=sys.stderr)
            return 2
        if not streams:
            print("no trace streams found (record them with "
                  "simulate --trace-sample)", file=sys.stderr)
            return 1
        if args.block:
            found = [
                (path, trace, records)
                for path, records in streams
                for trace in records
                if trace.get("event") == "block-trace"
                and trace["block"] == args.block
            ]
            if not found:
                print(f"block {args.block!r} not traced in any stream",
                      file=sys.stderr)
                return 1
            for path, trace, records in found:
                start = next(
                    r for r in records if r.get("event") == "trace-start"
                )
                print(f"# {path}")
                print(tracepath.block_waterfall(trace, start["backend"]))
            return 0
        report = tracepath.trace_report(streams)
        if getattr(args, "json", False):
            import json

            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(tracepath.format_trace_report(report))
        if args.svg:
            for path, records in streams:
                figure = tracepath.waterfall_figure(path, records)
                if figure is None:
                    continue
                from repro.experiments.persistence import atomic_write_text

                atomic_write_text(args.svg, figure[1])
                print(f"waterfall SVG ({figure[0]}) written to {args.svg}")
                break
            else:
                print("no traced blocks to chart", file=sys.stderr)
                return 1
        return 0
    try:
        if args.action == "export":
            exposition = export_prometheus(paths)
            if args.out:
                from repro.experiments.persistence import atomic_write_text

                atomic_write_text(args.out, exposition)
                print(f"exposition written to {args.out}")
            else:
                sys.stdout.write(exposition)
            return 0
        # summarize
        summaries = summarize_streams(paths)
        if not summaries:
            print("no telemetry streams found", file=sys.stderr)
            return 1
        if getattr(args, "json", False):
            import json

            print(json.dumps(summaries, indent=2, sort_keys=True))
        else:
            print(format_summary_table(summaries))
        return 0
    except TelemetryError as error:
        print(str(error), file=sys.stderr)
        return 2


def cmd_report(args) -> int:
    """Generate the full markdown reproduction report."""
    from repro.experiments.report import generate_report

    report = generate_report(
        _scale_from_args(args),
        fig7_bodies=[0.5] if args.quick else None,
        fig9_panels=["a", "d"] if args.quick else None,
        executor=_executor_from_args(args),
    )
    markdown = report.to_markdown()
    if args.output:
        from repro.experiments.persistence import atomic_write_text

        atomic_write_text(args.output, markdown)
        print(f"report written to {args.output}")
    else:
        print(markdown)
    return 0


def cmd_lint(args) -> int:
    """Run the static determinism & architecture analyzer."""
    from repro.checks import run_lint

    return run_lint(args)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description="2LDAG reproduction toolkit"
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="worker processes for multi-run commands "
                             "(default: serial in-process)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="enable the campaign result cache rooted at DIR "
                             "for multi-run commands (the campaign subcommand "
                             "always caches, defaulting to $REPRO_CACHE_DIR "
                             "or .repro_cache)")
    sub = parser.add_subparsers(dest="command", required=True)

    def scenario_arg(p):
        p.add_argument("--scenario", default=None, metavar="NAME|FILE",
                       help="run a named preset or an exported spec JSON "
                            "(see 'scenarios list')")

    def backend_arg(p):
        p.add_argument("--backend", default=None, metavar="NAME",
                       help="ledger backend to run the scenario on "
                            f"({', '.join(backend_names())}; default: "
                            "the spec's own backend)")

    def telemetry_arg(p):
        p.add_argument("--telemetry", default=None, metavar="DIR",
                       help="record a structured per-slot telemetry event "
                            "stream under DIR (also via $REPRO_TELEMETRY; "
                            "see docs/observability.md) — a pure "
                            "observation: trace digests are byte-identical "
                            "with telemetry on or off")

    def trace_sample_arg(p):
        p.add_argument("--trace-sample", type=float, default=None,
                       metavar="RATE",
                       help="record block-lifecycle trace streams for a "
                            "deterministic RATE sample of blocks (0..1, "
                            "also via $REPRO_TRACE_SAMPLE; needs a "
                            "telemetry directory) — a pure observation "
                            "like --telemetry")

    def common(p):
        scenario_arg(p)
        backend_arg(p)
        p.add_argument("--seed", type=int, default=0, help="master seed")
        p.add_argument("--nodes", type=int, default=25, help="|V|")
        p.add_argument("--gamma", type=int, default=8, help="tolerable malicious")
        p.add_argument("--body-mb", type=float, default=0.5, help="C in MB")

    p = sub.add_parser("simulate", help="run a scenario's slot workload")
    common(p)
    p.add_argument("--slots", type=int, default=40)
    p.add_argument("--validate", action="store_true",
                   help="run generation-time PoP validations")
    p.add_argument("--faults", default=None, metavar="FILE|PRESET",
                   help="inject a fault timeline: a schedule JSON file or "
                        f"a preset ({', '.join(fault_preset_names())}), "
                        "scaled to the scenario; overrides the spec's own "
                        "faults/churn (see docs/faults.md)")
    telemetry_arg(p)
    trace_sample_arg(p)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("verify", help="verify one block via PoP")
    common(p)
    p.add_argument("--slots", type=int, default=30)
    p.add_argument("--target-slot", type=int, default=0)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("scenarios", help="list, export or validate scenario specs")
    scenario_sub = p.add_subparsers(dest="action", required=True)
    p_list = scenario_sub.add_parser("list", help="name + description per preset")
    p_list.set_defaults(fn=cmd_scenarios, action="list")
    p_show = scenario_sub.add_parser(
        "show", help="print one preset as replayable JSON"
    )
    p_show.add_argument("name")
    p_show.set_defaults(fn=cmd_scenarios, action="show")
    p_validate = scenario_sub.add_parser(
        "validate", help="check a spec file loads and validates, without running it"
    )
    p_validate.add_argument("file")
    p_validate.set_defaults(fn=cmd_scenarios, action="validate")

    p = sub.add_parser(
        "campaign",
        help="run fleets of scenario cells: parallel, cached, resumable",
    )
    campaign_sub = p.add_subparsers(dest="action", required=True)
    p_clist = campaign_sub.add_parser("list", help="the named campaign presets")
    p_clist.set_defaults(fn=cmd_campaign, action="list")
    p_cshow = campaign_sub.add_parser(
        "show", help="print a campaign (preset or file) fully expanded as JSON"
    )
    p_cshow.add_argument("spec", metavar="NAME|FILE")
    p_cshow.set_defaults(fn=cmd_campaign, action="show")

    def campaign_common(cp):
        cp.add_argument("spec", metavar="NAME|FILE",
                        help="a campaign preset name (see 'campaign list') or "
                             "a campaign JSON document")
        cp.add_argument("--cache-dir", default=argparse.SUPPRESS, metavar="DIR",
                        help="result-cache root (overrides the global flag)")

    p_run = campaign_sub.add_parser(
        "run", help="execute the campaign (cached cells replay from disk)"
    )
    campaign_common(p_run)
    p_run.add_argument("--workers", type=int, default=argparse.SUPPRESS,
                       metavar="N", help="worker processes (overrides the "
                                         "global flag; default serial)")
    p_run.add_argument("--force", action="store_true",
                       help="recompute every cell, overwriting cached entries")
    p_run.add_argument("--no-cache", action="store_true",
                       help="compute without reading or writing the cache")
    p_run.add_argument("--retries", type=int, default=2, metavar="N",
                       help="re-attempts per failing cell before the run "
                            "aborts or quarantines it (default: 2)")
    p_run.add_argument("--cell-timeout", type=float, default=None, metavar="S",
                       help="wall-clock budget per cell attempt in seconds; "
                            "a hung cell is killed and retried (default: none)")
    p_run.add_argument("--keep-going", action="store_true",
                       help="quarantine cells that exhaust their retries and "
                            "complete the rest instead of aborting (exit 1 "
                            "when any cell was quarantined)")
    telemetry_arg(p_run)
    trace_sample_arg(p_run)
    p_run.add_argument("--monitors", choices=("off", "report", "strict"),
                       default="off",
                       help="evaluate the invariant monitors over the "
                            "run's telemetry streams after the campaign "
                            "(report: print + persist verdicts; strict: "
                            "also exit 1 on any failed monitor)")
    p_run.set_defaults(fn=cmd_campaign, action="run")
    p_status = campaign_sub.add_parser(
        "status", help="per-cell done/failing/quarantined/pending report; "
                       "nothing executes"
    )
    campaign_common(p_status)
    p_status.add_argument("--json", action="store_true",
                          help="emit the pinned-schema status document "
                               "instead of the text report (see "
                               "docs/observability.md)")
    telemetry_arg(p_status)
    p_status.set_defaults(fn=cmd_campaign, action="status")
    p_clean = campaign_sub.add_parser(
        "clean", help="drop the campaign's cached cells and journal"
    )
    campaign_common(p_clean)
    p_clean.set_defaults(fn=cmd_campaign, action="clean")
    p_dash = campaign_sub.add_parser(
        "dashboard",
        help="write a self-contained static HTML dashboard of the "
             "campaign's cells, harness events and per-slot series",
    )
    campaign_common(p_dash)
    p_dash.add_argument("--out", default=None, metavar="FILE",
                        help="output HTML path "
                             "(default: dashboard-<campaign>.html)")
    telemetry_arg(p_dash)
    p_dash.set_defaults(fn=cmd_campaign, action="dashboard")

    p = sub.add_parser(
        "lint",
        help="statically check determinism & architecture invariants "
             "(see docs/static-analysis.md)",
    )
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="files or directories to check (default: src)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default: text)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="subtract grandfathered findings listed in FILE")
    p.add_argument("--write-baseline", default=None, metavar="FILE",
                   help="snapshot current findings to FILE and exit 0")
    p.add_argument("--select", action="append", default=None, metavar="IDS",
                   help="run only these rule ids (comma-separated, "
                        "repeatable)")
    p.add_argument("--ignore", action="append", default=None, metavar="IDS",
                   help="skip these rule ids (comma-separated, repeatable)")
    p.add_argument("--severity", action="append", default=None,
                   metavar="RULE=LEVEL",
                   help="override one rule's severity (error|warning; "
                        "repeatable); only errors fail the gate")
    p.add_argument("--list", dest="list_rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("--verbose", action="store_true",
                   help="append each offending rule's rationale")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("bench", help="run the performance benchmark harness")
    scenario_arg(p)
    p.add_argument("--fast", action="store_true",
                   help="smoke scale (also via REPRO_BENCH_FAST=1)")
    p.add_argument("--out", default=None,
                   help="output JSON path (default BENCH_<rev>.json)")
    p.add_argument("--baseline", default=None,
                   help="baseline JSON to compare against "
                        "(default benchmarks/baselines/BENCH_baseline.json)")
    p.add_argument("--no-check", action="store_true",
                   help="skip the regression check against the baseline")
    p.add_argument("--only", action="append", default=[],
                   help="run only the named op (repeatable)")
    p.add_argument("--telemetry", default=None, metavar="DIR",
                   help="record per-slot telemetry streams for the macro "
                        "ops under DIR (explicit flag only — the env var "
                        "is ignored here so ambient telemetry can never "
                        "skew bench timings)")
    p.add_argument("--trace-sample", type=float, default=None, metavar="RATE",
                   help="also record block-lifecycle trace streams for the "
                        "macro ops at this sample rate (requires "
                        "--telemetry; explicit flag only, for the same "
                        "reason)")
    p.set_defaults(fn=cmd_bench)
    bench_sub = p.add_subparsers(dest="bench_action", required=False)
    p_hist = bench_sub.add_parser(
        "history",
        help="trend table across every accumulated BENCH_<rev>.json "
             "(committed baselines plus ad-hoc runs)",
    )
    p_hist.add_argument("--root", default=".",
                        help="repository root to scan (default: .)")
    p_hist.add_argument("paths", nargs="*", metavar="BENCH_JSON",
                        help="extra bench documents to include explicitly")
    p_hist.set_defaults(fn=cmd_bench_history)

    p = sub.add_parser(
        "telemetry",
        help="summarize, export or validate recorded telemetry streams",
    )
    telemetry_sub = p.add_subparsers(dest="action", required=True)
    p_tsum = telemetry_sub.add_parser(
        "summarize", help="per-run summary table over one or more streams"
    )
    p_tsum.add_argument("paths", nargs="*", metavar="PATH",
                        help="stream files or directories "
                             "(default: $REPRO_TELEMETRY)")
    p_tsum.add_argument("--json", action="store_true",
                        help="emit the per-run summaries as JSON instead "
                             "of the text table")
    p_tsum.set_defaults(fn=cmd_telemetry, action="summarize")
    p_trace = telemetry_sub.add_parser(
        "trace",
        help="critical-path latency attribution and per-block waterfalls "
             "over block-lifecycle trace streams (simulate --trace-sample)",
    )
    p_trace.add_argument("paths", nargs="*", metavar="PATH",
                         help="trace stream files or directories "
                              "(default: $REPRO_TELEMETRY)")
    p_trace.add_argument("--block", default=None, metavar="KEY",
                         help="print the ASCII waterfall for one traced "
                              "block (e.g. '3#7', 'blk:2:5', 'iota:1:4')")
    p_trace.add_argument("--json", action="store_true",
                         help="emit the attribution report as JSON")
    p_trace.add_argument("--svg", default=None, metavar="FILE",
                         help="also write an inline-SVG waterfall of the "
                              "most informative traced block to FILE")
    p_trace.set_defaults(fn=cmd_telemetry, action="trace")
    p_texp = telemetry_sub.add_parser(
        "export", help="render streams as Prometheus text exposition"
    )
    p_texp.add_argument("paths", nargs="*", metavar="PATH",
                        help="stream files or directories "
                             "(default: $REPRO_TELEMETRY)")
    p_texp.add_argument("--out", default=None, metavar="FILE",
                        help="write the exposition to FILE instead of stdout")
    p_texp.set_defaults(fn=cmd_telemetry, action="export")
    p_tval = telemetry_sub.add_parser(
        "validate", help="check every record against the pinned schema"
    )
    p_tval.add_argument("paths", nargs="*", metavar="PATH",
                        help="stream files or directories "
                             "(default: $REPRO_TELEMETRY)")
    p_tval.set_defaults(fn=cmd_telemetry, action="validate")

    for name, fn in (("fig7", cmd_fig7), ("fig8", cmd_fig8),
                     ("fig9", cmd_fig9), ("headline", cmd_headline),
                     ("report", cmd_report)):
        p = sub.add_parser(name, help=fn.__doc__)
        scenario_arg(p)
        p.add_argument("--quick", action="store_true",
                       help="reduced scale (default is full paper scale)")
        if name == "fig7":
            p.add_argument("--body-mb", type=float, default=0.5)
        if name == "fig9":
            p.add_argument("--panel", choices="abcd", default="a")
        if name == "report":
            p.add_argument("--output", default=None,
                           help="write the markdown to this file")
        p.set_defaults(fn=fn)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
