"""The paper's primary contribution: 2LDAG + Proof-of-Path.

Layout
------
``config``
    Protocol constants — field bit-sizes of Fig. 2, Eqs. (2)-(3), γ,
    timeouts.
``block``
    Data blocks: header (version/time/root/digests/nonce/signature) and
    body, with bit-exact size accounting.
``dag``
    The logical layer ``Ḡ(B, L)`` (§III-C): parent/child edges over all
    blocks, paths and descendant queries.
``node``
    The physical-layer node (§III-A/D): own-block storage ``S_i``,
    neighbour digest cache ``A_i``, trusted header cache ``H_i``, block
    generation, and the responder role (Algorithm 4).
``pop``
    Proof-of-Path: WPS (Alg. 1), TPS (Alg. 2), the validator (Alg. 3).
``protocol``
    Slot-driven network simulation per §VI.
"""

from repro.core.block import BlockBody, BlockHeader, BlockId, DataBlock
from repro.core.config import ProtocolConfig
from repro.core.dag import LogicalDag
from repro.core.node import IoTNode
from repro.core.protocol import SlotSimulation, TwoLayerDagNetwork

__all__ = [
    "BlockBody",
    "BlockHeader",
    "BlockId",
    "DataBlock",
    "IoTNode",
    "LogicalDag",
    "ProtocolConfig",
    "SlotSimulation",
    "TwoLayerDagNetwork",
]
