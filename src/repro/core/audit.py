"""Partial-body audits via Merkle audit paths.

A digital twin rarely needs a whole ``C``-bit block to answer one
query — e.g. "what was sensor 13's reading at minute 7?" touches one
chunk.  Because headers commit to the body with a Merkle root (Fig. 2),
a storing node can serve a *single chunk plus its audit path*, and the
consumer verifies it against the header it already trusts from a PoP
run.  Bandwidth: one chunk + log2(chunks) hashes instead of ``C`` bits.

This module implements both ends:

* :func:`make_chunk_proof` — the storing node's side;
* :func:`verify_chunk_proof` — the consumer's side;
* :class:`ChunkProof` — the wire object, with size accounting so
  experiments can price partial audits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.block import BlockHeader, BlockId, DataBlock
from repro.crypto.hashing import Digest
from repro.crypto.merkle import MerkleTree, verify_audit_path


class AuditError(ValueError):
    """Raised when a chunk proof cannot be produced or fails checks."""


@dataclass(frozen=True)
class ChunkProof:
    """One body chunk plus the hashes proving it is under the Root.

    Attributes
    ----------
    block_id:
        Which block the chunk belongs to.
    chunk_index:
        Position of the chunk within the body.
    chunk:
        The raw chunk bytes.
    path:
        ``(sibling_is_right, digest)`` pairs from leaf to root.
    """

    block_id: BlockId
    chunk_index: int
    chunk: bytes
    path: Tuple[Tuple[bool, Digest], ...]

    def size_bits(self, hash_bits: int = 256) -> int:
        """Wire size: the chunk, the path hashes and indices."""
        return len(self.chunk) * 8 + len(self.path) * hash_bits + 64


def make_chunk_proof(block: DataBlock, chunk_index: int) -> ChunkProof:
    """Produce the proof for one chunk of ``block``'s body.

    Raises :class:`AuditError` for an out-of-range index.
    """
    chunks = block.body.chunks()
    if not 0 <= chunk_index < len(chunks):
        raise AuditError(
            f"chunk index {chunk_index} out of range [0, {len(chunks)})"
        )
    tree = MerkleTree(chunks, block.header.root.bits)
    if tree.root != block.header.root:
        raise AuditError("stored body does not match the header root")
    return ChunkProof(
        block_id=block.block_id,
        chunk_index=chunk_index,
        chunk=chunks[chunk_index],
        path=tuple(tree.audit_path(chunk_index)),
    )


def verify_chunk_proof(proof: ChunkProof, header: BlockHeader) -> bool:
    """Check a chunk proof against a (PoP-trusted) header.

    Returns ``False`` for any mismatch: wrong block, tampered chunk,
    truncated or reordered path.
    """
    if proof.block_id != header.block_id:
        return False
    return verify_audit_path(
        proof.chunk, list(proof.path), header.root, header.root.bits
    )


def audit_chunks(
    block: DataBlock, header: BlockHeader, indices: List[int]
) -> List[ChunkProof]:
    """Convenience: produce-and-verify several chunk proofs at once.

    Raises :class:`AuditError` if any proof fails against ``header`` —
    the storing node is then serving a body inconsistent with the
    header the network vouched for.
    """
    proofs = []
    for index in indices:
        proof = make_chunk_proof(block, index)
        if not verify_chunk_proof(proof, header):
            raise AuditError(f"chunk {index} failed verification")
        proofs.append(proof)
    return proofs
