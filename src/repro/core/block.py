"""Data blocks: the unit of storage and linkage in 2LDAG.

A block ``b_{i,t}`` (Fig. 2) has a header and a body.  The header
carries Version, Time, Root (Merkle root of the body), Digests (the
hashes received from neighbours plus the node's own previous header
hash), Nonce (Eq. 5) and Signature (Eq. 6).  The *digest* of a block is
the hash of its header, ``H(b^h_{i,t})`` — the only thing a node ever
pushes to its neighbours.

Blocks are identified by :class:`BlockId` = (origin node, sequence
index).  The paper indexes blocks by generation time ``t``; a sequence
index is equivalent for static rates and stays unambiguous when nodes
generate at irregular times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.core import codec
from repro.core.config import ProtocolConfig
from repro.crypto.hashing import Digest, hash_bytes
from repro.crypto.keys import KeyPair
from repro.crypto.merkle import merkle_root
from repro.crypto.puzzle import NoncePuzzle
from repro.crypto.signature import sign, verify

#: Chunk size (bytes) used when Merkle-izing a block body.
BODY_CHUNK_BYTES = 4096


@dataclass(frozen=True, order=True)
class BlockId:
    """Stable identity of a block: (origin node id, per-node index)."""

    origin: int
    index: int

    def __str__(self) -> str:
        return f"{self.origin}#{self.index}"


@dataclass(frozen=True)
class BlockBody:
    """The sampled-data segment ``b^d`` of constant size ``C``.

    The reproduction does not materialise C bits of sensor data per
    block — a content seed stands in for the payload and the declared
    ``size_bits`` drives all accounting.  ``chunks()`` expands the seed
    deterministically when real bytes are needed (Merkle hashing).
    """

    content_seed: bytes
    size_bits: int

    def chunks(self) -> List[bytes]:
        """Deterministic body chunks for Merkle tree construction.

        Only a bounded number of chunks is synthesised: the Merkle root
        must be a genuine function of the content, but expanding e.g.
        1 MB per block per slot would dominate simulation runtime
        without changing any measured metric.
        """
        chunk_count = max(1, min(8, self.size_bits // (BODY_CHUNK_BYTES * 8)))
        return [
            hash_bytes(self.content_seed + i.to_bytes(4, "big")).value
            for i in range(chunk_count)
        ]

    def root(self, bits: int) -> Digest:
        """Merkle root ``M(b^d)`` of the body; memoised per width.

        Bodies are frozen and the chunk expansion is a pure function of
        the seed, so the root is computed at most once per width —
        ``verify_body_root`` on a fetched block reuses the value.
        """
        by_bits = self.__dict__.get("_body_root_by_bits")
        if by_bits is None:
            by_bits = {}
            object.__setattr__(self, "_body_root_by_bits", by_bits)
        root = by_bits.get(bits)
        if root is None:
            root = merkle_root(self.chunks(), bits)
            by_bits[bits] = root
        return root


@dataclass(frozen=True)
class BlockHeader:
    """The header segment ``b^h`` (Fig. 2).

    Attributes
    ----------
    origin:
        Authoring node id (carried for signature lookup; the paper's
        nodes know the topology and who they asked, so this adds no
        modelled bytes).
    index:
        Per-origin sequence number; (origin, index) = :class:`BlockId`.
    version / time / nonce:
        32-bit fields.
    root:
        Merkle root of the body.
    digests:
        Origin-node-id -> header-digest map: the latest digest received
        from each neighbour plus this node's previous header digest
        keyed by its own id (Δ of §III-D).
    signature:
        Eq. (6) over (version, time, root, digests, nonce).
    """

    origin: int
    index: int
    version: int
    time: float
    root: Digest
    digests: Mapping[int, Digest]
    nonce: int
    signature: bytes

    # Identity caching (see docs/performance.md).  Headers are frozen and
    # every field that feeds the canonical encodings is immutable once the
    # header is built, so the encodings and their hashes are memoised on
    # the instance.  The cache slots are plain ``__dict__`` entries written
    # via ``object.__setattr__`` (allowed on frozen dataclasses) and are
    # deliberately *not* dataclass fields: they never participate in
    # ``__eq__``/``repr`` and a ``dataclasses.replace`` starts cold.
    # Invariant required: callers must never mutate ``digests`` after
    # construction (``build_block`` and ``decode_header`` both hand the
    # header a private dict).

    # -- identity -------------------------------------------------------------
    @property
    def block_id(self) -> BlockId:
        """(origin, index)."""
        return BlockId(self.origin, self.index)

    # -- canonical encodings ------------------------------------------------
    def _digest_bytes_map(self) -> Dict[int, bytes]:
        return {node: digest.value for node, digest in self.digests.items()}

    def puzzle_fields(self) -> List[bytes]:
        """The fields hashed by the Eq. (5) nonce puzzle: root and Δ."""
        return [self.root.value, codec.encode_digest_map(self._digest_bytes_map())]

    def signing_payload(self) -> bytes:
        """Canonical bytes covered by the signature (Eq. 6); memoised."""
        payload = self.__dict__.get("_hdr_signing_payload")
        if payload is None:
            payload = codec.encode_fields(
                [
                    ("version", codec.encode_u32(self.version)),
                    ("time", codec.encode_time(self.time)),
                    ("root", self.root.value),
                    ("digests", codec.encode_digest_map(self._digest_bytes_map())),
                    ("nonce", codec.encode_u64(self.nonce)),
                ]
            )
            object.__setattr__(self, "_hdr_signing_payload", payload)
        return payload

    def encode(self) -> bytes:
        """Canonical bytes of the full header (digest pre-image); memoised."""
        encoded = self.__dict__.get("_hdr_encoded")
        if encoded is None:
            encoded = codec.encode_fields(
                [
                    ("origin", codec.encode_u32(self.origin)),
                    ("index", codec.encode_u32(self.index)),
                    ("body", self.signing_payload()),
                    ("signature", self.signature),
                ]
            )
            object.__setattr__(self, "_hdr_encoded", encoded)
        return encoded

    def digest(self, bits: int = 256) -> Digest:
        """``H(b^h)`` — the block digest pushed to neighbours.

        Memoised per requested width: the simulation digests every
        header many times (neighbour pushes, DAG insertion, every WPS
        round trip of every PoP run), always through the same shared
        header object, so after the first call this is a dict lookup.
        """
        by_bits = self.__dict__.get("_hdr_digest_by_bits")
        if by_bits is None:
            by_bits = {}
            object.__setattr__(self, "_hdr_digest_by_bits", by_bits)
        digest = by_bits.get(bits)
        if digest is None:
            digest = hash_bytes(self.encode(), bits)
            by_bits[bits] = digest
        return digest

    # -- queries used by PoP ----------------------------------------------------
    def references(self, other_digest: Digest) -> bool:
        """Whether Δ contains ``other_digest`` (child-of test, §III-C).

        Backed by a cached frozenset of digest bytes — a ``Digest``'s
        width is determined by its byte length, so byte equality is
        exactly ``Digest`` equality and the linear scan is unnecessary.
        """
        values = self.__dict__.get("_hdr_ref_values")
        if values is None:
            values = frozenset(d.value for d in self.digests.values())
            object.__setattr__(self, "_hdr_ref_values", values)
        return other_digest.value in values

    def digest_from(self, node: int) -> Optional[Digest]:
        """``GetDigest(b^h, node)`` of Algorithm 3 (``None`` if absent)."""
        return self.digests.get(node)

    def parent_origins(self) -> List[int]:
        """Origin node ids of all referenced parents."""
        return sorted(self.digests)

    # -- size accounting -----------------------------------------------------
    def size_bits(self, config: ProtocolConfig) -> int:
        """Header wire/storage size per Fig. 2: ``f_c + f_H·|Δ|``.

        ``|Δ|`` equals the actual number of digests carried, which is
        ``n + 1`` for a node with ``n`` neighbours in steady state.
        """
        return config.constant_header_bits + config.hash_bits * len(self.digests)

    # -- verification ------------------------------------------------------
    def verify_signature(self, public_key: bytes) -> bool:
        """Check the Eq. (6) signature against the origin's public key."""
        return verify(self.signing_payload(), self.signature, public_key)

    def verify_nonce(self, puzzle: NoncePuzzle) -> bool:
        """Check the Eq. (5) difficulty condition."""
        return puzzle.check(self.puzzle_fields(), self.nonce)


@dataclass(frozen=True)
class DataBlock:
    """A full block ``b = (b^h, b^d)``."""

    header: BlockHeader
    body: BlockBody

    @property
    def block_id(self) -> BlockId:
        """(origin, index)."""
        return self.header.block_id

    def digest(self, bits: int = 256) -> Digest:
        """``H(b^h)``."""
        return self.header.digest(bits)

    def size_bits(self, config: ProtocolConfig) -> int:
        """Eq. (2): header size plus the constant body size ``C``."""
        return self.header.size_bits(config) + config.body_bits

    def verify_body_root(self) -> bool:
        """Recompute ``M(b^d)`` and compare with the header's Root.

        This is the validator's first check (Algorithm 3, line 3).
        """
        return self.body.root(self.header.root.bits) == self.header.root


def build_block(
    origin: int,
    index: int,
    time: float,
    body: BlockBody,
    digests: Mapping[int, Digest],
    keypair: KeyPair,
    config: ProtocolConfig,
    puzzle: Optional[NoncePuzzle] = None,
) -> DataBlock:
    """Assemble, mine and sign a block (§III-D's generation procedure).

    Steps: compute the Merkle root, copy Δ (neighbour digests + own
    previous digest), search a nonce satisfying Eq. (5), then sign per
    Eq. (6).
    """
    if puzzle is None:
        puzzle = NoncePuzzle(config.puzzle_difficulty_bits, config.hash_bits)
    root = body.root(config.hash_bits)
    digest_map = dict(digests)
    puzzle_fields = [root.value, codec.encode_digest_map({n: d.value for n, d in digest_map.items()})]
    solution = puzzle.solve(puzzle_fields)
    unsigned = BlockHeader(
        origin=origin,
        index=index,
        version=config.protocol_version,
        time=time,
        root=root,
        digests=digest_map,
        nonce=solution.nonce,
        signature=b"",
    )
    payload = unsigned.signing_payload()
    signature = sign(payload, keypair)
    header = BlockHeader(
        origin=origin,
        index=index,
        version=config.protocol_version,
        time=time,
        root=root,
        digests=digest_map,
        nonce=solution.nonce,
        signature=signature,
    )
    # The signature does not cover itself, so the signed header's
    # payload is byte-identical to the unsigned one — warm its cache.
    object.__setattr__(header, "_hdr_signing_payload", payload)
    return DataBlock(header=header, body=body)


def make_body(origin: int, index: int, config: ProtocolConfig, salt: bytes = b"") -> BlockBody:
    """A deterministic synthetic body for (origin, index)."""
    seed = b"body:" + salt + origin.to_bytes(4, "big") + index.to_bytes(8, "big")
    return BlockBody(content_seed=seed, size_bits=config.body_bits)
