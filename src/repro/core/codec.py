"""Deterministic byte encoding for hashable/signable structures.

Hashes and signatures must be computed over a canonical byte string.
This tiny codec provides unambiguous (length-prefixed, order-preserving)
framing for the field types block headers use.  It is intentionally not
a general serialization library — only what the protocol needs.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Tuple


def encode_u32(value: int) -> bytes:
    """Unsigned 32-bit big-endian; validates range."""
    if not 0 <= value < 2 ** 32:
        raise ValueError(f"u32 out of range: {value}")
    return value.to_bytes(4, "big")


def encode_u64(value: int) -> bytes:
    """Unsigned 64-bit big-endian; validates range."""
    if not 0 <= value < 2 ** 64:
        raise ValueError(f"u64 out of range: {value}")
    return value.to_bytes(8, "big")


def encode_bytes(value: bytes) -> bytes:
    """Length-prefixed raw bytes."""
    return encode_u32(len(value)) + value


def encode_time(value: float) -> bytes:
    """Simulated timestamps, encoded as micro-slot integers.

    Times in the reproduction are slot numbers (possibly fractional due
    to intra-slot latency); scaling by 10^6 and rounding gives a stable
    integer encoding.
    """
    scaled = int(round(value * 1_000_000))
    if scaled < 0:
        raise ValueError(f"negative time: {value}")
    return encode_u64(scaled)


def encode_digest_map(digests: Mapping[int, bytes]) -> bytes:
    """Encode a node-id -> digest-bytes map in ascending node order.

    Ascending order makes the encoding canonical regardless of the
    insertion order of ``A_i`` updates.
    """
    parts: List[bytes] = [encode_u32(len(digests))]
    for node_id in sorted(digests):
        parts.append(encode_u32(node_id))
        parts.append(encode_bytes(digests[node_id]))
    return b"".join(parts)


def encode_fields(fields: Iterable[Tuple[str, bytes]]) -> bytes:
    """Concatenate named pre-encoded fields with name framing.

    Field names participate in the encoding so that two headers with
    coincidentally identical field bytes in different roles can never
    collide.
    """
    parts: List[bytes] = []
    for name, data in fields:
        name_bytes = name.encode("ascii")
        parts.append(encode_u32(len(name_bytes)))
        parts.append(name_bytes)
        parts.append(encode_bytes(data))
    return b"".join(parts)
