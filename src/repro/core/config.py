"""Protocol constants and derived sizes.

Field widths follow Fig. 2 of the paper: Version, Time and Nonce are 32
bits; Root and Signature are 256 bits; the Digests field is
``f_H × (n + 1)`` for a node with ``n`` neighbours; the body is a
constant ``C`` bits.  Eq. (3) defines the constant header part

    f_c = f_v + f_t + f_H + f_n + f_s

and Eq. (2) the full block size

    f_i = f_c + f_H (|N(i)| + 1) + C.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.metrics.units import mb_to_bits


@dataclass(frozen=True)
class ProtocolConfig:
    """All tunables of a 2LDAG deployment.

    Attributes
    ----------
    version_bits, time_bits, nonce_bits:
        ``f_v``, ``f_t``, ``f_n`` — 32 bits each (Fig. 2).
    hash_bits:
        ``f_H`` — digest width, 256 bits.
    signature_bits:
        ``f_s`` — 256 bits.
    body_bits:
        ``C`` — block body size; the paper sweeps C ∈ {0.1, 0.5, 1} MB.
    gamma:
        Number of tolerable malicious nodes; consensus requires a path
        through γ+1 distinct nodes.
    reply_timeout:
        τ — how long a validator waits for RPY_CHILD (sim time).
    puzzle_difficulty_bits:
        Leading-zero-bits difficulty of the Eq. (5) nonce puzzle
        (0 disables the search in large sweeps).
    protocol_version:
        Value of the Version header field.
    """

    version_bits: int = 32
    time_bits: int = 32
    nonce_bits: int = 32
    hash_bits: int = 256
    signature_bits: int = 256
    body_bits: int = mb_to_bits(0.5)
    gamma: int = 16
    reply_timeout: float = 0.5
    puzzle_difficulty_bits: int = 0
    protocol_version: int = 1

    def __post_init__(self) -> None:
        if self.hash_bits <= 0 or self.hash_bits % 8:
            raise ValueError(f"hash_bits must be a positive multiple of 8, got {self.hash_bits}")
        if self.body_bits < 0:
            raise ValueError(f"body_bits must be non-negative, got {self.body_bits}")
        if self.gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {self.gamma}")
        if self.reply_timeout <= 0:
            raise ValueError(f"reply_timeout must be positive, got {self.reply_timeout}")

    # -- derived sizes (Eqs. 2-3) ------------------------------------------------
    @property
    def constant_header_bits(self) -> int:
        """``f_c`` of Eq. (3)."""
        return (
            self.version_bits
            + self.time_bits
            + self.hash_bits
            + self.nonce_bits
            + self.signature_bits
        )

    def digests_field_bits(self, neighbor_count: int) -> int:
        """Size of the Digests field: ``f_H × (n + 1)``."""
        if neighbor_count < 0:
            raise ValueError("neighbor_count must be non-negative")
        return self.hash_bits * (neighbor_count + 1)

    def header_bits(self, neighbor_count: int) -> int:
        """Full header size ``f_c + f_H (n + 1)``."""
        return self.constant_header_bits + self.digests_field_bits(neighbor_count)

    def block_bits(self, neighbor_count: int) -> int:
        """Eq. (2): full block size ``f_i``."""
        return self.header_bits(neighbor_count) + self.body_bits

    @property
    def digest_message_bits(self) -> int:
        """Wire size of a digest push to a neighbour (one hash)."""
        return self.hash_bits

    def consensus_quorum(self) -> int:
        """Distinct nodes a PoP path must traverse: γ + 1."""
        return self.gamma + 1

    # -- variants ------------------------------------------------------------
    def with_body_mb(self, mb: float) -> "ProtocolConfig":
        """Copy with ``C`` set in decimal megabytes (Fig. 7 sweep)."""
        return replace(self, body_bits=mb_to_bits(mb))

    def with_gamma(self, gamma: int) -> "ProtocolConfig":
        """Copy with a different malicious-tolerance γ (Figs. 8-9)."""
        return replace(self, gamma=gamma)

    @classmethod
    def paper_defaults(cls, gamma: Optional[int] = None, body_mb: float = 0.5) -> "ProtocolConfig":
        """The §VI settings: f_H=f_s=256, f_v=f_t=f_n=32, C=0.5 MB."""
        config = cls(body_bits=mb_to_bits(body_mb))
        if gamma is not None:
            config = config.with_gamma(gamma)
        return config
