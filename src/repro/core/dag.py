"""The logical layer ``Ḡ(B, L)`` (§III-C).

No 2LDAG node ever materialises this graph — that is the point of the
architecture — but the *simulation* maintains it as an omniscient
oracle: tests assert PoP's behaviour against ground truth computed
here, and experiment code uses it to pick verifiable target blocks.

Edges point parent -> child: ``(b_x, b_y) ∈ L`` iff the header of
``b_y`` contains the digest of ``b_x``'s header.  A *path* ``P_{x,y}``
follows child edges; ``b_y`` is then a *descendant* of ``b_x``, and a
node *points to* ``b_x`` if it stores any descendant of ``b_x``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.core.block import BlockHeader, BlockId
from repro.crypto.hashing import Digest


class LogicalDag:
    """Incrementally built global DAG over block headers."""

    def __init__(self, hash_bits: int = 256) -> None:
        self.hash_bits = hash_bits
        self._headers: Dict[BlockId, BlockHeader] = {}
        self._by_digest: Dict[bytes, BlockId] = {}
        self._children: Dict[BlockId, List[BlockId]] = {}
        self._parents: Dict[BlockId, List[BlockId]] = {}
        #: Digests referenced by inserted headers whose parent block is
        #: not yet known: digest -> referencing (child) blocks.
        self._wanted: Dict[bytes, List[BlockId]] = {}

    # -- construction ------------------------------------------------------
    def add_header(self, header: BlockHeader) -> None:
        """Insert a header and link it to already-known parents/children.

        Insertion order is arbitrary: if a parent arrives after a child,
        the edge is created when the parent's digest becomes resolvable
        (via the pending-reference index, so insertion is O(degree)).

        The digest comes from the header's identity cache
        (:meth:`~repro.core.block.BlockHeader.digest`), so inserting a
        header that has already been pushed or validated re-hashes
        nothing.
        """
        block_id = header.block_id
        if block_id in self._headers:
            raise ValueError(f"duplicate block {block_id}")
        digest = header.digest(self.hash_bits)
        self._headers[block_id] = header
        self._by_digest[digest.value] = block_id
        self._children.setdefault(block_id, [])
        self._parents.setdefault(block_id, [])
        # Link to parents already present; queue references to absent ones.
        for parent_digest in header.digests.values():
            parent_id = self._by_digest.get(parent_digest.value)
            if parent_id is not None:
                self._link(parent_id, block_id)
            else:
                self._wanted.setdefault(parent_digest.value, []).append(block_id)
        # Link to children inserted before us that were waiting for our digest.
        for child_id in self._wanted.pop(digest.value, []):
            self._link(block_id, child_id)

    def _link(self, parent: BlockId, child: BlockId) -> None:
        self._children[parent].append(child)
        self._parents[child].append(parent)

    # -- queries -----------------------------------------------------------
    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._headers

    def __len__(self) -> int:
        return len(self._headers)

    def header(self, block_id: BlockId) -> BlockHeader:
        """Header of a known block."""
        return self._headers[block_id]

    def block_ids(self) -> List[BlockId]:
        """All known blocks, sorted."""
        return sorted(self._headers)

    def resolve_digest(self, digest: Digest) -> Optional[BlockId]:
        """The block whose header hashes to ``digest``, if known."""
        return self._by_digest.get(digest.value)

    def children(self, block_id: BlockId) -> List[BlockId]:
        """Blocks whose headers reference this block's digest."""
        return sorted(self._children.get(block_id, []))

    def parents(self, block_id: BlockId) -> List[BlockId]:
        """Blocks this block's header references."""
        return sorted(self._parents.get(block_id, []))

    def is_acyclic(self) -> bool:
        """Kahn's algorithm check; always true unless hashes collide."""
        in_degree = {b: len(self._parents[b]) for b in self._headers}
        queue = deque(b for b, d in in_degree.items() if d == 0)
        visited = 0
        while queue:
            block = queue.popleft()
            visited += 1
            for child in self._children[block]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        return visited == len(self._headers)

    # -- descendant / path analysis (PoP ground truth) -------------------------
    def descendants(self, block_id: BlockId) -> Set[BlockId]:
        """All blocks reachable via child edges (excluding the block)."""
        seen: Set[BlockId] = set()
        frontier = deque(self._children.get(block_id, []))
        while frontier:
            block = frontier.popleft()
            if block in seen:
                continue
            seen.add(block)
            frontier.extend(self._children[block])
        return seen

    def nodes_pointing_to(self, block_id: BlockId) -> Set[int]:
        """Physical nodes storing a descendant of ``block_id`` (§III-C)."""
        return {b.origin for b in self.descendants(block_id)}

    def max_distinct_origins_on_path(
        self,
        block_id: BlockId,
        exclude_origins: Optional[Set[int]] = None,
        stop_at: Optional[int] = None,
    ) -> int:
        """Max distinct physical nodes collectible along one descendant path.

        This is PoP's feasibility oracle: consensus on ``block_id`` with
        tolerance γ is possible iff this value ≥ γ + 1 (counting the
        verifier itself).  ``exclude_origins`` models malicious nodes
        that refuse to serve headers — paths may not pass through them.

        ``stop_at`` returns as soon as that many origins are proven
        reachable.  The underlying problem is NP-hard in general (it
        embeds longest-path-style search), and on dense simulation DAGs
        the exhaustive maximum is exponential — feasibility queries
        should therefore always pass ``stop_at`` (as
        :meth:`consensus_feasible` does).

        Computed by DFS with memoisation on (block, frozen origin set)
        collapsed to a safe upper-bound-free exact search over small
        simulation DAGs: we track the best distinct-origin count per
        block via iterative deepening on the DAG's topological order.
        Because the graph is acyclic, the maximum over children of
        ("count including child's origin") is exact when origins along
        a path may repeat (repeats add nothing but are allowed).
        """
        excluded = exclude_origins or set()

        # Exact DFS carrying the set of origins seen on the current path,
        # pruned with an upper bound: the distinct origins reachable in a
        # block's whole descendant cone (memoised per block).
        subtree_origins: Dict[BlockId, Set[int]] = {}

        def collect(block: BlockId) -> Set[int]:
            cached = subtree_origins.get(block)
            if cached is None:
                reachable = {block} | self.descendants(block)
                cached = {b.origin for b in reachable if b.origin not in excluded}
                subtree_origins[block] = cached
            return cached

        best = 0
        start_origin_set = (
            frozenset() if block_id.origin in excluded else frozenset({block_id.origin})
        )
        # Explicit stack: recursion depth equals path length, which can
        # reach thousands of blocks in micro-loop-heavy DAGs (Fig. 6).
        stack: List[Tuple[BlockId, frozenset]] = [(block_id, start_origin_set)]
        while stack:
            block, origins = stack.pop()
            if len(origins) > best:
                best = len(origins)
                if stop_at is not None and best >= stop_at:
                    return best
            if len(origins | collect(block)) <= best:
                continue
            for child in self._children[block]:
                if child.origin in excluded:
                    continue
                stack.append((child, origins | {child.origin}))
        return best

    def consensus_feasible(
        self, block_id: BlockId, gamma: int, exclude_origins: Optional[Set[int]] = None
    ) -> bool:
        """Whether some descendant path collects ≥ γ+1 distinct honest nodes."""
        return (
            self.max_distinct_origins_on_path(
                block_id, exclude_origins, stop_at=gamma + 1
            )
            >= gamma + 1
        )

    def find_path(self, start: BlockId, end: BlockId) -> Optional[List[BlockId]]:
        """Some parent->child path from ``start`` to ``end`` (BFS), or None."""
        if start == end:
            return [start]
        parent_of: Dict[BlockId, BlockId] = {}
        frontier = deque([start])
        while frontier:
            block = frontier.popleft()
            for child in self._children[block]:
                if child in parent_of or child == start:
                    continue
                parent_of[child] = block
                if child == end:
                    path = [end]
                    while path[-1] != start:
                        path.append(parent_of[path[-1]])
                    return list(reversed(path))
                frontier.append(child)
        return None

    def edge_count(self) -> int:
        """Number of directed edges ``|L|``."""
        return sum(len(c) for c in self._children.values())
