"""The physical-layer IoT node (§III-A, §III-D, Algorithm 4).

An :class:`IoTNode` stores only its own blocks (``S_i``), caches the
latest digest received from each neighbour (``A_i``), keeps verified
headers (``H_i``) and answers PoP queries.  All externally observable
behaviour that a *malicious* node could change is routed through a
:class:`NodeBehavior` strategy, which the attack models in
:mod:`repro.attacks` override — the honest node logic itself stays in
one place.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Set

from repro.core.block import BlockId, DataBlock, build_block, make_body
from repro.core.config import ProtocolConfig
from repro.core.dag import LogicalDag
from repro.core.pop.cache import HeaderCache
from repro.core.pop.messages import (
    KIND_BLOCK_DATA,
    KIND_BLOCK_FETCH,
    KIND_REQ_CHILD,
    KIND_RPY_CHILD,
    BlockFetch,
    ReqChild,
    RpyChild,
)
from repro.core.pop.responder import serve_req_child
from repro.core.pop.validator import PopValidator
from repro.core.storage import BlockStore
from repro.crypto.hashing import Digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.puzzle import NoncePuzzle
from repro.net.messages import Message
from repro.net.transport import Network, NodeInterface


class NodeBehavior:
    """Strategy hooks for everything an adversary could subvert.

    The default implementation is the honest protocol.  Attack models
    subclass this and override individual hooks; returning ``None``
    from a reply hook means "stay silent" (the validator will time
    out).
    """

    def answer_req_child(self, node: "IoTNode", request: ReqChild) -> Optional[RpyChild]:
        """Algorithm 4: reply with the oldest matching child header."""
        return serve_req_child(node.store, request)

    def answer_block_fetch(self, node: "IoTNode", request: BlockFetch) -> Optional[DataBlock]:
        """Serve the requested (or latest) own block."""
        if request.block_id is None:
            return node.store.latest
        return node.store.get(request.block_id)

    def transform_outgoing_block(self, node: "IoTNode", block: DataBlock) -> DataBlock:
        """Hook on freshly generated blocks (tampering point for attacks)."""
        return block

    def should_process_digest(self, node: "IoTNode", message: Message) -> bool:
        """Admission control on incoming digests (DoS defence hook)."""
        return True


class IoTNode:
    """One 2LDAG participant.

    Parameters
    ----------
    node_id:
        Identity in the topology.
    network:
        Shared :class:`~repro.net.transport.Network`; the node attaches
        an interface and registers its message handlers.
    registry:
        Public-key directory; the node generates and registers its pair.
    config:
        Protocol constants.
    behavior:
        Behaviour strategy (honest by default).
    dag_oracle:
        Optional global :class:`~repro.core.dag.LogicalDag` the
        simulation maintains for ground-truth analysis; nodes register
        generated headers there but never read it (it models the
        "logical layer" abstraction, not node knowledge).
    key_seed:
        Seed for deterministic key generation.
    """

    def __init__(
        self,
        node_id: int,
        network: Network,
        registry: KeyRegistry,
        config: ProtocolConfig,
        behavior: Optional[NodeBehavior] = None,
        dag_oracle: Optional[LogicalDag] = None,
        key_seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.node_id = node_id
        self.network = network
        self.topology = network.topology
        self.registry = registry
        self.config = config
        self.behavior = behavior if behavior is not None else NodeBehavior()
        self.dag_oracle = dag_oracle
        self.rng = rng

        self.keypair = KeyPair.generate(node_id, key_seed)
        registry.register(self.keypair)

        self.store = BlockStore(node_id, config.hash_bits)
        self.cache = HeaderCache(config.hash_bits)
        #: Churn state (§VII future work): offline nodes neither
        #: generate, respond nor track digests; they keep their storage
        #: and resume from it when they return.
        self.online = True
        #: ``A_i``: latest digest received from each neighbour (§III-D).
        self.neighbor_digests: Dict[int, Digest] = {}
        #: Penalty blacklist (§IV-D-6): nodes that failed to reply.
        self.blacklist: Set[int] = set()
        self._blacklist_strikes: Dict[int, int] = {}
        self._puzzle = NoncePuzzle(config.puzzle_difficulty_bits, config.hash_bits)

        self.interface: NodeInterface = network.attach(node_id)
        self.interface.on("digest", self._on_digest)
        self.interface.on(KIND_REQ_CHILD, self._on_req_child)
        self.interface.on(KIND_BLOCK_FETCH, self._on_block_fetch)

    # -- identity ----------------------------------------------------------
    @property
    def neighbors(self) -> Set[int]:
        """``N(i)`` from the shared topology."""
        return set(self.topology.neighbors(self.node_id))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IoTNode {self.node_id} blocks={len(self.store)}>"

    # -- block generation (§III-D) -----------------------------------------------
    def generate_block(self, salt: bytes = b"") -> DataBlock:
        """Create, mine, sign and announce the next data block.

        Digests field Δ = latest digest from each neighbour (``A_i``)
        plus the digest of this node's previous block, keyed by this
        node's own id.  The genesis block (index 0) carries whatever of
        ``A_i`` has arrived — at network start that is nothing, matching
        the paper's bootstrap where genesis digests seed the DAG.
        """
        index = len(self.store)
        digests: Dict[int, Digest] = dict(self.neighbor_digests)
        previous = self.store.latest
        if previous is not None:
            digests[self.node_id] = previous.digest(self.config.hash_bits)

        body = make_body(self.node_id, index, self.config, salt)
        block = build_block(
            origin=self.node_id,
            index=index,
            time=self.network.sim.now,
            body=body,
            digests=digests,
            keypair=self.keypair,
            config=self.config,
            puzzle=self._puzzle,
        )
        block = self.behavior.transform_outgoing_block(self, block)
        self.store.add(block)
        # Our own headers are trivially trusted: seed H_i so TPS can
        # traverse through our blocks without a self-request.
        self.cache.add(block.header)
        if self.dag_oracle is not None:
            self.dag_oracle.add_header(block.header)
        tracer = self.network.tracer
        if tracer.enabled:
            # Lifecycle emission for span collectors; the detail stays
            # raw (Digest objects, no hex) so the enabled path is cheap
            # — the collector stringifies only for sampled blocks.
            tracer.emit(
                self.network.sim.now, "block.created", self.node_id,
                block=str(block.block_id),
                digest=block.digest(self.config.hash_bits),
                refs=tuple(digests.values()),
            )
        self.broadcast_digest(block)
        self.network.tracer.emit(
            self.network.sim.now, "block.generated", self.node_id,
            block=str(block.block_id),
        )
        return block

    def broadcast_digest(self, block: DataBlock) -> None:
        """Push ``H(b^h)`` to every neighbour (the only proactive traffic)."""
        digest = block.digest(self.config.hash_bits)
        tracer = self.network.tracer
        if tracer.enabled:
            # topology.neighbors is queried directly: the ``neighbors``
            # property builds a fresh set per call, too heavy here.
            tracer.emit(
                self.network.sim.now, "block.gossiped", self.node_id,
                block=str(block.block_id),
                neighbors=len(self.topology.neighbors(self.node_id)),
            )
        self.interface.broadcast_neighbors(
            "digest", (self.node_id, digest), self.config.digest_message_bits
        )

    # -- message handlers ---------------------------------------------------
    def _on_digest(self, message: Message) -> None:
        """Update ``A_i``, replacing the sender's previous digest."""
        if not self.online:
            return
        if not self.behavior.should_process_digest(self, message):
            return
        sender, digest = message.payload
        if sender != message.sender or sender not in self.neighbors:
            # Digests only flow over physical edges; anything else is
            # spoofed and discarded (§IV-D-5).
            return
        self.neighbor_digests[sender] = digest
        tracer = self.network.tracer
        if tracer.enabled:
            # Filterable category: digest receipts are the sim's most
            # frequent event, so a collector sampling few blocks
            # registers an interest container and unwatched digests
            # cost one membership test instead of a full emission.
            interest = tracer.interests.get("block.digest_received")
            if interest is None or digest.value in interest:
                tracer.emit(
                    self.network.sim.now, "block.digest_received", self.node_id,
                    sender=sender, digest=digest,
                )

    def _on_req_child(self, message: Message) -> None:
        """Responder role (Algorithm 4), via the behaviour hook."""
        if not self.online:
            return
        reply = self.behavior.answer_req_child(self, message.payload)
        if reply is None:
            return  # silence — only malicious behaviours do this
        size = (
            reply.header.size_bits(self.config)
            if reply.header is not None
            else self.config.hash_bits  # "not found" is a small NACK
        )
        self.interface.reply(message, KIND_RPY_CHILD, reply, size)

    def _on_block_fetch(self, message: Message) -> None:
        """Serve a block (or just its header) to a validator."""
        if not self.online:
            return
        block = self.behavior.answer_block_fetch(self, message.payload)
        if block is None:
            return
        if getattr(message.payload, "header_only", False):
            self.interface.reply(
                message, KIND_BLOCK_DATA, block.header,
                block.header.size_bits(self.config),
            )
        else:
            self.interface.reply(
                message, KIND_BLOCK_DATA, block, block.size_bits(self.config)
            )

    # -- validator role -----------------------------------------------------
    def validator(
        self,
        rng: Optional[random.Random] = None,
        use_tps: bool = True,
        use_wps: bool = True,
        hop_aware: bool = False,
        use_blacklist: bool = True,
    ) -> PopValidator:
        """A :class:`PopValidator` bound to this node's cache and interface.

        With ``use_blacklist`` (default), the validator skips responders
        this node has blacklisted and feeds timeouts back into the
        §IV-D-6 penalty counters.
        """
        return PopValidator(
            interface=self.interface,
            cache=self.cache,
            topology=self.topology,
            registry=self.registry,
            config=self.config,
            rng=rng if rng is not None else self.rng,
            use_tps=use_tps,
            use_wps=use_wps,
            hop_aware=hop_aware,
            blacklist=self.blacklist if use_blacklist else set(),
            on_no_reply=self.record_no_reply if use_blacklist else None,
        )

    def verify_block(
        self,
        verifier: int,
        block_id: Optional[BlockId] = None,
        fetch_body: bool = True,
    ):
        """Start an asynchronous PoP run; returns the simulation process.

        The process's ``value`` is a
        :class:`~repro.core.pop.validator.PopOutcome` once the simulator
        has driven it to completion.
        """
        process = self.network.sim.process(
            self.validator().run(verifier, block_id, fetch_body=fetch_body)
        )
        return process

    # -- churn (§VII future work) ----------------------------------------------
    def go_offline(self) -> None:
        """Leave the network: stop generating, responding and listening.

        Storage (``S_i``, ``H_i``) is retained, as a rebooted or
        temporarily disconnected device would retain its flash.
        """
        self.online = False

    def come_online(self) -> None:
        """Rejoin the network.

        The digest cache ``A_i`` is stale after an absence; it is
        cleared so the next blocks only embed digests actually heard
        after rejoining (fresh ones arrive within one slot).
        """
        self.online = True
        self.neighbor_digests.clear()

    # -- penalty mechanism (§IV-D-6) ------------------------------------------
    def record_no_reply(self, node: int, strikes_to_blacklist: int = 3) -> None:
        """Count a non-reply; blacklist after repeated offences."""
        self._blacklist_strikes[node] = self._blacklist_strikes.get(node, 0) + 1
        if self._blacklist_strikes[node] >= strikes_to_blacklist:
            self.blacklist.add(node)

    def record_cooperation(self, node: int) -> None:
        """A blacklisted node helped transmit blocks again — forgive it."""
        self._blacklist_strikes.pop(node, None)
        self.blacklist.discard(node)

    # -- accounting -----------------------------------------------------------
    def storage_bits(self) -> int:
        """Total persisted bits: own blocks ``S_i`` + header cache ``H_i``.

        Bounded by Proposition 3.
        """
        return self.store.size_bits(self.config) + self.cache.size_bits(self.config)
