"""Proof-of-Path (PoP): the paper's reactive consensus protocol (§IV).

A *validator* verifies a *verifier's* block on demand by extending a
path of child blocks through the logical DAG until the path has
traversed γ+1 distinct physical nodes:

* :mod:`repro.core.pop.wps` — Weighted Path Selection (Algorithm 1)
  picks which neighbour of the current verifying node to ask next;
* :mod:`repro.core.pop.tps` — Trust Path Selection (Algorithm 2)
  extends the path for free using the validator's cache ``H_i`` of
  previously verified headers;
* :mod:`repro.core.pop.validator` — the full validator state machine
  (Algorithm 3) including timeout handling and rollback around
  malicious nodes;
* :mod:`repro.core.pop.responder` — the responder (Algorithm 4),
  answering ``REQ_CHILD`` with the oldest matching child header.
"""

from repro.core.pop.cache import HeaderCache
from repro.core.pop.messages import (
    KIND_BLOCK_FETCH,
    KIND_BLOCK_DATA,
    KIND_REQ_CHILD,
    KIND_RPY_CHILD,
    ReqChild,
    RpyChild,
)
from repro.core.pop.responder import find_oldest_child, serve_req_child
from repro.core.pop.tps import trust_path_selection
from repro.core.pop.validator import PopOutcome, PopValidator
from repro.core.pop.wps import closed_neighborhood_weight, weighted_path_selection

__all__ = [
    "HeaderCache",
    "KIND_BLOCK_DATA",
    "KIND_BLOCK_FETCH",
    "KIND_REQ_CHILD",
    "KIND_RPY_CHILD",
    "PopOutcome",
    "PopValidator",
    "ReqChild",
    "RpyChild",
    "closed_neighborhood_weight",
    "find_oldest_child",
    "serve_req_child",
    "trust_path_selection",
    "weighted_path_selection",
]
