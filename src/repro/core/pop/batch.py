"""Batch verification: auditing many blocks with one warm cache.

Digital twins audit in bursts (e.g. all of last hour's readings from a
production line).  Running the verifications sequentially from one
validator lets every success seed ``H_i`` for the next — this module
packages that pattern and reports aggregate statistics, which the
TPS-ablation benchmarks also use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Sequence, Tuple

from repro.core.block import BlockId
from repro.core.pop.validator import PopOutcome, PopValidator


@dataclass
class BatchReport:
    """Aggregate results of a verification batch."""

    outcomes: List[Tuple[BlockId, PopOutcome]] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of verifications attempted."""
        return len(self.outcomes)

    @property
    def successes(self) -> int:
        """Number that reached consensus."""
        return sum(1 for _, o in self.outcomes if o.success)

    @property
    def success_rate(self) -> float:
        """Fraction that reached consensus."""
        return self.successes / self.total if self.total else 0.0

    @property
    def total_messages(self) -> int:
        """PoP messages across the batch."""
        return sum(o.message_total for _, o in self.outcomes)

    @property
    def total_cache_hits(self) -> int:
        """TPS steps across the batch."""
        return sum(o.tps_steps for _, o in self.outcomes)

    def messages_per_verification(self) -> List[int]:
        """Message cost sequence — typically sharply decreasing as the
        cache warms (the TPS amortisation claim of §IV-B)."""
        return [o.message_total for _, o in self.outcomes]

    def failed_blocks(self) -> List[BlockId]:
        """Targets that could not be verified."""
        return [b for b, o in self.outcomes if not o.success]


def verify_batch(
    validator: PopValidator,
    targets: Sequence[Tuple[int, BlockId]],
    fetch_body: bool = False,
) -> Generator:
    """Verify ``(verifier, block_id)`` targets sequentially.

    A generator for :meth:`repro.sim.Simulator.process`; its return
    value is a :class:`BatchReport`.  Usage::

        report_process = sim.process(verify_batch(node.validator(), targets))
        sim.run()
        report = report_process.value
    """
    report = BatchReport()
    for verifier, block_id in targets:
        outcome = yield from validator.run(verifier, block_id, fetch_body=fetch_body)
        report.outcomes.append((block_id, outcome))
    return report
