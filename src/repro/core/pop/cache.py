"""The trusted header cache ``H_i`` (§IV-B).

After a successful verification, the validator keeps every header on
the path.  Later validations extend paths through cached headers for
free (TPS), avoiding repeat REQ_CHILD round trips — "one may need to
obtain D1 and E2 again when it verifies block C1; this wastes both
computation and communication resources".

The cache maintains a reference index (parent digest -> cached child
headers) so TPS lookups are O(1) per step rather than scanning ``H_i``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.core.block import BlockHeader, BlockId
from repro.core.config import ProtocolConfig
from repro.crypto.hashing import Digest


class HeaderCache:
    """``H_i``: verified headers with a child-lookup index."""

    def __init__(self, hash_bits: int = 256) -> None:
        self.hash_bits = hash_bits
        self._headers: Dict[BlockId, BlockHeader] = {}
        self._children_of_digest: Dict[bytes, List[BlockId]] = {}

    def add(self, header: BlockHeader) -> bool:
        """Insert a header; returns ``False`` if it was already cached."""
        block_id = header.block_id
        if block_id in self._headers:
            return False
        self._headers[block_id] = header
        for parent_digest in header.digests.values():
            self._children_of_digest.setdefault(parent_digest.value, []).append(block_id)
        return True

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._headers

    def __len__(self) -> int:
        return len(self._headers)

    def __iter__(self) -> Iterator[BlockHeader]:
        return iter(self._headers.values())

    def get(self, block_id: BlockId) -> Optional[BlockHeader]:
        """Cached header for ``block_id``, if present."""
        return self._headers.get(block_id)

    def find_child(
        self, digest: Digest, skip_ids=None, exclude_origins=None
    ) -> Optional[BlockHeader]:
        """A cached header whose Δ contains ``digest`` (Eq. 9).

        When several cached headers reference the digest, the oldest
        (smallest time, then id) is returned — mirroring the
        responder's Eq. (11) rule so TPS and live queries agree.
        ``skip_ids`` excludes blocks the caller must not revisit (path
        members and rolled-back dead ends); ``exclude_origins`` filters
        by authoring node — TPS passes the current consensus set so
        free extensions always enlarge ``R_i`` instead of wandering
        down the validator's own chain.
        """
        child_ids = self._children_of_digest.get(digest.value)
        if not child_ids:
            return None
        # Single pass: filter and track the (time, id) minimum without
        # materialising the eligible list — TPS calls this once per free
        # path step, often with most children filtered out.
        best = None
        best_key = None
        for block_id in child_ids:
            if skip_ids and block_id in skip_ids:
                continue
            if exclude_origins and block_id.origin in exclude_origins:
                continue
            key = (self._headers[block_id].time, block_id)
            if best_key is None or key < best_key:
                best = block_id
                best_key = key
        if best is None:
            return None
        return self._headers[best]

    def size_bits(self, config: ProtocolConfig) -> int:
        """Storage occupied by the cache (bounded by Proposition 2)."""
        return sum(h.size_bits(config) for h in self._headers.values())
