"""PoP wire messages.

Three message kinds appear in §IV-C (plus the initial block retrieval):

* ``REQ_CHILD`` — carries ``H(b^h_{v,t})``, the digest whose child is
  sought; wire size is one hash (``f_H``).
* ``RPY_CHILD`` — carries a block header; wire size is the header size
  (``f_c + f_H·|Δ|``).
* block fetch/data — the validator's initial retrieval of the full
  block ``b_{j,t}`` from the verifier (header + ``C``-bit body).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.block import BlockHeader, BlockId
from repro.crypto.hashing import Digest

KIND_REQ_CHILD = "req_child"
KIND_RPY_CHILD = "rpy_child"
KIND_BLOCK_FETCH = "block_fetch"
KIND_BLOCK_DATA = "block_data"


@dataclass(frozen=True)
class ReqChild:
    """Payload of ``REQ_CHILD``: the digest of the verifying block.

    ``verifying_origin`` names the node whose block the digest belongs
    to; the responder does not need it (it indexes by digest), but it
    lets honest responders sanity-check and appears in traces.
    """

    digest: Digest
    verifying_origin: int


@dataclass(frozen=True)
class RpyChild:
    """Payload of ``RPY_CHILD``: the oldest child header, if any.

    ``header`` is ``None`` when the responder has no block referencing
    the requested digest — Algorithm 3 treats that the same as an
    invalid reply (the responder is skipped).
    """

    header: Optional[BlockHeader]


@dataclass(frozen=True)
class BlockFetch:
    """Payload of the initial block retrieval: which block is wanted.

    ``block_id`` of ``None`` means "your latest block" — used by
    auditors that just want to verify the newest sample of a device.

    ``header_only`` asks the verifier for just the block header.  The
    paper's Fig. 8 accounting counts *headers* for consensus traffic
    ("2LDAG ... needs to transmit block headers for consensus"); the
    ``C``-bit body is pulled separately only when the consumer actually
    reads the data, so header-only verification is the common mode in
    the slot workload.
    """

    block_id: Optional[BlockId]
    header_only: bool = False
