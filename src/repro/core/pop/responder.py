"""The responder role — Algorithm 4.

On ``REQ_CHILD(H(b^h_v))`` a node searches its own storage ``S_{j'}``
for blocks whose header contains the requested digest (the child set
``C_{j'}(b_v)`` of Eq. 10) and answers with the header of the *oldest*
one (Eq. 11).  Oldest matters: when the requesting node's rate is low
relative to the responder's, several of the responder's blocks embed
the same digest (Fig. 3: B1's digest appears in both A2 and A3), and
replying with a newer one would lengthen micro-loops (Fig. 6).
"""

from __future__ import annotations

from typing import Optional

from repro.core.block import DataBlock
from repro.core.pop.messages import ReqChild, RpyChild
from repro.core.storage import BlockStore
from repro.crypto.hashing import Digest


def find_oldest_child(store: BlockStore, digest: Digest) -> Optional[DataBlock]:
    """Eq. (10)-(11): the oldest own block referencing ``digest``.

    One dict lookup: the store maintains its oldest-child index
    incrementally as blocks are generated, so serving a ``REQ_CHILD``
    costs O(1) regardless of how many own blocks embed the digest.
    """
    return store.oldest_child_of(digest)


def serve_req_child(store: BlockStore, request: ReqChild) -> RpyChild:
    """Algorithm 4: build the reply for a ``REQ_CHILD`` payload.

    Returns a reply with ``header=None`` when no own block references
    the digest; the transport still sends it (a real node answers "not
    found" rather than staying silent — silence is the *malicious*
    behaviour, §IV-D-1).
    """
    child = find_oldest_child(store, request.digest)
    return RpyChild(header=None if child is None else child.header)
