"""Trust Path Selection — Algorithm 2.

Extends the verification path using only the validator's local cache
``H_i``: while some cached header contains the digest of the current
verifying block, adopt it as the next path element.  No messages are
exchanged — this is where reactive consensus amortises.

Each step's ``current.digest(hash_bits)`` is served from the header's
identity cache, so a whole TPS walk hashes nothing that has been
digested before anywhere in the process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.core.block import BlockHeader, BlockId
from repro.core.pop.cache import HeaderCache


@dataclass
class TpsResult:
    """Mutation record of one TPS run.

    Attributes
    ----------
    verifying_header:
        The new verifying block ``b_{v,t}`` (unchanged if no progress).
    added_headers:
        Headers appended to the path, in order.
    steps:
        Number of free extensions performed.
    """

    verifying_header: BlockHeader
    added_headers: List[BlockHeader]
    steps: int


def trust_path_selection(
    cache: HeaderCache,
    consensus_set: Set[int],
    path: List[BlockHeader],
    verifying_header: BlockHeader,
    hash_bits: int = 256,
    skip_ids: Optional[Set[BlockId]] = None,
) -> TpsResult:
    """Algorithm 2, operating in place on ``consensus_set`` and ``path``.

    Parameters mirror the algorithm's inputs (``H_i``, ``R_i``,
    ``P_i``, ``b_{v,t}``); ``skip_ids`` holds blocks the validator has
    already rolled back past this run (dead ends) — re-adopting one
    from the cache would loop the pop/re-add cycle forever.  The
    caller's ``consensus_set`` and ``path`` are extended; the returned
    record reports what changed.
    """
    added: List[BlockHeader] = []
    current = verifying_header
    seen_ids = {h.block_id for h in path}
    if skip_ids:
        seen_ids |= skip_ids
    while True:
        # Only take free steps that enlarge R_i: a cached child from an
        # origin already on the path burns DAG runway without advancing
        # consensus (micro-loop traversal is the live protocol's job,
        # via the self-candidate fallback).
        child = cache.find_child(
            current.digest(hash_bits),
            skip_ids=seen_ids,
            exclude_origins=consensus_set,
        )
        if child is None:
            break
        if child.block_id in seen_ids:
            # Defensive: a correctly built DAG cannot revisit a block
            # (paths are acyclic), but a poisoned cache must not loop us.
            break
        consensus_set.add(child.origin)
        path.append(child)
        seen_ids.add(child.block_id)
        added.append(child)
        current = child
    return TpsResult(verifying_header=current, added_headers=added, steps=len(added))
