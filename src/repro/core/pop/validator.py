"""The PoP validator — Algorithm 3.

The validator retrieves the target block from the verifier, checks its
Merkle root, then grows a descendant path through the logical DAG:
first for free via the header cache (TPS), then by querying neighbours
of the current verifying node (chosen by WPS) with ``REQ_CHILD``.
Invalid or missing replies cause the responder to be skipped; when all
neighbours of the verifying node are exhausted, the validator *rolls
back* one path element and permanently sidelines the dead-end node for
this run.  Consensus is reached when the path has traversed γ+1
distinct physical nodes; failure is reported when the path rolls back
past the verifier itself.

Implementation notes (deviations documented):

* ``R_i`` is maintained as the derived set of origins of blocks on
  ``P_i``.  The paper mutates ``R_i`` separately; deriving it keeps the
  two consistent during rollbacks through micro-loops, where one origin
  can own several path blocks (popping one block must not evict the
  origin while another of its blocks remains on the path).
* Reply validation goes beyond line 21's digest comparison: the header
  must be authored by the queried responder, carry a valid signature
  (Eq. 6) and satisfy the nonce puzzle (Eq. 5) — the checks §IV-D
  relies on against man-in-the-middle corruption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.core.block import BlockHeader, BlockId, DataBlock
from repro.core.config import ProtocolConfig
from repro.core.pop.cache import HeaderCache
from repro.core.pop.messages import (
    KIND_BLOCK_FETCH,
    KIND_REQ_CHILD,
    BlockFetch,
    ReqChild,
    RpyChild,
)
from repro.core.pop.tps import trust_path_selection
from repro.core.pop.wps import closed_neighborhood_weight, weighted_path_selection
from repro.crypto.keys import KeyRegistry
from repro.crypto.puzzle import NoncePuzzle
from repro.net.topology import Topology
from repro.net.transport import NodeInterface

#: Wire size of a BLOCK_FETCH request (origin u32 + index u32).
BLOCK_FETCH_BITS = 64


@dataclass
class PopOutcome:
    """Result and cost accounting of one verification run.

    Attributes
    ----------
    success:
        Whether consensus (|R_i| ≥ γ+1) was reached.
    error:
        Failure reason when ``success`` is ``False``.
    consensus_set:
        ``R_i`` — distinct physical nodes on the final path.
    path:
        ``P_i`` — headers from the target block to the path tip.
    requests_sent / replies_received / timeouts / invalid_replies:
        PoP message statistics (Props. 4 & 6 bound these).
    tps_steps:
        Path extensions served from the header cache (free).
    rollbacks:
        Dead-end recoveries performed (§IV-D-1, Fig. 5).
    started_at / finished_at:
        Simulated times bracketing the run.
    """

    success: bool = False
    error: Optional[str] = None
    consensus_set: Set[int] = field(default_factory=set)
    path: List[BlockHeader] = field(default_factory=list)
    requests_sent: int = 0
    replies_received: int = 0
    timeouts: int = 0
    invalid_replies: int = 0
    tps_steps: int = 0
    rollbacks: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def headers_retrieved(self) -> int:
        """Headers fetched over the network (excludes TPS cache hits)."""
        return self.replies_received - self.invalid_replies

    @property
    def message_total(self) -> int:
        """Messages the validator emitted and received (Prop. 4/6 metric)."""
        return self.requests_sent + self.replies_received


class PopValidator:
    """One verification run of Algorithm 3, as a simulation process.

    Usage::

        validator = PopValidator(iface, cache, topology, registry, config)
        process = sim.process(validator.run(verifier_id, block_id))
        sim.run()
        outcome = process.value

    Parameters
    ----------
    interface:
        The validator node's network attachment.
    cache:
        The validator's ``H_i`` (shared with its other runs).
    topology:
        Global knowledge ``G(V, E)``.
    registry:
        Public keys of all registered nodes.
    config:
        Protocol constants (γ, τ, field sizes).
    rng:
        WPS tie-break randomness (deterministic when omitted).
    use_tps / use_wps:
        Ablation switches: disable the cache (always query) or replace
        WPS with uniform random neighbour choice.
    hop_aware:
        §VII future work: break WPS ties by physical hop distance from
        the validator, preferring responders whose headers travel fewer
        hops (reduces communication bytes, not message counts).
    blacklist:
        §IV-D-6 penalty mechanism: node ids skipped as responders
        (typically the owning node's ``blacklist`` set, shared by
        reference so bans apply immediately).
    on_no_reply:
        Callback invoked with a responder id on timeout — the owning
        node passes :meth:`IoTNode.record_no_reply` so repeated
        offenders get blacklisted.
    """

    def __init__(
        self,
        interface: NodeInterface,
        cache: HeaderCache,
        topology: Topology,
        registry: KeyRegistry,
        config: ProtocolConfig,
        rng: Optional[random.Random] = None,
        use_tps: bool = True,
        use_wps: bool = True,
        hop_aware: bool = False,
        blacklist: Optional[Set[int]] = None,
        on_no_reply=None,
    ) -> None:
        self.interface = interface
        self.cache = cache
        self.topology = topology
        self.registry = registry
        self.config = config
        self.rng = rng
        self.use_tps = use_tps
        self.use_wps = use_wps
        self.hop_aware = hop_aware
        self.blacklist = blacklist if blacklist is not None else set()
        self.on_no_reply = on_no_reply
        self._puzzle = NoncePuzzle(config.puzzle_difficulty_bits, config.hash_bits)

    def _choose_candidate(self, consensus_set: Set[int], candidates: Set[int]) -> int:
        """Next responder: WPS, optionally hop-distance tie-broken."""
        if not self.use_wps:
            if self.rng is not None:
                return self.rng.choice(sorted(candidates))
            return sorted(candidates)[0]
        if self.hop_aware:
            routing = self.interface.network.routing
            me = self.interface.node_id
            return min(
                sorted(candidates),
                key=lambda c: (
                    closed_neighborhood_weight(c, consensus_set, self.topology),
                    routing.hop_count(me, c),
                    c,
                ),
            )
        return weighted_path_selection(
            consensus_set, candidates, self.topology, self.rng
        )

    # -- public entry point ---------------------------------------------------
    def run(
        self,
        verifier: int,
        block_id: Optional[BlockId] = None,
        fetch_body: bool = True,
    ) -> Generator:
        """Verify ``block_id`` stored at ``verifier`` (its latest if None).

        With ``fetch_body=False`` only the header travels and the
        Merkle-root check is skipped — the mode the paper's Fig. 8
        accounting uses for routine generation-time verification (body
        integrity is still covered: any body tamper changes the Root
        field and thus the header digest the path vouches for).

        A generator to be driven by :meth:`repro.sim.Simulator.process`;
        its return value is a :class:`PopOutcome`.
        """
        sim = self.interface.network.sim
        outcome = PopOutcome(started_at=sim.now)

        # --- Initialization: retrieve the block and check its root (lines 2-6).
        header = yield from self._fetch_block(verifier, block_id, fetch_body, outcome)
        if header is None:
            outcome.finished_at = sim.now
            return outcome
        if not self._header_authentic(header, expected_origin=verifier):
            outcome.error = "verifier-header-invalid"
            outcome.finished_at = sim.now
            return outcome

        path: List[BlockHeader] = [header]
        verifying = header
        # Monotone per-run state guaranteeing termination:
        # * dead_ends — blocks rolled back past; never re-adopted (the
        #   paper's V' removal, but scoped to *blocks*: Algorithm 3
        #   resets V' = V at every outer iteration (line 14), so a node
        #   that dead-ended at its chain tip stays usable at its
        #   earlier, mid-DAG blocks);
        # * reply_memo — (responder, digest) pairs already asked this
        #   run; responders answer deterministically (the oldest child,
        #   Eq. 11), so re-asking after a rollback would waste the
        #   round trip the memo now saves.
        dead_ends: Set[BlockId] = set()
        reply_memo: Dict[Tuple[int, bytes], Optional[BlockHeader]] = {}
        quorum = self.config.consensus_quorum()

        # --- Construct path (lines 8-38).
        while True:
            consensus_set = {h.origin for h in path}
            if self.use_tps:
                result = trust_path_selection(
                    self.cache, consensus_set, path, verifying,
                    self.config.hash_bits, skip_ids=dead_ends,
                )
                outcome.tps_steps += result.steps
                verifying = result.verifying_header
                consensus_set = {h.origin for h in path}
            if len(consensus_set) >= quorum:
                break

            accepted = yield from self._extend_live(
                verifying, consensus_set, dead_ends, reply_memo, outcome
            )
            if accepted is not None:
                path.append(accepted)
                verifying = accepted
                continue

            # Rollback (lines 26-34): this verifying block is a dead end.
            outcome.rollbacks += 1
            dead_ends.add(verifying.block_id)
            path.pop()
            if not path:
                outcome.error = "exhausted"
                outcome.consensus_set = set()
                outcome.finished_at = sim.now
                return outcome
            verifying = path[-1]

        # --- Success: persist the path into H_i (line 39).
        for header in path:
            self.cache.add(header)
        outcome.success = True
        outcome.consensus_set = {h.origin for h in path}
        outcome.path = path
        outcome.finished_at = sim.now
        return outcome

    # -- steps ------------------------------------------------------------------
    def _fetch_block(
        self,
        verifier: int,
        block_id: Optional[BlockId],
        fetch_body: bool,
        outcome: PopOutcome,
    ) -> Generator:
        """Request the target block (or header) from the verifier.

        Returns the verified-ready header, applying the Merkle-root
        check (Algorithm 3 line 3) when the body was retrieved.
        """
        waiter = self.interface.request(
            verifier,
            KIND_BLOCK_FETCH,
            BlockFetch(block_id=block_id, header_only=not fetch_body),
            size_bits=BLOCK_FETCH_BITS,
            timeout=self.config.reply_timeout,
        )
        outcome.requests_sent += 1
        reply = yield waiter
        if reply is None:
            outcome.timeouts += 1
            outcome.error = "verifier-timeout"
            return None
        outcome.replies_received += 1
        payload = reply.payload
        if fetch_body:
            if not isinstance(payload, DataBlock):
                outcome.invalid_replies += 1
                outcome.error = "verifier-bad-payload"
                return None
            if not payload.verify_body_root():
                outcome.error = "merkle-root-mismatch"
                return None
            return payload.header
        if not isinstance(payload, BlockHeader):
            outcome.invalid_replies += 1
            outcome.error = "verifier-bad-payload"
            return None
        return payload

    def _extend_live(
        self,
        verifying: BlockHeader,
        consensus_set: Set[int],
        dead_ends: Set[BlockId],
        reply_memo: Dict[Tuple[int, bytes], Optional[BlockHeader]],
        outcome: PopOutcome,
    ) -> Generator:
        """Lines 13-25: query neighbours of the verifying node via WPS.

        Returns the accepted child header, or ``None`` when every
        candidate neighbour failed (triggering rollback).
        """
        verifying_digest = verifying.digest(self.config.hash_bits)
        candidates = {
            n for n in self.topology.neighbors(verifying.origin)
            if n != self.interface.node_id and n not in self.blacklist
        }
        # The validator can serve from its own store for free: if it is a
        # neighbour of the verifying node, its own headers are already in
        # the cache (TPS handled them), so exclude self from candidates.
        #
        # The verifying node itself is kept as a *last-resort* candidate:
        # its next own block is always a child (the chain edge
        # b_{v,t-1} -> b_{v,t} of the logical DAG), which lets the walk
        # traverse micro-loops even when digest races left no neighbour
        # with a child of this particular block.  It contributes no new
        # origin to R_i, so it is only asked once WPS's candidates fail.
        self_candidate = (
            verifying.origin if verifying.origin != self.interface.node_id else None
        )
        while candidates or self_candidate is not None:
            if not candidates:
                chosen = self_candidate
                self_candidate = None
            else:
                chosen = self._choose_candidate(consensus_set, candidates)
                candidates.discard(chosen)
            header = yield from self._ask_for_child(
                chosen, verifying, verifying_digest, dead_ends, reply_memo, outcome
            )
            if header is not None:
                return header
        return None

    def _ask_for_child(
        self,
        responder: int,
        verifying: BlockHeader,
        verifying_digest,
        dead_ends: Set[BlockId],
        reply_memo: Dict[Tuple[int, bytes], Optional[BlockHeader]],
        outcome: PopOutcome,
    ) -> Generator:
        """One REQ_CHILD/RPY_CHILD exchange; returns the accepted header.

        Responders answer deterministically (oldest child, Eq. 11), so
        the reply for a (responder, digest) pair is memoised within the
        run: rollback re-exploration costs no repeat round trips.
        """
        memo_key = (responder, verifying_digest.value)
        if memo_key in reply_memo:
            header = reply_memo[memo_key]
            if header is None or header.block_id in dead_ends:
                return None
            return header

        waiter = self.interface.request(
            responder,
            KIND_REQ_CHILD,
            ReqChild(digest=verifying_digest, verifying_origin=verifying.origin),
            size_bits=self.config.hash_bits,
            timeout=self.config.reply_timeout,
        )
        outcome.requests_sent += 1
        reply = yield waiter
        if reply is None:
            outcome.timeouts += 1
            reply_memo[memo_key] = None
            if self.on_no_reply is not None:
                self.on_no_reply(responder)
            return None
        outcome.replies_received += 1
        header = self._validate_reply(reply.payload, responder, verifying, verifying_digest)
        if header is None:
            outcome.invalid_replies += 1
            reply_memo[memo_key] = None
            return None
        reply_memo[memo_key] = header
        if header.block_id in dead_ends:
            outcome.invalid_replies += 1
            return None
        return header

    def _validate_reply(
        self,
        payload,
        responder: int,
        verifying: BlockHeader,
        verifying_digest,
    ) -> Optional[BlockHeader]:
        """Line 21 plus authenticity checks; ``None`` rejects the reply."""
        if not isinstance(payload, RpyChild) or payload.header is None:
            return None
        header = payload.header
        if header.origin != responder:
            return None
        # GetDigest(b^h_{j',t*}, v): the digest the child stored for node v.
        recorded = header.digest_from(verifying.origin)
        if recorded is None or recorded != verifying_digest:
            return None
        if not self._header_authentic(header, expected_origin=responder):
            return None
        return header

    def _header_authentic(self, header: BlockHeader, expected_origin: int) -> bool:
        """Signature (Eq. 6) + nonce puzzle (Eq. 5) + identity checks."""
        if header.origin != expected_origin:
            return False
        if not self.registry.is_registered(header.origin):
            return False
        public = self.registry.public_key(header.origin)
        if not header.verify_signature(public):
            return False
        return header.verify_nonce(self._puzzle)
