"""Weighted Path Selection — Algorithm 1.

When the validator must extend the path past verifying block ``b_v``,
it chooses which neighbour ``j' ∈ N(v)`` to ask for a child.  Asking a
node already in ``R_i`` cannot enlarge the consensus set, so WPS scores
each candidate by Eq. (7):

    w_v = |R_i ∩ (N(v) ∪ {v})| / (|N(v)| + 1)

— the fraction of the candidate's *closed neighbourhood* already
counted — and picks the minimum.  Ties are broken in favour of nodes
not yet in ``R_i``, then uniformly at random (we use a seeded stream so
runs are reproducible).
"""

from __future__ import annotations

import random
from typing import AbstractSet, Iterable, List, Optional, Sequence

from repro.net.topology import Topology


def closed_neighborhood_weight(
    candidate: int, consensus_set: AbstractSet[int], topology: Topology
) -> float:
    """Eq. (7): fraction of ``candidate``'s closed neighbourhood in ``R_i``."""
    closed = set(topology.neighbors(candidate)) | {candidate}
    return len(consensus_set & closed) / len(closed)


def weighted_path_selection(
    consensus_set: AbstractSet[int],
    candidates: Iterable[int],
    topology: Topology,
    rng: Optional[random.Random] = None,
) -> int:
    """Algorithm 1: pick the next responder from ``candidates``.

    Parameters
    ----------
    consensus_set:
        ``R_i`` — physical nodes already on the path.
    candidates:
        ``N'`` — remaining neighbours of the verifying node.
    topology:
        Shared knowledge ``G(V, E)`` (every node knows it, §III-A).
    rng:
        Tie-break randomness; deterministic (smallest id) when omitted.

    Returns the chosen node id.  Raises ``ValueError`` on an empty
    candidate set — Algorithm 3 never calls WPS with one.
    """
    pool: List[int] = sorted(set(candidates))
    if not pool:
        raise ValueError("WPS called with no candidates")

    weights = {c: closed_neighborhood_weight(c, consensus_set, topology) for c in pool}
    minimum = min(weights.values())
    tied = [c for c in pool if weights[c] == minimum]

    if len(tied) == 1:
        return tied[0]

    # Lines 8-13: prefer candidates outside R_i when the tie is mixed.
    outside = [c for c in tied if c not in consensus_set]
    if outside and len(outside) != len(tied):
        tied = outside
    if rng is None:
        return tied[0]
    return rng.choice(tied)


def rank_candidates(
    consensus_set: AbstractSet[int], candidates: Sequence[int], topology: Topology
) -> List[int]:
    """All candidates ordered as WPS would prefer them (diagnostics)."""
    return sorted(
        set(candidates),
        key=lambda c: (
            closed_neighborhood_weight(c, consensus_set, topology),
            c in consensus_set,
            c,
        ),
    )
