"""Weighted Path Selection — Algorithm 1.

When the validator must extend the path past verifying block ``b_v``,
it chooses which neighbour ``j' ∈ N(v)`` to ask for a child.  Asking a
node already in ``R_i`` cannot enlarge the consensus set, so WPS scores
each candidate by Eq. (7):

    w_v = |R_i ∩ (N(v) ∪ {v})| / (|N(v)| + 1)

— the fraction of the candidate's *closed neighbourhood* already
counted — and picks the minimum.  Ties are broken in favour of nodes
not yet in ``R_i``, then uniformly at random (we use a seeded stream so
runs are reproducible).

Performance note: the closed neighbourhoods come from the topology's
precomputed table (:attr:`~repro.net.topology.Topology.closed_neighborhoods`),
so no candidate's neighbourhood set is ever rebuilt — scoring is one
C-level intersection count against the frozen table entry.  The weight
values are exactly the same integer-ratio floats as the definitional
formula, so selections (including tie-breaks) are bit-identical;
``tests/pop/test_wps.py`` holds the two implementations equal on
randomised consensus sets.
"""

from __future__ import annotations

import random
from typing import AbstractSet, Iterable, List, Optional, Sequence

from repro.net.topology import Topology


def closed_neighborhood_weight(
    candidate: int, consensus_set: AbstractSet[int], topology: Topology
) -> float:
    """Eq. (7): fraction of ``candidate``'s closed neighbourhood in ``R_i``."""
    closed = topology.closed_neighborhoods[candidate]
    return len(closed & consensus_set) / len(closed)


def weighted_path_selection(
    consensus_set: AbstractSet[int],
    candidates: Iterable[int],
    topology: Topology,
    rng: Optional[random.Random] = None,
) -> int:
    """Algorithm 1: pick the next responder from ``candidates``.

    Parameters
    ----------
    consensus_set:
        ``R_i`` — physical nodes already on the path.
    candidates:
        ``N'`` — remaining neighbours of the verifying node.
    topology:
        Shared knowledge ``G(V, E)`` (every node knows it, §III-A).
    rng:
        Tie-break randomness; deterministic (smallest id) when omitted.

    Returns the chosen node id.  Raises ``ValueError`` on an empty
    candidate set — Algorithm 3 never calls WPS with one.
    """
    pool: List[int] = sorted(set(candidates))
    if not pool:
        raise ValueError("WPS called with no candidates")

    # One pass over the sorted pool: track the running minimum and the
    # candidates tied on it, in pool order (the order the dict-based
    # formulation produced).  The weight expression is inlined — this
    # loop runs for every live path-extension of every PoP run.
    closed_table = topology.closed_neighborhoods
    minimum = 2.0  # Eq. (7) weights live in [0, 1]
    tied: List[int] = []
    for candidate in pool:
        closed = closed_table[candidate]
        weight = len(closed & consensus_set) / len(closed)
        if weight < minimum:
            minimum = weight
            tied = [candidate]
        elif weight == minimum:
            tied.append(candidate)

    if len(tied) == 1:
        return tied[0]

    # Lines 8-13: prefer candidates outside R_i when the tie is mixed.
    outside = [c for c in tied if c not in consensus_set]
    if outside and len(outside) != len(tied):
        tied = outside
    if rng is None:
        return tied[0]
    return rng.choice(tied)


def rank_candidates(
    consensus_set: AbstractSet[int], candidates: Sequence[int], topology: Topology
) -> List[int]:
    """All candidates ordered as WPS would prefer them (diagnostics)."""
    return sorted(
        set(candidates),
        key=lambda c: (
            closed_neighborhood_weight(c, consensus_set, topology),
            c in consensus_set,
            c,
        ),
    )
