"""Network orchestration and the §VI slot-driven simulation.

:class:`TwoLayerDagNetwork` assembles the full stack — simulator,
topology, transport, key registry, logical-DAG oracle and one
:class:`~repro.core.node.IoTNode` per topology node (honest or
malicious via behaviour injection).

:class:`SlotSimulation` drives the paper's evaluation workload: time is
divided into slots; each node generates at most one block per slot
(rate 1 block per ``period`` slots); from slot ``|V|`` onward, a node
that generates a block also validates one uniformly random block that
is at least ``|V|`` slots old ("when a node generates a block, it must
verify another block that is generated in the past using PoP").
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.core.block import BlockId
from repro.core.config import ProtocolConfig
from repro.core.dag import LogicalDag
from repro.core.node import IoTNode, NodeBehavior
from repro.core.pop.validator import PopOutcome
from repro.crypto.keys import KeyRegistry
from repro.metrics.collector import StorageLedger, TrafficLedger
from repro.net.topology import Topology, sequential_geometric_topology
from repro.net.transport import Network
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.tracing import Tracer

#: Traffic categories used by the Fig. 8 breakdown.
CATEGORY_DAG = "dag"        # digest pushes (DAG construction)
CATEGORY_POP = "pop"        # REQ_CHILD / RPY_CHILD / block fetch (consensus)


def _pop_category(kind: str) -> str:
    if kind == "digest":
        return CATEGORY_DAG
    return CATEGORY_POP


class TwoLayerDagNetwork:
    """A fully wired 2LDAG deployment inside one simulator.

    Parameters
    ----------
    config:
        Protocol constants; :meth:`ProtocolConfig.paper_defaults` when
        omitted.
    topology:
        Physical graph; the paper's 50-node sequential geometric
        placement when omitted.
    seed:
        Master seed for every random stream (topology, jitter, WPS
        tie-breaks, workload choices).
    behaviors:
        Node id -> :class:`NodeBehavior` for non-honest nodes.
    """

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        topology: Optional[Topology] = None,
        seed: int = 0,
        behaviors: Optional[Mapping[int, NodeBehavior]] = None,
        tracer: Optional[Tracer] = None,
        per_hop_latency: float = 0.001,
    ) -> None:
        self.config = config if config is not None else ProtocolConfig.paper_defaults()
        self.streams = RandomStreams(seed)
        self.topology = (
            topology
            if topology is not None
            else sequential_geometric_topology(streams=self.streams)
        )
        self.sim = Simulator()
        self.tracer = tracer if tracer is not None else Tracer()
        self.traffic = TrafficLedger()
        self.network = Network(
            self.sim,
            self.topology,
            ledger=self.traffic,
            per_hop_latency=per_hop_latency,
            category_fn=_pop_category,
            tracer=self.tracer,
        )
        self.registry = KeyRegistry()
        self.dag = LogicalDag(self.config.hash_bits)

        behaviors = behaviors or {}
        self.nodes: Dict[int, IoTNode] = {}
        for node_id in self.topology.node_ids:
            self.nodes[node_id] = IoTNode(
                node_id=node_id,
                network=self.network,
                registry=self.registry,
                config=self.config,
                behavior=behaviors.get(node_id),
                dag_oracle=self.dag,
                key_seed=seed,
                rng=self.streams.get(f"node:{node_id}"),
            )
        self.behavior_overrides: Set[int] = set(behaviors)

    # -- access ------------------------------------------------------------
    def node(self, node_id: int) -> IoTNode:
        """The :class:`IoTNode` with the given id."""
        return self.nodes[node_id]

    @property
    def node_ids(self) -> List[int]:
        """All node ids, sorted."""
        return self.topology.node_ids

    @property
    def honest_ids(self) -> List[int]:
        """Nodes running the default behaviour."""
        return [n for n in self.node_ids if n not in self.behavior_overrides]

    # -- measurement --------------------------------------------------------
    def storage_snapshot(self) -> StorageLedger:
        """Current per-node storage (``S_i`` + ``H_i``), Fig. 7's metric."""
        ledger = StorageLedger()
        for node_id, node in self.nodes.items():
            ledger.set_bits(node_id, "blocks", node.store.size_bits(self.config))
            ledger.set_bits(node_id, "headers", node.cache.size_bits(self.config))
        return ledger

    def mean_storage_bits(self) -> float:
        """Average per-node stored bits."""
        total = sum(node.storage_bits() for node in self.nodes.values())
        return total / len(self.nodes)


@dataclass
class SlotReport:
    """What happened during one simulated slot."""

    slot: int
    blocks_generated: List[BlockId] = field(default_factory=list)
    validations_started: int = 0


@dataclass
class ValidationRecord:
    """A completed PoP run with its workload context."""

    validator: int
    verifier: int
    block_id: BlockId
    slot_started: int
    outcome: Optional[PopOutcome]


class SlotSimulation:
    """The paper's time-slotted workload driver (§VI).

    Parameters
    ----------
    deployment:
        A wired :class:`TwoLayerDagNetwork`.
    generation_period:
        Slots between blocks per node.  An int applies to all nodes; a
        mapping sets per-node rates; the string ``"random-1-2"``
        reproduces Fig. 9's "one block per one or two time slots"
        (drawn once per node from the seeded stream).
    validate:
        Whether generating nodes also run PoP on an old block.
    fetch_body:
        Whether workload validations retrieve the target's body.  The
        paper's communication accounting counts headers only (Fig. 8),
        so the default is header-only verification.
    validation_min_age_slots:
        Minimum age of validation targets; defaults to ``|V|`` per the
        paper ("PoP can only verify a block that is generated before
        |V| time slots").
    intra_slot_jitter:
        Nodes generate at ``slot + U[0, jitter]`` so same-slot blocks
        can reference each other, as in the Fig. 3 walk-through.
    """

    def __init__(
        self,
        deployment: TwoLayerDagNetwork,
        generation_period=1,
        validate: bool = False,
        validation_min_age_slots: Optional[int] = None,
        intra_slot_jitter: float = 0.3,
        fetch_body: bool = False,
    ) -> None:
        self.deployment = deployment
        self.validate = validate
        self.fetch_body = fetch_body
        self.intra_slot_jitter = intra_slot_jitter
        node_ids = deployment.node_ids
        if validation_min_age_slots is None:
            validation_min_age_slots = len(node_ids)
        self.validation_min_age_slots = validation_min_age_slots

        rng = deployment.streams.get("workload")
        self._rng = rng
        if generation_period == "random-1-2":
            self.period: Dict[int, int] = {n: rng.choice([1, 2]) for n in node_ids}
        elif isinstance(generation_period, int):
            self.period = {n: generation_period for n in node_ids}
        else:
            self.period = {n: int(generation_period[n]) for n in node_ids}
        for node_id, period in self.period.items():
            if period < 1:
                raise ValueError(f"generation period of node {node_id} must be >= 1")

        #: (slot -> block ids generated in that slot)
        self.blocks_by_slot: Dict[int, List[BlockId]] = {}
        self.slot_reports: List[SlotReport] = []
        self.validations: List[ValidationRecord] = []
        self._pending: List[Tuple[ValidationRecord, Process]] = []
        self.current_slot = -1
        # Validation-target pool: blocks of fully simulated slots, kept
        # sorted incrementally.  Re-sorting every eligible block on every
        # pick dominated large workloads (O(blocks · log) comparisons per
        # generated block); folding each slot in once as it ages past the
        # eligibility boundary makes a pick a linear filter.
        self._eligible_sorted: List[BlockId] = []
        self._eligible_merged_slot: Optional[int] = None

    # -- scheduling one slot --------------------------------------------------
    def _schedule_slot(self, slot: int) -> SlotReport:
        deployment = self.deployment
        report = SlotReport(slot=slot)
        order = deployment.streams.shuffled(f"order:{slot}", deployment.node_ids)
        # Ad-hoc verifications between run() calls may have advanced the
        # clock past the nominal slot boundary; never schedule behind it.
        slot_base = max(float(slot), deployment.sim.now)
        for rank, node_id in enumerate(order):
            if slot % self.period[node_id] != 0:
                continue
            jitter = (
                self._rng.uniform(0.0, self.intra_slot_jitter)
                if self.intra_slot_jitter > 0
                else 0.0
            )
            deployment.sim.call_at(
                slot_base + jitter, self._make_generator(node_id, slot, report)
            )
        return report

    def _make_generator(self, node_id: int, slot: int, report: SlotReport) -> Callable[[], None]:
        def generate() -> None:
            node = self.deployment.node(node_id)
            if not node.online:
                return
            block = node.generate_block()
            self.blocks_by_slot.setdefault(slot, []).append(block.block_id)
            merged = self._eligible_merged_slot
            if merged is not None and slot <= merged:
                # Late generator (possible when intra_slot_jitter >= 1
                # pushes a slot-s event past slot s's run window): its
                # slot was already folded into the pool, so fold the
                # block in directly to keep the pool an exact snapshot.
                insort(self._eligible_sorted, block.block_id)
            report.blocks_generated.append(block.block_id)
            if self.validate:
                target = self._pick_validation_target(slot, exclude_origin=node_id)
                if target is not None:
                    record = ValidationRecord(
                        validator=node_id,
                        verifier=target.origin,
                        block_id=target,
                        slot_started=slot,
                        outcome=None,  # filled on completion
                    )
                    process = node.verify_block(
                        target.origin, target, fetch_body=self.fetch_body
                    )
                    self._pending.append((record, process))
                    report.validations_started += 1
                    tracer = self.deployment.tracer
                    if tracer.enabled:
                        tracer.emit(
                            self.deployment.sim.now, "pop.started", node_id,
                            block=str(target), verifier=target.origin,
                        )

        return generate

    def _merge_eligible_through(self, boundary: int) -> None:
        """Fold blocks of fully simulated slots ≤ ``boundary`` into the pool.

        Only completed slots may be folded — their block lists can no
        longer grow, so the pool stays an exact sorted snapshot.  The
        boundary is monotone (slots only move forward), so each slot is
        merged exactly once.
        """
        merged = self._eligible_merged_slot
        if merged is not None and boundary <= merged:
            return
        lower = merged if merged is not None else None
        for s in sorted(self.blocks_by_slot):
            if s > boundary or (lower is not None and s <= lower):
                continue
            for block in self.blocks_by_slot[s]:
                insort(self._eligible_sorted, block)
        self._eligible_merged_slot = boundary

    def _pick_validation_target(self, slot: int, exclude_origin: int) -> Optional[BlockId]:
        """Uniform random block at least ``validation_min_age_slots`` old."""
        newest_eligible_slot = slot - self.validation_min_age_slots
        merge_boundary = min(newest_eligible_slot, self.current_slot)
        self._merge_eligible_through(merge_boundary)
        eligible = [b for b in self._eligible_sorted if b.origin != exclude_origin]
        if merge_boundary < newest_eligible_slot:
            # Eligibility reaches into the in-flight slot (only possible
            # with a minimum age below one slot): scan it live, exactly
            # as the pre-pooled implementation did.
            extra = [
                block
                for s, blocks in self.blocks_by_slot.items()
                if merge_boundary < s <= newest_eligible_slot
                for block in blocks
                if block.origin != exclude_origin
            ]
            if extra:
                eligible = sorted(eligible + extra)
        if not eligible:
            return None
        return self._rng.choice(eligible)

    # -- running -----------------------------------------------------------------
    def run(self, slots: int, start_slot: int = 0) -> None:
        """Simulate ``slots`` slots, scheduling generation/validation.

        May be called repeatedly to extend a simulation (the Fig. 7/8
        storage-vs-time curves snapshot between calls).
        """
        for slot in range(start_slot, start_slot + slots):
            if slot <= self.current_slot:
                raise ValueError(f"slot {slot} already simulated")
            report = self._schedule_slot(slot)
            self.slot_reports.append(report)
            self.deployment.sim.run(
                until=max(float(slot + 1), self.deployment.sim.now + 1.0)
            )
            self.current_slot = slot
            self._harvest_completed()

    def run_until_quiet(self, max_extra_time: float = 50.0) -> None:
        """Drain in-flight validations after the last scheduled slot."""
        self.deployment.sim.run(until=self.deployment.sim.now + max_extra_time)
        self._harvest_completed()

    def _harvest_completed(self) -> None:
        tracer = self.deployment.tracer
        still_pending: List[Tuple[ValidationRecord, Process]] = []
        for record, process in self._pending:
            if process.triggered and process.ok:
                record.outcome = process.value
                self.validations.append(record)
                if tracer.enabled:
                    # Emitted at the validation's own finish time (the
                    # outcome brackets it), not the harvest boundary.
                    tracer.emit(
                        record.outcome.finished_at, "pop.completed",
                        record.validator,
                        block=str(record.block_id),
                        success=record.outcome.success,
                        started=record.outcome.started_at,
                    )
            elif process.triggered:
                raise process.value
            else:
                still_pending.append((record, process))
        self._pending = still_pending

    # -- results ----------------------------------------------------------------
    @property
    def pending_validations(self) -> int:
        """Validations still in flight."""
        return len(self._pending)

    def completed_outcomes(self) -> List[PopOutcome]:
        """Outcomes of all finished validations."""
        return [r.outcome for r in self.validations]

    def success_rate(self) -> float:
        """Fraction of finished validations that reached consensus."""
        outcomes = self.completed_outcomes()
        if not outcomes:
            return 0.0
        return sum(1 for o in outcomes if o.success) / len(outcomes)

    def total_blocks(self) -> int:
        """Blocks generated so far (Proposition 1 cross-check)."""
        return sum(len(b) for b in self.blocks_by_slot.values())
