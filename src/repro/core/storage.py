"""Per-node block storage ``S_i`` with a child-reference index.

A node stores only blocks it generated itself (§III-A).  The index
``digest -> [own blocks referencing it]`` makes Algorithm 4's child
search O(1) per request instead of scanning the whole store.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.core.block import BlockId, DataBlock
from repro.core.config import ProtocolConfig
from repro.crypto.hashing import Digest


class BlockStore:
    """Append-only store of one node's own blocks."""

    def __init__(self, owner: int, hash_bits: int = 256) -> None:
        self.owner = owner
        self.hash_bits = hash_bits
        self._blocks: List[DataBlock] = []
        self._children_of_digest: Dict[bytes, List[int]] = {}
        # digest -> position of the Eq. (11) reply block, maintained
        # incrementally so the responder's hot path is one dict lookup
        # instead of a min() over all referencing blocks.
        self._oldest_child_of_digest: Dict[bytes, int] = {}

    def add(self, block: DataBlock) -> None:
        """Append a newly generated block and index its references."""
        if block.header.origin != self.owner:
            raise ValueError(
                f"store of node {self.owner} got block from node {block.header.origin}"
            )
        expected_index = len(self._blocks)
        if block.header.index != expected_index:
            raise ValueError(
                f"non-contiguous block index {block.header.index}, expected {expected_index}"
            )
        position = len(self._blocks)
        self._blocks.append(block)
        time = block.header.time
        for parent_digest in block.header.digests.values():
            key = parent_digest.value
            self._children_of_digest.setdefault(key, []).append(position)
            oldest = self._oldest_child_of_digest.get(key)
            if oldest is None or (time, position) < (
                self._blocks[oldest].header.time, oldest
            ):
                self._oldest_child_of_digest[key] = position

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[DataBlock]:
        return iter(self._blocks)

    @property
    def latest(self) -> Optional[DataBlock]:
        """The most recent own block (``None`` before the genesis block)."""
        return self._blocks[-1] if self._blocks else None

    def by_index(self, index: int) -> DataBlock:
        """Block with per-node sequence ``index``."""
        return self._blocks[index]

    def get(self, block_id: BlockId) -> Optional[DataBlock]:
        """Block by full id, if it is ours and exists."""
        if block_id.origin != self.owner or not 0 <= block_id.index < len(self._blocks):
            return None
        return self._blocks[block_id.index]

    def oldest_child_of(self, digest: Digest) -> Optional[DataBlock]:
        """Eq. (10)-(11): oldest own block whose Δ contains ``digest``.

        Served from the incrementally maintained oldest-child index —
        ties on generation time break towards the earlier sequence
        position, matching the previous ``min`` over all children.
        """
        position = self._oldest_child_of_digest.get(digest.value)
        if position is None:
            return None
        return self._blocks[position]

    def size_bits(self, config: ProtocolConfig) -> int:
        """Total stored bits of ``S_i`` (Eq. 2 summed over blocks)."""
        return sum(block.size_bits(config) for block in self._blocks)
