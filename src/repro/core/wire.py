"""Wire format: byte-level serialization of blocks and headers.

The simulation passes Python objects between nodes for speed, but a
deployable implementation needs a defined octet format.  This module
provides one — a length-prefixed binary encoding that round-trips
:class:`~repro.core.block.BlockHeader`, :class:`~repro.core.block.BlockBody`
and :class:`~repro.core.block.DataBlock` — along with strict parsing
(truncated or trailing bytes are errors, not warnings: a node must
never act on a half-parsed header).

Format (all integers big-endian):

    header   := magic(2) version(1) origin(u32) index(u32) time(u64 µs)
                proto_version(u32) root_len(u32) root
                digest_count(u32) { node(u32) digest_len(u32) digest }*
                nonce(u64) sig_len(u32) sig
    body     := magic(2) version(1) seed_len(u32) seed size_bits(u64)
    block    := magic(2) version(1) header_blob body_blob (each length-prefixed)
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.core.block import BlockBody, BlockHeader, DataBlock
from repro.crypto.hashing import Digest

_HEADER_MAGIC = b"2H"
_BODY_MAGIC = b"2B"
_BLOCK_MAGIC = b"2K"
_WIRE_VERSION = 1


class WireError(ValueError):
    """Raised on malformed, truncated or trailing wire bytes."""


class _Reader:
    """Cursor over immutable bytes with bounds-checked reads."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def take(self, count: int) -> bytes:
        if count < 0 or self._offset + count > len(self._data):
            raise WireError(
                f"truncated input: wanted {count} bytes at offset {self._offset}, "
                f"have {len(self._data) - self._offset}"
            )
        chunk = self._data[self._offset:self._offset + count]
        self._offset += count
        return chunk

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack(">Q", self.take(8))[0]

    def blob(self) -> bytes:
        return self.take(self.u32())

    def expect_end(self) -> None:
        if self._offset != len(self._data):
            raise WireError(
                f"{len(self._data) - self._offset} trailing bytes after message"
            )

    def expect_magic(self, magic: bytes) -> None:
        found = self.take(len(magic))
        if found != magic:
            raise WireError(f"bad magic {found!r}, expected {magic!r}")
        version = self.take(1)[0]
        if version != _WIRE_VERSION:
            raise WireError(f"unsupported wire version {version}")


def _u32(value: int) -> bytes:
    if not 0 <= value < 2 ** 32:
        raise WireError(f"u32 out of range: {value}")
    return struct.pack(">I", value)


def _u64(value: int) -> bytes:
    if not 0 <= value < 2 ** 64:
        raise WireError(f"u64 out of range: {value}")
    return struct.pack(">Q", value)


def _blob(data: bytes) -> bytes:
    return _u32(len(data)) + data


# -- headers ---------------------------------------------------------------

def encode_header(header: BlockHeader) -> bytes:
    """Serialize a block header to wire bytes.

    Memoised on the (frozen) header object alongside its canonical
    encoding and digest — persistence and replay paths serialise the
    same headers repeatedly, and the wire bytes are as immutable as the
    header itself.
    """
    cached = header.__dict__.get("_hdr_wire")
    if cached is not None:
        return cached
    parts = [
        _HEADER_MAGIC,
        bytes([_WIRE_VERSION]),
        _u32(header.origin),
        _u32(header.index),
        _u64(int(round(header.time * 1_000_000))),
        _u32(header.version),
        _blob(header.root.value),
        _u32(len(header.digests)),
    ]
    for node in sorted(header.digests):
        digest = header.digests[node]
        parts.append(_u32(node))
        parts.append(_blob(digest.value))
    parts.append(_u64(header.nonce))
    parts.append(_blob(header.signature))
    data = b"".join(parts)
    object.__setattr__(header, "_hdr_wire", data)
    return data


def decode_header(data: bytes, hash_bits: int = 256) -> BlockHeader:
    """Parse wire bytes back into a header (strict)."""
    reader = _Reader(data)
    header = _read_header(reader, hash_bits)
    reader.expect_end()
    return header


def _read_header(reader: _Reader, hash_bits: int) -> BlockHeader:
    reader.expect_magic(_HEADER_MAGIC)
    origin = reader.u32()
    index = reader.u32()
    time = reader.u64() / 1_000_000.0
    proto_version = reader.u32()
    root = Digest(reader.blob(), hash_bits)
    digest_count = reader.u32()
    if digest_count > 10_000:
        raise WireError(f"implausible digest count {digest_count}")
    digests: Dict[int, Digest] = {}
    for _ in range(digest_count):
        node = reader.u32()
        if node in digests:
            raise WireError(f"duplicate digest entry for node {node}")
        digests[node] = Digest(reader.blob(), hash_bits)
    nonce = reader.u64()
    signature = reader.blob()
    return BlockHeader(
        origin=origin,
        index=index,
        version=proto_version,
        time=time,
        root=root,
        digests=digests,
        nonce=nonce,
        signature=signature,
    )


# -- bodies and blocks --------------------------------------------------------

def encode_body(body: BlockBody) -> bytes:
    """Serialize a body descriptor (seed + declared size)."""
    return b"".join([
        _BODY_MAGIC,
        bytes([_WIRE_VERSION]),
        _blob(body.content_seed),
        _u64(body.size_bits),
    ])


def decode_body(data: bytes) -> BlockBody:
    """Parse wire bytes back into a body descriptor (strict)."""
    reader = _Reader(data)
    body = _read_body(reader)
    reader.expect_end()
    return body


def _read_body(reader: _Reader) -> BlockBody:
    reader.expect_magic(_BODY_MAGIC)
    seed = reader.blob()
    size_bits = reader.u64()
    return BlockBody(content_seed=seed, size_bits=size_bits)


def encode_block(block: DataBlock) -> bytes:
    """Serialize a full block (header + body)."""
    return b"".join([
        _BLOCK_MAGIC,
        bytes([_WIRE_VERSION]),
        _blob(encode_header(block.header)),
        _blob(encode_body(block.body)),
    ])


def decode_block(data: bytes, hash_bits: int = 256) -> DataBlock:
    """Parse wire bytes back into a full block (strict)."""
    reader = _Reader(data)
    reader.expect_magic(_BLOCK_MAGIC)
    header = decode_header(reader.blob(), hash_bits)
    body = decode_body(reader.blob())
    reader.expect_end()
    return DataBlock(header=header, body=body)
