"""Cryptographic substrate.

Real SHA-256 is used for all digests (truncated to the configured digest
width, ``f_H`` in the paper), so corruption genuinely changes hashes and
the DAG's tamper-evidence is exercised for real.  Signatures are a
*simulated* keyed-hash scheme (see :mod:`repro.crypto.signature`): they
are unforgeable within the simulation's trust model and have the byte
sizes the paper accounts for, without pulling in an external ECC
dependency.

Modules
-------
``hashing``
    Digest primitives and the :class:`~repro.crypto.hashing.Digest` value
    type.
``merkle``
    Merkle tree over block-body chunks; ``Root`` field of headers.
``keys`` / ``signature``
    Key pairs, registry, sign/verify.
``puzzle``
    The nonce difficulty puzzle of Eq. (5).
"""

from repro.crypto.hashing import DIGEST_BITS_DEFAULT, Digest, hash_bytes, hash_fields
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.merkle import MerkleTree, merkle_root
from repro.crypto.puzzle import NoncePuzzle, PuzzleSolution
from repro.crypto.signature import sign, verify

__all__ = [
    "DIGEST_BITS_DEFAULT",
    "Digest",
    "KeyPair",
    "KeyRegistry",
    "MerkleTree",
    "NoncePuzzle",
    "PuzzleSolution",
    "hash_bytes",
    "hash_fields",
    "merkle_root",
    "sign",
    "verify",
]
