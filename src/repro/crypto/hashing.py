"""Digest primitives.

The paper fixes the hash width ``f_H`` at 256 bits (Fig. 2).  We use
SHA-256 and allow truncation to narrower widths for experiments; a
:class:`Digest` remembers its width so size accounting (Eqs. 2-3) stays
bit-exact even with non-default widths.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Union

#: The paper's digest width f_H (bits).
DIGEST_BITS_DEFAULT = 256

BytesLike = Union[bytes, bytearray, memoryview]


@dataclass(frozen=True)
class Digest:
    """An immutable hash value with explicit bit width.

    Attributes
    ----------
    value:
        Raw digest bytes (already truncated to ``bits``).
    bits:
        Width in bits; always a multiple of 8 here.
    """

    value: bytes
    bits: int = DIGEST_BITS_DEFAULT

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.bits % 8 != 0:
            raise ValueError(f"digest width must be a positive multiple of 8, got {self.bits}")
        if len(self.value) != self.bits // 8:
            raise ValueError(
                f"digest value has {len(self.value)} bytes, expected {self.bits // 8}"
            )

    @property
    def size_bits(self) -> int:
        """Width in bits (alias used by size accounting)."""
        return self.bits

    def hex(self) -> str:
        """Lower-case hex rendering of the digest."""
        return self.value.hex()

    def short(self, chars: int = 8) -> str:
        """Abbreviated hex form for logs and reprs."""
        return self.value.hex()[:chars]

    def leading_zero_bits(self) -> int:
        """Number of leading zero bits — used by the nonce puzzle."""
        count = 0
        for byte in self.value:
            if byte == 0:
                count += 8
                continue
            for shift in range(7, -1, -1):
                if byte >> shift & 1:
                    return count
                count += 1
        return count

    def __int__(self) -> int:
        return int.from_bytes(self.value, "big")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Digest({self.short()}…/{self.bits}b)"


def hash_bytes(data: BytesLike, bits: int = DIGEST_BITS_DEFAULT) -> Digest:
    """SHA-256 of ``data`` truncated to ``bits`` bits."""
    raw = hashlib.sha256(bytes(data)).digest()
    return Digest(raw[: bits // 8], bits)


def hash_fields(fields: Iterable[BytesLike], bits: int = DIGEST_BITS_DEFAULT) -> Digest:
    """Hash a sequence of byte fields with length-prefixed framing.

    Length prefixes prevent ambiguity between e.g. ``(b"ab", b"c")`` and
    ``(b"a", b"bc")`` — important because header digests (Eq. 5/6) hash
    several variable-length fields together.
    """
    hasher = hashlib.sha256()
    for field in fields:
        chunk = bytes(field)
        hasher.update(len(chunk).to_bytes(4, "big"))
        hasher.update(chunk)
    return Digest(hasher.digest()[: bits // 8], bits)
