"""Key pairs and the network key registry.

The paper assumes every node owns a public/private key pair and that
"nodes are aware of the topology and each other's public key"
(Section IV-D).  :class:`KeyRegistry` models that shared knowledge: it
maps node ids to public keys and rejects unknown identities, which is
the mechanism that defeats Sybil identities in §IV-D-3.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator


@dataclass(frozen=True)
class KeyPair:
    """A simulated public/private key pair for one node.

    The private key is random-looking bytes derived from the owner id
    and a seed; the public key is a one-way image of the private key.
    Within the simulation, knowing ``public`` does not let an attacker
    produce signatures, because :func:`repro.crypto.signature.sign`
    requires the private bytes.
    """

    owner: int
    private: bytes
    public: bytes

    @classmethod
    def generate(cls, owner: int, seed: int = 0) -> "KeyPair":
        """Deterministically generate the pair for ``owner`` under ``seed``."""
        private = hashlib.sha256(f"sk:{seed}:{owner}".encode()).digest()
        public = hashlib.sha256(b"pk-derive:" + private).digest()
        return cls(owner=owner, private=private, public=public)


class KeyRegistry:
    """The network-wide directory of registered public keys.

    Registration models the out-of-band device-onboarding step the
    paper declares out of scope ("we assume there is a complementary
    method to register a device onto a network", §III-A).
    """

    def __init__(self) -> None:
        self._by_node: Dict[int, bytes] = {}

    def register(self, pair: KeyPair) -> None:
        """Admit a node's public key; re-registration must be identical."""
        existing = self._by_node.get(pair.owner)
        if existing is not None and existing != pair.public:
            raise ValueError(f"node {pair.owner} already registered with a different key")
        self._by_node[pair.owner] = pair.public

    def public_key(self, node: int) -> bytes:
        """Public key of ``node``; raises ``KeyError`` for unknown ids."""
        return self._by_node[node]

    def is_registered(self, node: int) -> bool:
        """Whether the identity is known to the network."""
        return node in self._by_node

    def __len__(self) -> int:
        return len(self._by_node)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._by_node))
