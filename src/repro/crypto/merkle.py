"""Merkle tree over block-body chunks.

Block headers carry ``Root = M(b^d)`` — the Merkle root of the body —
so a validator can check body integrity without trusting the storing
node (Algorithm 3, line 3).  We implement a standard binary Merkle tree
with duplicate-last-leaf padding and audit-path generation, the latter
enabling the partial-body verification extension discussed in tests.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.crypto.hashing import DIGEST_BITS_DEFAULT, Digest, hash_bytes, hash_fields

#: Domain-separation tags so a leaf can never be confused with an
#: interior node (defends against second-preimage tree attacks).
_LEAF_TAG = b"\x00"
_NODE_TAG = b"\x01"


def _hash_leaf(chunk: bytes, bits: int) -> Digest:
    return hash_bytes(_LEAF_TAG + chunk, bits)


def _hash_children(left: Digest, right: Digest, bits: int) -> Digest:
    return hash_fields([_NODE_TAG, left.value, right.value], bits)


class MerkleTree:
    """A binary Merkle tree built from byte chunks.

    Parameters
    ----------
    chunks:
        Body chunks; an empty body is represented by one empty chunk so
        every tree has a root.
    bits:
        Digest width (``f_H``).
    """

    def __init__(self, chunks: Sequence[bytes], bits: int = DIGEST_BITS_DEFAULT) -> None:
        if not chunks:
            chunks = [b""]
        self.bits = bits
        self.leaf_count = len(chunks)
        self._levels: List[List[Digest]] = [[_hash_leaf(c, bits) for c in chunks]]
        while len(self._levels[-1]) > 1:
            level = self._levels[-1]
            if len(level) % 2 == 1:
                level = level + [level[-1]]
            self._levels.append(
                [_hash_children(level[i], level[i + 1], bits) for i in range(0, len(level), 2)]
            )

    @property
    def root(self) -> Digest:
        """The tree root — the header's ``Root`` field."""
        return self._levels[-1][0]

    @property
    def height(self) -> int:
        """Number of levels above the leaves."""
        return len(self._levels) - 1

    def audit_path(self, index: int) -> List[Tuple[bool, Digest]]:
        """Sibling hashes proving leaf ``index`` is under :attr:`root`.

        Returns a list of ``(sibling_is_right, sibling_digest)`` pairs
        from leaf level upward.
        """
        if not 0 <= index < self.leaf_count:
            raise IndexError(f"leaf index {index} out of range [0, {self.leaf_count})")
        path: List[Tuple[bool, Digest]] = []
        position = index
        for level in self._levels[:-1]:
            padded = level if len(level) % 2 == 0 else level + [level[-1]]
            if position % 2 == 0:
                path.append((True, padded[position + 1]))
            else:
                path.append((False, padded[position - 1]))
            position //= 2
        return path


def merkle_root(chunks: Sequence[bytes], bits: int = DIGEST_BITS_DEFAULT) -> Digest:
    """Convenience: the root of :class:`MerkleTree` over ``chunks``."""
    return MerkleTree(chunks, bits).root


def verify_audit_path(
    chunk: bytes,
    path: Sequence[Tuple[bool, Digest]],
    root: Digest,
    bits: int = DIGEST_BITS_DEFAULT,
) -> bool:
    """Check that ``chunk`` is a leaf of the tree with the given ``root``."""
    current = _hash_leaf(chunk, bits)
    for sibling_is_right, sibling in path:
        if sibling_is_right:
            current = _hash_children(current, sibling, bits)
        else:
            current = _hash_children(sibling, current, bits)
    return current == root
