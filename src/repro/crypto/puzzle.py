"""The nonce difficulty puzzle of Eq. (5).

A node must find a nonce ``n`` such that
``H(M(b^d), Δ, n) ≤ ρ`` before publishing a block.  The paper uses the
puzzle purely as a rate limiter ("a malicious node is not able to
generate a large number of blocks within a short time", §IV-D-5 — the
same strategy as IOTA), with ρ chosen so honest devices solve it in
seconds.

We express difficulty as *leading zero bits* (equivalent to a threshold
ρ = 2^(bits - difficulty)); difficulty 0 disables the search, which the
large experiment sweeps use since puzzle wall-time is not a measured
metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.crypto.hashing import DIGEST_BITS_DEFAULT, Digest, hash_fields


@dataclass(frozen=True)
class PuzzleSolution:
    """A found nonce and the digest witnessing it."""

    nonce: int
    digest: Digest
    attempts: int


class NoncePuzzle:
    """Leading-zero-bits proof-of-work puzzle.

    Parameters
    ----------
    difficulty_bits:
        Required number of leading zero bits; 0 means "accept nonce 0".
    bits:
        Digest width used for the puzzle hash.
    max_attempts:
        Safety cap; exceeded only if difficulty is set absurdly high.
    """

    def __init__(
        self,
        difficulty_bits: int = 0,
        bits: int = DIGEST_BITS_DEFAULT,
        max_attempts: int = 1_000_000,
    ) -> None:
        if difficulty_bits < 0 or difficulty_bits > bits:
            raise ValueError(f"difficulty must be in [0, {bits}], got {difficulty_bits}")
        self.difficulty_bits = difficulty_bits
        self.bits = bits
        self.max_attempts = max_attempts

    def _digest(self, fields: Iterable[bytes], nonce: int) -> Digest:
        return hash_fields(list(fields) + [nonce.to_bytes(8, "big")], self.bits)

    def meets_difficulty(self, digest: Digest) -> bool:
        """Whether a digest satisfies the threshold (H ≤ ρ)."""
        return digest.leading_zero_bits() >= self.difficulty_bits

    def solve(self, fields: Iterable[bytes], start_nonce: int = 0) -> PuzzleSolution:
        """Search nonces from ``start_nonce`` until Eq. (5) is satisfied."""
        materialized = [bytes(f) for f in fields]
        nonce = start_nonce
        attempts = 0
        while attempts < self.max_attempts:
            digest = self._digest(materialized, nonce)
            attempts += 1
            if self.meets_difficulty(digest):
                return PuzzleSolution(nonce=nonce, digest=digest, attempts=attempts)
            nonce += 1
        raise RuntimeError(
            f"no nonce found within {self.max_attempts} attempts at "
            f"difficulty {self.difficulty_bits}"
        )

    def check(self, fields: Iterable[bytes], nonce: int) -> bool:
        """Verify a claimed nonce — what a receiving neighbour does."""
        return self.meets_difficulty(self._digest([bytes(f) for f in fields], nonce))

    def expected_attempts(self) -> float:
        """Expected number of hash attempts (2^difficulty)."""
        return float(2 ** self.difficulty_bits)
