"""Simulated signatures (Eq. 6).

The paper computes ``s_{i,t} = E(H(header fields), sk_i)`` with an
unspecified lightweight scheme.  We substitute a keyed hash:

    sign(message, pair)   = SHA-256("sig" ‖ private ‖ message)
    verify(message, sig, public, registry) recomputes through the
    registered pair.

Why this preserves behaviour: the evaluation measures only sizes and
message counts; what the protocol *needs* from signatures is (a) a
256-bit field in the header (``f_s``) and (b) that a node which did not
author a header cannot produce a signature other nodes accept.  Both
hold here — verification looks the private key up through a trusted
:class:`~repro.crypto.keys.KeyRegistry`-backed oracle rather than doing
public-key math, which is sound inside a closed simulation where the
registry is ground truth.

See DESIGN.md §2 for the substitution record.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from repro.crypto.keys import KeyPair

#: Signature width in bits (the paper's f_s).
SIGNATURE_BITS = 256

# The verification oracle: public key -> private key.  Populated by
# sign()'s first use of a pair; models the fact that in a real scheme the
# public key alone suffices to verify.  Malicious simulation code never
# reads this table directly — it can only call verify().
_PRIVATE_BY_PUBLIC: Dict[bytes, bytes] = {}


def sign(message: bytes, pair: KeyPair) -> bytes:
    """Sign ``message`` with the pair's private key (32-byte tag)."""
    _PRIVATE_BY_PUBLIC[pair.public] = pair.private
    return hashlib.sha256(b"sig:" + pair.private + message).digest()


def verify(message: bytes, signature: bytes, public: bytes) -> bool:
    """Check ``signature`` over ``message`` against ``public``.

    Unknown public keys verify as ``False`` — the registry-of-record
    semantics from §IV-D (unregistered identities are rejected).
    """
    private = _PRIVATE_BY_PUBLIC.get(public)
    if private is None:
        return False
    expected = hashlib.sha256(b"sig:" + private + message).digest()
    return _constant_time_equal(expected, signature)


def _constant_time_equal(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0
