"""Experiment runners — one per paper figure (§VI).

Each module exposes a ``run_*`` function returning a plain dataclass of
series (no plotting dependencies) and a ``main``-style formatter that
prints the rows the paper plots.  The benchmark harness under
``benchmarks/`` calls these.

* :mod:`repro.experiments.fig7_storage` — Fig. 7(a)-(d): storage.
* :mod:`repro.experiments.fig8_comm` — Fig. 8(a)-(d): communication.
* :mod:`repro.experiments.fig9_consensus` — Fig. 9(a)-(d): consensus
  failure probability under malicious coalitions.
* :mod:`repro.experiments.headline` — the abstract's headline ratios.
"""

from repro.experiments.common import ExperimentScale
from repro.experiments.fig7_storage import Fig7Result, run_fig7
from repro.experiments.fig8_comm import Fig8Result, run_fig8
from repro.experiments.fig9_consensus import Fig9Result, run_fig9
from repro.experiments.headline import HeadlineResult, run_headline

__all__ = [
    "ExperimentScale",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "HeadlineResult",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_headline",
]
