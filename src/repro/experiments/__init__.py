"""Experiment runners — one per paper figure (§VI).

Each module exposes a ``run_*`` function returning a plain dataclass of
series (no plotting dependencies) and a ``main``-style formatter that
prints the rows the paper plots.  The benchmark harness under
``benchmarks/`` calls these.

* :mod:`repro.experiments.fig7_storage` — Fig. 7(a)-(d): storage.
* :mod:`repro.experiments.fig8_comm` — Fig. 8(a)-(d): communication.
* :mod:`repro.experiments.fig9_consensus` — Fig. 9(a)-(d): consensus
  failure probability under malicious coalitions.
* :mod:`repro.experiments.headline` — the abstract's headline ratios.
* :mod:`repro.experiments.sweeps` — γ and density sweeps beyond the
  figures.
* :mod:`repro.experiments.attack_compare` — the PoP audit scoreboard
  across the adversary roster.
* :mod:`repro.experiments.fault_resilience` — every ledger backend
  under escalating fault timelines (the ``fault-grid`` campaign).

Multi-run experiments accept an ``executor=`` (a
:class:`~repro.campaign.executor.CampaignExecutor`) to fan their cells
out across worker processes and memoise results — see
``docs/campaigns.md``.
"""

from repro.experiments.common import ExperimentScale

#: Lazy exports (PEP 562): the figure modules build their scenarios
#: through :mod:`repro.scenario`, which itself imports
#: :class:`ExperimentScale` from this package — importing them eagerly
#: here would close that loop into a cycle.
_LAZY = {
    "Fig7Result": "repro.experiments.fig7_storage",
    "run_fig7": "repro.experiments.fig7_storage",
    "run_fig7_panels": "repro.experiments.fig7_storage",
    "Fig8Result": "repro.experiments.fig8_comm",
    "run_fig8": "repro.experiments.fig8_comm",
    "Fig9Result": "repro.experiments.fig9_consensus",
    "run_fig9": "repro.experiments.fig9_consensus",
    "HeadlineResult": "repro.experiments.headline",
    "run_headline": "repro.experiments.headline",
    "AttackAuditPoint": "repro.experiments.attack_compare",
    "run_attack_comparison": "repro.experiments.attack_compare",
    "FaultGridResult": "repro.experiments.fault_resilience",
    "run_fault_resilience": "repro.experiments.fault_resilience",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "AttackAuditPoint",
    "ExperimentScale",
    "FaultGridResult",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "HeadlineResult",
    "run_attack_comparison",
    "run_fault_resilience",
    "run_fig7",
    "run_fig7_panels",
    "run_fig8",
    "run_fig9",
    "run_headline",
]
