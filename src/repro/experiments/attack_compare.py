"""Attack comparison: one PoP audit scoreboard across the adversary roster.

Each cell grows a scenario's DAG to its full workload, then runs a
batch of cold PoP audits of early honest blocks from a single
validator's viewpoint and reports the success rate, message cost, and
how many malicious encounters (timeouts + rejected forgeries) the
path-selection routed around.  Comparing the clean baseline with the
``attack-*`` presets — including the eclipse victim's own viewpoint,
which *should* fail — reproduces the §IV-D resilience story as one
table instead of three ad-hoc demos.

Every row is a campaign cell of kind ``attack-audit``, so the roster
fans out across workers and caches through a configured
:class:`~repro.campaign.executor.CampaignExecutor`; the ``attack-roster``
campaign preset exposes it on the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.campaign.cells import register_cell_kind
from repro.campaign.spec import CampaignSpec, CellSpec
from repro.scenario import ScenarioRunner, get_scenario

#: The default comparison roster: clean baseline plus every attack preset.
DEFAULT_ROSTER: Tuple[str, ...] = (
    "quickstart",
    "attack-majority",
    "attack-eclipse",
    "attack-sybil",
)


@dataclass
class AttackAuditPoint:
    """One scenario's audit scoreboard row."""

    scenario: str
    validator: int
    eclipsed: bool
    audits: int
    successes: int
    success_rate: float
    mean_messages: float
    malicious_encounters: int
    sybil_identities: int


@register_cell_kind("attack-audit")
def run_attack_audit_cell(cell: CellSpec) -> Dict[str, Any]:
    """Grow the scenario, audit early honest blocks from one validator."""
    spec = cell.scenario
    audits = int(cell.params.get("audits", 8))
    target_slots = int(cell.params.get("target_slots", 5))
    runner = ScenarioRunner(spec).build()
    runner.advance_to(spec.workload.slots)
    deployment, workload = runner.deployment, runner.workload
    behaviors = runner.behaviors

    eclipse_victims = {
        adversary.victim
        for adversary in spec.adversaries
        if adversary.kind == "eclipse"
    }
    validator_id = cell.params.get("validator")
    if validator_id is None:
        validator_id = min(
            node_id
            for node_id in deployment.node_ids
            if node_id not in behaviors and node_id not in eclipse_victims
        )
    validator_id = int(validator_id)

    # Audit blocks of honest, reachable origins: captured nodes' blocks
    # are not the point, and an eclipse victim's blocks are unverifiable
    # by construction (the origin is the PoP verifier and its PoP
    # traffic is dropped) — the victim-view cell covers that failure.
    targets = [
        block
        for slot in range(target_slots)
        for block in workload.blocks_by_slot.get(slot, [])
        if block.origin not in behaviors
        and block.origin != validator_id
        and block.origin not in eclipse_victims
    ][:audits]

    validator = deployment.node(validator_id)
    successes = 0
    messages = 0
    encounters = 0
    for target in targets:
        process = validator.verify_block(target.origin, target, fetch_body=False)
        deployment.sim.run()
        outcome = process.value
        successes += 1 if outcome.success else 0
        messages += outcome.message_total
        encounters += outcome.timeouts + outcome.invalid_replies
    return {
        "scenario": spec.name,
        "validator": validator_id,
        "eclipsed": validator_id in eclipse_victims,
        "audits": len(targets),
        "successes": successes,
        "success_rate": successes / len(targets) if targets else 0.0,
        "mean_messages": messages / len(targets) if targets else 0.0,
        "malicious_encounters": encounters,
        "sybil_identities": len(runner.sybil_identities),
    }


def attack_roster_cells(
    roster: Sequence[str] = DEFAULT_ROSTER,
    audits: int = 8,
    include_victim_view: bool = True,
) -> Tuple[CellSpec, ...]:
    """One ``attack-audit`` cell per roster entry.

    Eclipse scenarios contribute a second cell auditing from the
    victim itself when ``include_victim_view`` is set — the row whose
    expected success rate is zero.
    """
    cells: List[CellSpec] = []
    for name in roster:
        spec = get_scenario(name)
        cells.append(
            CellSpec(scenario=spec, kind="attack-audit", params={"audits": audits})
        )
        if include_victim_view:
            for adversary in spec.adversaries:
                if adversary.kind == "eclipse":
                    cells.append(
                        CellSpec(
                            scenario=spec,
                            kind="attack-audit",
                            params={"audits": audits, "validator": adversary.victim},
                        )
                    )
    return tuple(cells)


def run_attack_comparison(
    roster: Sequence[str] = DEFAULT_ROSTER,
    audits: int = 8,
    include_victim_view: bool = True,
    executor=None,
) -> List[AttackAuditPoint]:
    """Audit every roster scenario; returns one scoreboard row per cell."""
    from repro.campaign.executor import run_campaign

    campaign = CampaignSpec(
        name="attack-roster",
        cells=attack_roster_cells(roster, audits, include_victim_view),
    )
    return [
        AttackAuditPoint(
            scenario=str(payload["scenario"]),
            validator=int(payload["validator"]),
            eclipsed=bool(payload["eclipsed"]),
            audits=int(payload["audits"]),
            successes=int(payload["successes"]),
            success_rate=float(payload["success_rate"]),
            mean_messages=float(payload["mean_messages"]),
            malicious_encounters=int(payload["malicious_encounters"]),
            sybil_identities=int(payload["sybil_identities"]),
        )
        for payload in run_campaign(campaign, executor).payloads()
    ]


def comparison_table(points: Sequence[AttackAuditPoint]) -> str:
    """The scoreboard as an aligned text table."""
    from repro.metrics.reporting import format_table

    rows = []
    for point in points:
        label = point.scenario + (" (victim view)" if point.eclipsed else "")
        rows.append([
            label,
            str(point.audits),
            f"{point.success_rate:.2f}",
            f"{point.mean_messages:.1f}",
            str(point.malicious_encounters),
        ])
    return format_table(
        ["scenario", "audits", "success", "mean msgs", "routed around"], rows
    )
