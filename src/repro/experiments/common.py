"""Shared experiment configuration.

The paper's full workload (50 nodes, 200 slots, every node validating
every slot) takes minutes per panel in pure Python; the benchmark
harness therefore defaults to a reduced-but-same-shape scale and
honours the ``REPRO_FULL=1`` environment variable for full paper-scale
runs.  All results record the scale they were produced at.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for wall-clock time.

    Attributes
    ----------
    node_count:
        ``|V|`` (paper: 50).
    slots:
        Simulated slots (paper: 200).
    sample_slots:
        Slots at which series are sampled (paper plots every 25).
    validation:
        Whether the 2LDAG runs include generation-time PoP.
    probes_per_sample:
        Fig. 9: verification probes per sampled slot.
    seed:
        Master seed.
    """

    node_count: int = 50
    slots: int = 200
    sample_slots: List[int] = field(
        default_factory=lambda: [25, 50, 75, 100, 125, 150, 175, 200]
    )
    validation: bool = True
    probes_per_sample: int = 8
    seed: int = 0

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The §VI configuration."""
        return cls()

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """A fast scale with the same qualitative shape (CI-friendly)."""
        return cls(
            node_count=30,
            slots=80,
            sample_slots=[10, 20, 40, 60, 80],
            probes_per_sample=4,
        )

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """``REPRO_FULL=1`` selects paper scale; quick otherwise."""
        if os.environ.get("REPRO_FULL") == "1":
            return cls.paper()
        return cls.quick()
