"""Fault-resilience sweep: every ledger under escalating fault intensity.

The paper pitches the two-layer DAG on resilience under imperfect edge
conditions; this experiment measures it against the comparison
baselines.  A grid of ``backend × fault intensity × seed`` cells runs
the same small workload on 2LDAG, PBFT and IOTA while the fault engine
replays an intensity-mapped timeline — ``none`` (the control),
``crash`` (a mid-run crash + rejoin of the low node ids, the view-0
PBFT primary included) and ``stress`` (degraded links, crash, a
partition, full recovery).

Each grid point is a campaign cell of kind ``fault-grid-point``: the
whole run-and-measure recipe executes inside the cell, so points fan
out across workers and memoise in the result cache when the caller
passes a configured :class:`~repro.campaign.executor.CampaignExecutor`
(``python -m repro --workers 4 campaign run fault-grid``).  Without
one, points run serially in-process.

Reported per point: consensus progress (committed blocks / appended
transactions), final per-node storage, traffic, the PoP success rate
and mean consensus latency where the backend measures them, and the
canonical trace digest (the byte-identity witness the CI fault-grid
gate compares across worker counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.cells import register_cell_kind
from repro.campaign.spec import CampaignSpec, CellSpec
from repro.faults.presets import build_fault_preset
from repro.faults.spec import FaultScheduleSpec
from repro.metrics.reporting import format_table
from repro.scenario import (
    ProtocolSpec,
    ScenarioRunner,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

#: Intensity name -> fault preset name (``None`` = fault-free control).
INTENSITY_PRESETS: Dict[str, Optional[str]] = {
    "none": None,
    "crash": "mid-crash",
    "stress": "stress",
}

#: The grid's canonical axes.
DEFAULT_BACKENDS = ("2ldag", "pbft", "iota")
DEFAULT_INTENSITIES = tuple(INTENSITY_PRESETS)
DEFAULT_SEEDS = (0, 1)

_GRID_NODES = 10
_GRID_SLOTS = 10


def fault_schedule_for(
    intensity: str, node_count: int, slots: int
) -> Optional[FaultScheduleSpec]:
    """The timeline ``intensity`` names, scaled to the workload shape."""
    try:
        preset = INTENSITY_PRESETS[intensity]
    except KeyError:
        raise ValueError(
            f"unknown fault intensity {intensity!r}; "
            f"known: {', '.join(INTENSITY_PRESETS)}"
        )
    if preset is None:
        return None
    return build_fault_preset(preset, node_count, slots)


def _grid_sample_slots() -> tuple:
    """The union of every intensity's fault boundary slots.

    Declared as the sample axis of *every* grid cell so the runner
    chunks all intensities identically: the baseline backends settle
    after each driven chunk, so unequal boundary sets would hand
    faulted cells more drain time than their fault-free control and
    confound the progress ratios.
    """
    slots = set()
    for intensity in INTENSITY_PRESETS:
        schedule = fault_schedule_for(intensity, _GRID_NODES, _GRID_SLOTS)
        if schedule is not None:
            slots.update(schedule.boundary_slots)
    return tuple(sorted(slots | {_GRID_SLOTS}))


def fault_grid_scenario(backend: str, intensity: str, seed: int) -> ScenarioSpec:
    """One grid point's scenario: small, seeded, intensity-faulted.

    Generation-time PoP runs on the 2LDAG backend (so the grid measures
    consensus success and latency under faults); the baselines ignore
    ``validate`` and report consensus progress through their committed
    chain / tangle instead.
    """
    is_2ldag = backend == "2ldag"
    return ScenarioSpec(
        name=f"fault-grid[backend={backend},intensity={intensity},seed={seed}]",
        description=f"fault-resilience grid point ({intensity} faults)",
        backend=backend,
        protocol=ProtocolSpec(body_bits=160_000, gamma=3, reply_timeout=0.1),
        topology=TopologySpec(node_count=_GRID_NODES),
        workload=WorkloadSpec(
            slots=_GRID_SLOTS,
            generation_period=1,
            validate=is_2ldag,
            validation_min_age_slots=5 if is_2ldag else None,
            run_until_quiet=is_2ldag,
            sample_slots=_grid_sample_slots(),
            faults=fault_schedule_for(intensity, _GRID_NODES, _GRID_SLOTS),
        ),
        seed=seed,
    )


@register_cell_kind("fault-grid-point")
def run_fault_grid_cell(cell: CellSpec) -> Dict[str, Any]:
    """Run one grid point and measure its degradation metrics."""
    spec = cell.scenario
    runner = ScenarioRunner(spec)
    result = runner.run()
    latency = None
    if runner.workload is not None and runner.workload.validations:
        durations = [
            record.outcome.finished_at - record.outcome.started_at
            for record in runner.workload.validations
            if record.outcome is not None and record.outcome.success
        ]
        if durations:
            latency = sum(durations) / len(durations)
    return {
        "backend": spec.backend,
        "intensity": str(cell.params.get("intensity", "none")),
        "seed": spec.seed,
        "blocks": result.total_blocks,
        "storage_mb": result.storage_mb[-1],
        "traffic_mbit": result.traffic_mbit[-1],
        "validations": result.validations,
        # None, not the BackendMetrics default of 1.0, when the backend
        # ran no PoP validations — a baseline must not read as "perfect
        # consensus success" in the table.
        "success_rate": result.success_rate if result.validations else None,
        "mean_consensus_s": latency,
        "events": result.events,
        "trace_sha256": result.trace_sha256,
    }


def fault_grid_cells(
    backends: Sequence[str] = DEFAULT_BACKENDS,
    intensities: Sequence[str] = DEFAULT_INTENSITIES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> Tuple[CellSpec, ...]:
    """One ``fault-grid-point`` cell per backend × intensity × seed."""
    return tuple(
        CellSpec(
            scenario=fault_grid_scenario(backend, intensity, seed),
            kind="fault-grid-point",
            params={"intensity": intensity},
        )
        for backend in backends
        for intensity in intensities
        for seed in seeds
    )


@dataclass
class FaultGridPoint:
    """Seed-averaged measurements of one backend at one intensity."""

    backend: str
    intensity: str
    blocks: float
    storage_mb: float
    traffic_mbit: float
    #: PoP success rate; ``None`` on backends that run no validations.
    success_rate: Optional[float]
    mean_consensus_s: Optional[float]
    #: Consensus progress relative to the same backend's fault-free
    #: control (1.0 = no degradation; ``None`` when the sweep ran
    #: without a usable ``"none"`` control for this backend).
    progress_ratio: Optional[float]


@dataclass
class FaultGridResult:
    """The whole sweep, ready for tables and reports."""

    points: List[FaultGridPoint]

    def point(self, backend: str, intensity: str) -> FaultGridPoint:
        """The seed-averaged point for one grid coordinate."""
        for point in self.points:
            if point.backend == backend and point.intensity == intensity:
                return point
        raise KeyError(f"no grid point for {backend}/{intensity}")

    def to_table(self) -> str:
        """An aligned text table, one row per backend × intensity."""
        rows = []
        for point in self.points:
            rows.append([
                point.backend,
                point.intensity,
                f"{point.blocks:.1f}",
                "-" if point.progress_ratio is None
                else f"{point.progress_ratio:.3f}",
                f"{point.storage_mb:.2f}",
                f"{point.traffic_mbit:.3f}",
                "-" if point.success_rate is None
                else f"{point.success_rate:.3f}",
                "-" if point.mean_consensus_s is None
                else f"{point.mean_consensus_s:.4f}",
            ])
        return format_table(
            ["backend", "intensity", "blocks", "progress", "storage MB",
             "traffic Mbit", "pop success", "consensus s"],
            rows,
        )


def run_fault_resilience(
    backends: Sequence[str] = DEFAULT_BACKENDS,
    intensities: Sequence[str] = DEFAULT_INTENSITIES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    executor=None,
) -> FaultGridResult:
    """Run the grid and aggregate per-coordinate seed averages."""
    from repro.campaign.executor import run_campaign

    campaign = CampaignSpec(
        name="fault-resilience",
        cells=fault_grid_cells(backends, intensities, seeds),
    )
    payloads = list(run_campaign(campaign, executor).payloads())

    def mean(values: List[float]) -> float:
        return sum(values) / len(values)

    # Controls first (order-independent of the intensities argument): a
    # missing or zero-progress control yields progress_ratio=None, never
    # a silent "no degradation" 1.0.
    baseline_blocks: Dict[str, float] = {}
    for backend in backends:
        control_group = [
            p for p in payloads
            if p["backend"] == backend and p["intensity"] == "none"
        ]
        if control_group:
            baseline_blocks[backend] = mean(
                [float(p["blocks"]) for p in control_group]
            )

    points: List[FaultGridPoint] = []
    for backend in backends:
        for intensity in intensities:
            group = [
                p for p in payloads
                if p["backend"] == backend and p["intensity"] == intensity
            ]
            blocks = mean([float(p["blocks"]) for p in group])
            latencies = [
                float(p["mean_consensus_s"]) for p in group
                if p["mean_consensus_s"] is not None
            ]
            successes = [
                float(p["success_rate"]) for p in group
                if p["success_rate"] is not None
            ]
            control = baseline_blocks.get(backend)
            points.append(
                FaultGridPoint(
                    backend=backend,
                    intensity=intensity,
                    blocks=blocks,
                    storage_mb=mean([float(p["storage_mb"]) for p in group]),
                    traffic_mbit=mean([float(p["traffic_mbit"]) for p in group]),
                    success_rate=mean(successes) if successes else None,
                    mean_consensus_s=mean(latencies) if latencies else None,
                    progress_ratio=blocks / control if control else None,
                )
            )
    return FaultGridResult(points=points)
