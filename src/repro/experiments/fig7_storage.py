"""Fig. 7 — storage overhead.

Panels (a)-(c): average per-node storage (MB, log scale) versus time
slots for body sizes C ∈ {0.1, 0.5, 1} MB, comparing PBFT, IOTA and
2LDAG.  Panel (d): the CDF of per-node storage at the final slot for
C = 0.5 MB.

2LDAG is simulated live through the scenario pipeline
(:func:`repro.scenario.fig7_scenario` declares the workload, the
runner samples the storage series); the baselines use their validated
closed-form cost models (every node stores every block — see
:mod:`repro.baselines`).

Panels are campaign cells: :func:`run_fig7_panels` submits one
``scenario`` cell per body size, so passing a configured
:class:`~repro.campaign.executor.CampaignExecutor` runs the three
panels concurrently (and caches them); the default stays serial and
in-process.  The cost-model topology is rebuilt deterministically from
the spec's seed — named random streams guarantee it matches the
worker-side deployment exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

# Closed-form cost models only — live cluster/tangle objects are
# reached through repro.scenario.create_backend.
from repro.baselines.iota.costmodel import IotaCostModel  # repro: allow[backend-bypass]
from repro.baselines.pbft.costmodel import PbftCostModel  # repro: allow[backend-bypass]
from repro.campaign.cells import run_scenario_cells
from repro.experiments.common import ExperimentScale
from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.reporting import format_series_table
from repro.scenario import build_topology, fig7_scenario
from repro.sim.rng import RandomStreams


@dataclass
class Fig7Result:
    """Series for one Fig. 7 panel."""

    body_mb: float
    sample_slots: List[int]
    series_mb: Dict[str, List[float]]
    per_node_mb_final: List[float] = field(default_factory=list)
    scale: Optional[ExperimentScale] = None

    def cdf(self) -> EmpiricalCDF:
        """The Fig. 7(d) CDF over final per-node storage."""
        return EmpiricalCDF(self.per_node_mb_final)

    def to_table(self) -> str:
        """The rows the paper plots (storage in MB per sampled slot)."""
        return format_series_table("slots", self.sample_slots, self.series_mb)


def run_fig7_panels(
    bodies: Sequence[float],
    scale: Optional[ExperimentScale] = None,
    executor=None,
) -> Dict[float, Fig7Result]:
    """Produce one Fig. 7 panel per body size, as one campaign.

    Every node generates one block per slot (``C/r_i = 1``, the
    caption's workload); 2LDAG nodes additionally validate one old
    block per generation when ``scale.validation`` is set, which grows
    their header caches — the realistic storage figure.
    """
    if scale is None:
        scale = ExperimentScale.from_env()
    specs = [fig7_scenario(body_mb, scale) for body_mb in bodies]
    measured_results = run_scenario_cells(specs, executor, name="fig7")

    panels: Dict[float, Fig7Result] = {}
    for body_mb, spec, measured in zip(bodies, specs, measured_results):
        # The cell ran in a worker; rebuild the cost-model topology from
        # the spec's own named stream — identical draws by construction.
        topology = build_topology(spec.topology, RandomStreams(spec.seed))
        pbft = PbftCostModel(topology, spec.protocol.body_bits)
        iota = IotaCostModel(topology, spec.protocol.body_bits)
        panels[body_mb] = Fig7Result(
            body_mb=body_mb,
            sample_slots=list(scale.sample_slots),
            series_mb={
                "PBFT": pbft.storage_series_mb(scale.sample_slots),
                "IOTA": iota.storage_series_mb(scale.sample_slots),
                "2LDAG": list(measured.storage_mb),
            },
            per_node_mb_final=list(measured.per_node_storage_mb),
            scale=scale,
        )
    return panels


def run_fig7(
    body_mb: float,
    scale: Optional[ExperimentScale] = None,
    executor=None,
) -> Fig7Result:
    """Produce one Fig. 7 panel for body size ``body_mb``."""
    return run_fig7_panels([body_mb], scale, executor)[body_mb]


def run_fig7_all_panels(
    scale: Optional[ExperimentScale] = None,
    executor=None,
) -> Dict[str, Fig7Result]:
    """Panels (a)-(c): C = 0.1, 0.5, 1 MB; (d) reuses the 0.5 MB run."""
    panels = run_fig7_panels([0.1, 0.5, 1.0], scale, executor)
    return {"a": panels[0.1], "b": panels[0.5], "c": panels[1.0]}
