"""Fig. 7 — storage overhead.

Panels (a)-(c): average per-node storage (MB, log scale) versus time
slots for body sizes C ∈ {0.1, 0.5, 1} MB, comparing PBFT, IOTA and
2LDAG.  Panel (d): the CDF of per-node storage at the final slot for
C = 0.5 MB.

2LDAG is simulated live through the scenario pipeline
(:func:`repro.scenario.fig7_scenario` declares the workload, the
runner samples the storage series); the baselines use their validated
closed-form cost models (every node stores every block — see
:mod:`repro.baselines`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.iota.costmodel import IotaCostModel
from repro.baselines.pbft.costmodel import PbftCostModel
from repro.experiments.common import ExperimentScale
from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.reporting import format_series_table
from repro.scenario import ScenarioRunner, fig7_scenario


@dataclass
class Fig7Result:
    """Series for one Fig. 7 panel."""

    body_mb: float
    sample_slots: List[int]
    series_mb: Dict[str, List[float]]
    per_node_mb_final: List[float] = field(default_factory=list)
    scale: Optional[ExperimentScale] = None

    def cdf(self) -> EmpiricalCDF:
        """The Fig. 7(d) CDF over final per-node storage."""
        return EmpiricalCDF(self.per_node_mb_final)

    def to_table(self) -> str:
        """The rows the paper plots (storage in MB per sampled slot)."""
        return format_series_table("slots", self.sample_slots, self.series_mb)


def run_fig7(body_mb: float, scale: Optional[ExperimentScale] = None) -> Fig7Result:
    """Produce one Fig. 7 panel for body size ``body_mb``.

    Every node generates one block per slot (``C/r_i = 1``, the
    caption's workload); 2LDAG nodes additionally validate one old
    block per generation when ``scale.validation`` is set, which grows
    their header caches — the realistic storage figure.
    """
    if scale is None:
        scale = ExperimentScale.from_env()

    runner = ScenarioRunner(fig7_scenario(body_mb, scale))
    measured = runner.run()
    deployment = runner.deployment

    pbft = PbftCostModel(deployment.topology, deployment.config.body_bits)
    iota = IotaCostModel(deployment.topology, deployment.config.body_bits)

    return Fig7Result(
        body_mb=body_mb,
        sample_slots=list(scale.sample_slots),
        series_mb={
            "PBFT": pbft.storage_series_mb(scale.sample_slots),
            "IOTA": iota.storage_series_mb(scale.sample_slots),
            "2LDAG": list(measured.storage_mb),
        },
        per_node_mb_final=list(measured.per_node_storage_mb),
        scale=scale,
    )


def run_fig7_all_panels(
    scale: Optional[ExperimentScale] = None,
) -> Dict[str, Fig7Result]:
    """Panels (a)-(c): C = 0.1, 0.5, 1 MB; (d) reuses the 0.5 MB run."""
    if scale is None:
        scale = ExperimentScale.from_env()
    return {
        "a": run_fig7(0.1, scale),
        "b": run_fig7(0.5, scale),
        "c": run_fig7(1.0, scale),
    }
