"""Fig. 8 — communication overhead.

Panels: (a) overall per-node traffic (DAG construction + consensus) for
2LDAG at 33% and 49% malicious tolerance versus PBFT and IOTA; (b) DAG
construction only (digest pushes); (c) consensus only (PoP headers);
(d) the CDF of per-node total traffic at the final slot.

The 2LDAG runs are live scenario-pipeline simulations with
generation-time validation (header-only fetches, matching the paper's
header accounting); the baselines use their cost models.  "33%/49%
malicious" select the tolerance γ — consensus paths of ⌈0.33|V|⌉+1 and
⌈0.49|V|⌉+1 nodes — as in the paper's §VI-B;
:func:`repro.scenario.fig8_scenario` declares each run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

# Closed-form cost models only — live cluster/tangle objects are
# reached through repro.scenario.create_backend.
from repro.baselines.iota.costmodel import IotaCostModel  # repro: allow[backend-bypass]
from repro.baselines.pbft.costmodel import PbftCostModel  # repro: allow[backend-bypass]
from repro.campaign.cells import run_scenario_cells
from repro.experiments.common import ExperimentScale
from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.reporting import format_series_table
from repro.scenario import build_topology, fig8_scenario
from repro.sim.rng import RandomStreams


@dataclass
class Fig8Result:
    """All Fig. 8 series from one pair of 2LDAG runs plus cost models."""

    sample_slots: List[int]
    overall_mbit: Dict[str, List[float]]       # panel (a)
    dag_mbit: Dict[str, List[float]]           # panel (b)
    consensus_mbit: Dict[str, List[float]]     # panel (c)
    per_node_total_mb_final: Dict[str, List[float]] = field(default_factory=dict)
    scale: Optional[ExperimentScale] = None

    def cdf(self, label: str) -> EmpiricalCDF:
        """Panel (d): CDF over final per-node communication (MB)."""
        return EmpiricalCDF(self.per_node_total_mb_final[label])

    def to_table(self, panel: str = "a") -> str:
        """Text rows for a panel: 'a' overall, 'b' dag, 'c' consensus."""
        series = {"a": self.overall_mbit, "b": self.dag_mbit, "c": self.consensus_mbit}[panel]
        return format_series_table("slots", self.sample_slots, series)


def gamma_for_fraction(node_count: int, fraction: float) -> int:
    """The γ giving a consensus path of ⌈fraction·|V|⌉ + 1 nodes."""
    return max(1, math.ceil(node_count * fraction))


def run_fig8(
    scale: Optional[ExperimentScale] = None,
    executor=None,
) -> Fig8Result:
    """Produce all Fig. 8 series.

    The 33% and 49% tolerance runs are two campaign cells — they
    execute concurrently when ``executor`` has workers, serially
    in-process otherwise.
    """
    if scale is None:
        scale = ExperimentScale.from_env()

    label_33 = "2LDAG-33%"
    label_49 = "2LDAG-49%"
    spec_33 = fig8_scenario(0.33, scale)
    run33, run49 = run_scenario_cells(
        [spec_33, fig8_scenario(0.49, scale)], executor, name="fig8"
    )

    # Same named-stream rebuild the runner performs in the worker.
    topology = build_topology(spec_33.topology, RandomStreams(spec_33.seed))
    body_bits = spec_33.protocol.body_bits
    pbft = PbftCostModel(topology, body_bits)
    iota = IotaCostModel(topology, body_bits)

    return Fig8Result(
        sample_slots=list(scale.sample_slots),
        overall_mbit={
            "PBFT": pbft.comm_series_mbit(scale.sample_slots),
            "IOTA": iota.comm_series_mbit(scale.sample_slots),
            label_33: list(run33.traffic_mbit),
            label_49: list(run49.traffic_mbit),
        },
        dag_mbit={
            label_33: list(run33.traffic_dag_mbit),
            label_49: list(run49.traffic_dag_mbit),
        },
        consensus_mbit={
            label_33: list(run33.traffic_pop_mbit),
            label_49: list(run49.traffic_pop_mbit),
        },
        per_node_total_mb_final={
            label_33: list(run33.per_node_traffic_mb),
            label_49: list(run49.per_node_traffic_mb),
        },
        scale=scale,
    )
