"""Fig. 8 — communication overhead.

Panels: (a) overall per-node traffic (DAG construction + consensus) for
2LDAG at 33% and 49% malicious tolerance versus PBFT and IOTA; (b) DAG
construction only (digest pushes); (c) consensus only (PoP headers);
(d) the CDF of per-node total traffic at the final slot.

The 2LDAG runs are live simulations with generation-time validation
(header-only fetches, matching the paper's header accounting); the
baselines use their cost models.  "33%/49% malicious" select the
tolerance γ — consensus paths of ⌈0.33|V|⌉+1 and ⌈0.49|V|⌉+1 nodes —
as in the paper's §VI-B.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.baselines.iota.costmodel import IotaCostModel
from repro.baselines.pbft.costmodel import PbftCostModel
from repro.core.config import ProtocolConfig
from repro.core.protocol import CATEGORY_DAG, CATEGORY_POP, SlotSimulation, TwoLayerDagNetwork
from repro.experiments.common import ExperimentScale
from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.reporting import format_series_table
from repro.metrics.units import bits_to_mb, bits_to_mbit
from repro.net.topology import sequential_geometric_topology
from repro.sim.rng import RandomStreams


@dataclass
class Fig8Result:
    """All Fig. 8 series from one pair of 2LDAG runs plus cost models."""

    sample_slots: List[int]
    overall_mbit: Dict[str, List[float]]       # panel (a)
    dag_mbit: Dict[str, List[float]]           # panel (b)
    consensus_mbit: Dict[str, List[float]]     # panel (c)
    per_node_total_mb_final: Dict[str, List[float]] = field(default_factory=dict)
    scale: ExperimentScale = None

    def cdf(self, label: str) -> EmpiricalCDF:
        """Panel (d): CDF over final per-node communication (MB)."""
        return EmpiricalCDF(self.per_node_total_mb_final[label])

    def to_table(self, panel: str = "a") -> str:
        """Text rows for a panel: 'a' overall, 'b' dag, 'c' consensus."""
        series = {"a": self.overall_mbit, "b": self.dag_mbit, "c": self.consensus_mbit}[panel]
        return format_series_table("slots", self.sample_slots, series)


def gamma_for_fraction(node_count: int, fraction: float) -> int:
    """The γ giving a consensus path of ⌈fraction·|V|⌉ + 1 nodes."""
    return max(1, math.ceil(node_count * fraction))


def _run_2ldag_comm(
    gamma: int, scale: ExperimentScale, label: str
) -> Dict[str, object]:
    streams = RandomStreams(scale.seed)
    topology = sequential_geometric_topology(
        node_count=scale.node_count, streams=streams
    )
    config = ProtocolConfig.paper_defaults(gamma=gamma, body_mb=0.5)
    deployment = TwoLayerDagNetwork(config=config, topology=topology, seed=scale.seed)
    workload = SlotSimulation(deployment, generation_period=1, validate=True)

    nodes = deployment.node_ids
    overall: List[float] = []
    dag_only: List[float] = []
    pop_only: List[float] = []
    done = 0
    for sample in scale.sample_slots:
        workload.run(sample - done, start_slot=done)
        done = sample
        ledger = deployment.traffic
        overall.append(bits_to_mbit(ledger.mean_tx_bits(nodes)))
        dag_only.append(bits_to_mbit(ledger.mean_tx_bits(nodes, [CATEGORY_DAG])))
        pop_only.append(bits_to_mbit(ledger.mean_tx_bits(nodes, [CATEGORY_POP])))
    per_node_final = [
        bits_to_mb(deployment.traffic.total_bits(n)) for n in nodes
    ]
    return {
        "label": label,
        "overall": overall,
        "dag": dag_only,
        "pop": pop_only,
        "per_node_final": per_node_final,
        "deployment": deployment,
    }


def run_fig8(scale: ExperimentScale = None) -> Fig8Result:
    """Produce all Fig. 8 series."""
    if scale is None:
        scale = ExperimentScale.from_env()

    label_33 = "2LDAG-33%"
    label_49 = "2LDAG-49%"
    run33 = _run_2ldag_comm(gamma_for_fraction(scale.node_count, 0.33), scale, label_33)
    run49 = _run_2ldag_comm(gamma_for_fraction(scale.node_count, 0.49), scale, label_49)

    topology = run33["deployment"].topology
    body_bits = run33["deployment"].config.body_bits
    pbft = PbftCostModel(topology, body_bits)
    iota = IotaCostModel(topology, body_bits)

    return Fig8Result(
        sample_slots=list(scale.sample_slots),
        overall_mbit={
            "PBFT": pbft.comm_series_mbit(scale.sample_slots),
            "IOTA": iota.comm_series_mbit(scale.sample_slots),
            label_33: run33["overall"],
            label_49: run49["overall"],
        },
        dag_mbit={label_33: run33["dag"], label_49: run49["dag"]},
        consensus_mbit={label_33: run33["pop"], label_49: run49["pop"]},
        per_node_total_mb_final={
            label_33: run33["per_node_final"],
            label_49: run49["per_node_final"],
        },
        scale=scale,
    )
