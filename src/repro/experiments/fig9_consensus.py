"""Fig. 9 — time for consensus under malicious coalitions.

For tolerance γ ∈ {10, 15, 20, 24} and varying numbers of actually
malicious (PoP-silent) nodes, the experiment measures the *consensus
failure probability* of verifying a block generated in the first γ
slots, as the DAG ages: at each sampled slot, several PoP probes are
launched from random honest validators against random early honest
blocks; the failure fraction is the plotted probability.  Consensus is
"reached" at the first sampled slot where no probe fails.

Probes run *inside* the simulation (scheduled at their sample slot), so
they contend with ongoing block generation exactly like the paper's
generation-time validations do.

Workload per the paper: each node generates one block per one or two
slots (drawn per node), so micro-loops occur (§V, Fig. 6).

Each (γ, malicious-count) series is a campaign cell of kind
``fig9-series``: the grow-probe-grow-probe loop runs entirely inside
the cell, so a panel's malicious sweep fans out across workers (and
memoises) when the caller provides a configured
:class:`~repro.campaign.executor.CampaignExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.cells import register_cell_kind
from repro.campaign.spec import CampaignSpec, CellSpec
from repro.core.protocol import SlotSimulation, TwoLayerDagNetwork
from repro.experiments.common import ExperimentScale
from repro.metrics.reporting import format_series_table
from repro.scenario import ScenarioRunner, fig9_scenario


@dataclass
class Fig9Result:
    """Failure-probability series for one γ panel."""

    gamma: int
    malicious_counts: List[int]
    sample_slots: List[int]
    failure_probability: Dict[int, List[float]]  # malicious count -> series
    scale: Optional[ExperimentScale] = None

    def consensus_slot(self, malicious: int) -> Optional[int]:
        """First sampled slot with zero failures, or ``None``."""
        for slot, probability in zip(self.sample_slots, self.failure_probability[malicious]):
            if probability == 0.0:
                return slot
        return None

    def to_table(self) -> str:
        """Failure probability rows per sampled slot."""
        series = {
            f"{m} malicious": probs for m, probs in self.failure_probability.items()
        }
        return format_series_table("slots", self.sample_slots, series)


def _probe_batch(
    deployment: TwoLayerDagNetwork,
    workload: SlotSimulation,
    gamma: int,
    probes: int,
    rng,
) -> float:
    """Run a probe batch against the current DAG; return failure fraction.

    Probes are driven to completion synchronously (the workload driver
    tolerates the resulting clock advance), so every batch measures the
    DAG exactly as of its sample slot.
    """
    honest = deployment.honest_ids
    targets = [
        b
        for slot in range(0, gamma)
        for b in workload.blocks_by_slot.get(slot, [])
        if b.origin in set(honest)
    ]
    if not targets:
        return 1.0
    processes = []
    for _ in range(probes):
        target = rng.choice(targets)
        validator_id = rng.choice([n for n in honest if n != target.origin])
        node = deployment.node(validator_id)
        processes.append(node.verify_block(target.origin, target, fetch_body=False))
    deployment.sim.run()  # drain the probes (no future slots are queued)
    failures = sum(
        1 for p in processes if not p.triggered or not p.value.success
    )
    return failures / probes


@register_cell_kind("fig9-series")
def run_fig9_series_cell(cell: CellSpec) -> Dict[str, Any]:
    """One malicious-count series: grow the DAG, probe at each sample.

    The probe RNG comes from the cell scenario's own ``probes`` stream,
    so the series is identical whether this runs inline or in a worker.
    """
    spec = cell.scenario
    gamma = int(cell.params["gamma"])
    probes = int(cell.params["probes"])
    sample_slots = [int(slot) for slot in cell.params["sample_slots"]]
    runner = ScenarioRunner(spec).build()
    probe_rng = runner.streams.get("probes")
    series: List[float] = []
    for sample in sample_slots:
        runner.advance_to(sample)
        series.append(
            _probe_batch(runner.deployment, runner.workload, gamma, probes, probe_rng)
        )
    return {
        "malicious": cell.params["malicious"],
        "sample_slots": sample_slots,
        "failure_probability": series,
    }


def fig9_cells(
    gamma: int,
    malicious_counts: Sequence[int],
    sample_slots: Sequence[int],
    scale: ExperimentScale,
) -> Tuple[CellSpec, ...]:
    """One ``fig9-series`` cell per malicious count."""
    sample_slots = sorted(int(slot) for slot in sample_slots)
    return tuple(
        CellSpec(
            scenario=fig9_scenario(
                gamma=gamma, malicious=malicious, slots=sample_slots[-1], scale=scale
            ),
            kind="fig9-series",
            params={
                "gamma": gamma,
                "malicious": malicious,
                "probes": scale.probes_per_sample,
                "sample_slots": list(sample_slots),
            },
        )
        for malicious in malicious_counts
    )


def run_fig9(
    gamma: int,
    malicious_counts: List[int],
    sample_slots: Optional[List[int]] = None,
    scale: Optional[ExperimentScale] = None,
    executor=None,
) -> Fig9Result:
    """Produce one Fig. 9 panel.

    Parameters
    ----------
    gamma:
        Malicious tolerance; quorum is γ+1 distinct path nodes.
    malicious_counts:
        Numbers of PoP-silent nodes to sweep (paper: up to γ).
    sample_slots:
        Slots at which failure probability is measured; defaults to a
        range bracketing the expected consensus time (γ .. ~5γ).
    executor:
        Optional campaign executor; the malicious-count series run
        concurrently (and cache) through it.
    """
    from repro.campaign.executor import run_campaign

    if scale is None:
        scale = ExperimentScale.from_env()
    if sample_slots is None:
        step = max(2, gamma // 2)
        sample_slots = sorted({gamma + k * step for k in range(0, 9)})
    sample_slots = sorted(sample_slots)

    campaign = CampaignSpec(
        name=f"fig9-g{gamma}",
        cells=fig9_cells(gamma, malicious_counts, sample_slots, scale),
    )
    failure: Dict[int, List[float]] = {}
    for payload in run_campaign(campaign, executor).payloads():
        failure[int(payload["malicious"])] = [
            float(point) for point in payload["failure_probability"]
        ]

    return Fig9Result(
        gamma=gamma,
        malicious_counts=list(malicious_counts),
        sample_slots=sample_slots,
        failure_probability=failure,
        scale=scale,
    )


#: The paper's four panels: γ and the malicious sweeps of Fig. 9(a)-(d).
PAPER_PANELS: Dict[str, Dict] = {
    "a": {"gamma": 10, "malicious_counts": [0, 5, 8, 10]},
    "b": {"gamma": 15, "malicious_counts": [0, 5, 10, 15]},
    "c": {"gamma": 20, "malicious_counts": [0, 5, 18, 20]},
    "d": {"gamma": 24, "malicious_counts": [0, 5, 10, 20, 22, 24]},
}
