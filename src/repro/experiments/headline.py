"""The abstract's headline claims, as a single reproducible report.

Claims: "2LDAG has storage and communication cost that is respectively
two and three orders of magnitude lower than traditional blockchain and
also blockchains that use a DAG structure" and "achieves consensus even
when 49% of nodes are malicious".

Two evidence layers back the ratios:

* **measured** — the three ledger backends (2LDAG, PBFT, IOTA) run the
  same comparison workload live through the scenario pipeline; the
  ratios at that gate scale come from fully simulated message traffic.
* **analytic** — the closed-form cost models extrapolate the baselines
  to the paper's 50-node × 200-slot scale, where simulating PBFT would
  mean ~10^7 routed control messages.

The measured runs double as a *sanity gate* on the analytic layer:
:func:`run_headline` asserts the simulated PBFT/IOTA storage and
traffic agree with the cost models within
:data:`MODEL_AGREEMENT_TOLERANCE`, so the two layers cannot silently
drift apart (e.g. a protocol tweak that the models no longer describe).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

# Closed-form cost models only — live cluster/tangle objects are
# reached through repro.scenario.create_backend.
from repro.baselines.iota.costmodel import IotaCostModel  # repro: allow[backend-bypass]
from repro.baselines.pbft.costmodel import PbftCostModel  # repro: allow[backend-bypass]
from repro.campaign.cells import run_scenario_cells
from repro.experiments.common import ExperimentScale
from repro.experiments.fig7_storage import run_fig7
from repro.experiments.fig8_comm import run_fig8
from repro.metrics.units import bits_to_mb
from repro.scenario import ScenarioSpec, build_topology, get_scenario
from repro.sim.rng import RandomStreams

#: Maximum relative deviation tolerated between a measured baseline
#: series and its closed-form cost model.  Storage is exact by
#: construction (every replica stores every block); traffic carries a
#: few percent of modelling slack (PBFT primary self-delivery, IOTA
#: flood edge effects), matching the tolerance the model-validation
#: tests use (``tests/baselines/test_costmodels.py``).
MODEL_AGREEMENT_TOLERANCE = 0.05


class HeadlineDriftError(AssertionError):
    """A measured baseline drifted from its closed-form cost model."""


@dataclass
class BaselineAgreement:
    """Measured-vs-model comparison for one baseline backend."""

    backend: str
    storage_measured_mb: float
    storage_model_mb: float
    traffic_measured_mbit: float
    traffic_model_mbit: float

    @staticmethod
    def _relative(measured: float, model: float) -> float:
        if model == 0:
            # A zero model prediction against a non-zero measurement is
            # infinite drift, not agreement — the gate must trip.
            return 0.0 if measured == 0 else math.inf
        return abs(measured - model) / model

    @property
    def storage_error(self) -> float:
        """Relative storage deviation (0 is perfect agreement)."""
        return self._relative(self.storage_measured_mb, self.storage_model_mb)

    @property
    def traffic_error(self) -> float:
        """Relative traffic deviation (0 is perfect agreement)."""
        return self._relative(self.traffic_measured_mbit, self.traffic_model_mbit)

    @property
    def within(self) -> bool:
        """Both deviations inside :data:`MODEL_AGREEMENT_TOLERANCE`."""
        return (
            self.storage_error <= MODEL_AGREEMENT_TOLERANCE
            and self.traffic_error <= MODEL_AGREEMENT_TOLERANCE
        )


def gate_scenario(backend: str) -> ScenarioSpec:
    """The measured cross-backend workload the sanity gate runs.

    The ``ledger-comparison`` preset on the named backend: small enough
    that fully simulating PBFT/IOTA is cheap, identical topology/seed
    across backends by the named-stream construction.
    """
    return get_scenario("ledger-comparison").with_backend(backend)


def check_model_agreement(executor=None) -> List[BaselineAgreement]:
    """Run the measured PBFT/IOTA gate and compare against the models.

    Raises :class:`HeadlineDriftError` when a measured series deviates
    from its closed-form model by more than
    :data:`MODEL_AGREEMENT_TOLERANCE`.

    The gate always *measures*: a caching ``executor`` is replaced by a
    cache-free one (same worker count), because a stale cached cell
    recorded before a baseline-simulation change would satisfy exactly
    the drift this gate exists to catch.
    """
    if executor is not None and getattr(executor, "cache", None) is not None:
        from repro.campaign.executor import CampaignExecutor

        executor = CampaignExecutor(workers=executor.workers, use_cache=False)
    specs = [gate_scenario("pbft"), gate_scenario("iota")]
    results = run_scenario_cells(specs, executor, name="headline-gate")

    agreements: List[BaselineAgreement] = []
    for spec, result in zip(specs, results):
        topology = build_topology(spec.topology, RandomStreams(spec.seed))
        model_cls = PbftCostModel if spec.backend == "pbft" else IotaCostModel
        model = model_cls(topology, spec.protocol.body_bits)
        slots = spec.workload.slots
        agreement = BaselineAgreement(
            backend=spec.backend,
            storage_measured_mb=result.storage_mb[-1],
            storage_model_mb=bits_to_mb(model.storage_bits_per_node(slots)),
            traffic_measured_mbit=result.traffic_mbit[-1],
            traffic_model_mbit=model.mean_tx_bits_per_node(slots) / 1e6,
        )
        if not agreement.within:
            raise HeadlineDriftError(
                f"measured {spec.backend} baseline drifted from its cost "
                f"model beyond {MODEL_AGREEMENT_TOLERANCE:.0%}: storage "
                f"{agreement.storage_measured_mb:.4f} vs "
                f"{agreement.storage_model_mb:.4f} MB "
                f"({agreement.storage_error:.1%}), traffic "
                f"{agreement.traffic_measured_mbit:.4f} vs "
                f"{agreement.traffic_model_mbit:.4f} Mbit "
                f"({agreement.traffic_error:.1%})"
            )
        agreements.append(agreement)
    return agreements


@dataclass
class HeadlineResult:
    """Measured ratios against the baselines at the final sampled slot."""

    storage_ratio_pbft: float
    storage_ratio_iota: float
    comm_ratio_pbft: float
    comm_ratio_iota: float
    scale: ExperimentScale
    agreements: List[BaselineAgreement] = field(default_factory=list)

    @property
    def storage_orders_pbft(self) -> float:
        """log10 of the PBFT/2LDAG storage ratio (paper claims ~2)."""
        return math.log10(self.storage_ratio_pbft)

    @property
    def comm_orders_pbft(self) -> float:
        """log10 of the PBFT/2LDAG communication ratio (paper claims ~3)."""
        return math.log10(self.comm_ratio_pbft)

    @property
    def agreement_by_backend(self) -> Dict[str, BaselineAgreement]:
        """The gate outcomes keyed by backend name."""
        return {a.backend: a for a in self.agreements}

    def summary(self) -> str:
        """Human-readable report."""
        lines = [
            f"storage: PBFT/2LDAG = {self.storage_ratio_pbft:.0f}x "
            f"({self.storage_orders_pbft:.1f} orders), "
            f"IOTA/2LDAG = {self.storage_ratio_iota:.0f}x",
            f"communication: PBFT/2LDAG = {self.comm_ratio_pbft:.0f}x "
            f"({self.comm_orders_pbft:.1f} orders), "
            f"IOTA/2LDAG = {self.comm_ratio_iota:.0f}x",
        ]
        for agreement in self.agreements:
            lines.append(
                f"model gate [{agreement.backend}]: storage "
                f"{agreement.storage_error:.1%}, traffic "
                f"{agreement.traffic_error:.1%} from the cost model "
                f"(tolerance {MODEL_AGREEMENT_TOLERANCE:.0%})"
            )
        return "\n".join(lines)


def run_headline(
    scale: Optional[ExperimentScale] = None,
    executor=None,
) -> HeadlineResult:
    """Derive the headline ratios from the Fig. 7/8 runs (C = 0.5 MB).

    The analytic baseline series are admitted only after the measured
    cross-backend gate passes (see :func:`check_model_agreement`); a
    drift raises :class:`HeadlineDriftError` instead of reporting
    ratios built on a stale model.
    """
    if scale is None:
        scale = ExperimentScale.from_env()
    agreements = check_model_agreement(executor)
    fig7 = run_fig7(0.5, scale, executor=executor)
    fig8 = run_fig8(scale, executor=executor)

    final = -1
    ldag_storage = fig7.series_mb["2LDAG"][final]
    ldag_comm = fig8.overall_mbit["2LDAG-33%"][final]
    return HeadlineResult(
        storage_ratio_pbft=fig7.series_mb["PBFT"][final] / ldag_storage,
        storage_ratio_iota=fig7.series_mb["IOTA"][final] / ldag_storage,
        comm_ratio_pbft=fig8.overall_mbit["PBFT"][final] / ldag_comm,
        comm_ratio_iota=fig8.overall_mbit["IOTA"][final] / ldag_comm,
        scale=scale,
        agreements=agreements,
    )
