"""The abstract's headline claims, as a single reproducible report.

Claims: "2LDAG has storage and communication cost that is respectively
two and three orders of magnitude lower than traditional blockchain and
also blockchains that use a DAG structure" and "achieves consensus even
when 49% of nodes are malicious".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.experiments.common import ExperimentScale
from repro.experiments.fig7_storage import run_fig7
from repro.experiments.fig8_comm import run_fig8


@dataclass
class HeadlineResult:
    """Measured ratios against the baselines at the final sampled slot."""

    storage_ratio_pbft: float
    storage_ratio_iota: float
    comm_ratio_pbft: float
    comm_ratio_iota: float
    scale: ExperimentScale

    @property
    def storage_orders_pbft(self) -> float:
        """log10 of the PBFT/2LDAG storage ratio (paper claims ~2)."""
        return math.log10(self.storage_ratio_pbft)

    @property
    def comm_orders_pbft(self) -> float:
        """log10 of the PBFT/2LDAG communication ratio (paper claims ~3)."""
        return math.log10(self.comm_ratio_pbft)

    def summary(self) -> str:
        """Human-readable report."""
        return (
            f"storage: PBFT/2LDAG = {self.storage_ratio_pbft:.0f}x "
            f"({self.storage_orders_pbft:.1f} orders), "
            f"IOTA/2LDAG = {self.storage_ratio_iota:.0f}x\n"
            f"communication: PBFT/2LDAG = {self.comm_ratio_pbft:.0f}x "
            f"({self.comm_orders_pbft:.1f} orders), "
            f"IOTA/2LDAG = {self.comm_ratio_iota:.0f}x"
        )


def run_headline(scale: Optional[ExperimentScale] = None) -> HeadlineResult:
    """Derive the headline ratios from the Fig. 7/8 runs (C = 0.5 MB)."""
    if scale is None:
        scale = ExperimentScale.from_env()
    fig7 = run_fig7(0.5, scale)
    fig8 = run_fig8(scale)

    final = -1
    ldag_storage = fig7.series_mb["2LDAG"][final]
    ldag_comm = fig8.overall_mbit["2LDAG-33%"][final]
    return HeadlineResult(
        storage_ratio_pbft=fig7.series_mb["PBFT"][final] / ldag_storage,
        storage_ratio_iota=fig7.series_mb["IOTA"][final] / ldag_storage,
        comm_ratio_pbft=fig8.overall_mbit["PBFT"][final] / ldag_comm,
        comm_ratio_iota=fig8.overall_mbit["IOTA"][final] / ldag_comm,
        scale=scale,
    )
