"""JSON persistence of experiment results.

Reproduction results need to be diffable across commits: CI stores the
series from each run and compares against a committed baseline, so a
regression in protocol cost or consensus behaviour shows up as a
numeric diff, not a silent drift.  Dataclass results are serialized to
a stable JSON layout; loading restores plain dictionaries (not the
dataclasses), which is what comparison needs.

All writes go through :func:`atomic_write_text` (same-directory temp
file + ``os.replace``) so a killed process — a campaign worker, an
interrupted CI job — can never leave a truncated or half-written JSON
file behind: readers observe either the old content or the new one.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

#: Format marker so future layout changes can be migrated.
FORMAT_VERSION = 1


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically.

    The content lands in a temporary file in the same directory (so the
    final rename never crosses a filesystem boundary) and is moved into
    place with ``os.replace``, which is atomic on POSIX and Windows.
    The temp file is fsynced before the rename, so after a crash the
    destination holds either the previous content or the new content —
    never a prefix of it.
    """
    target = Path(path)
    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=str(target.parent),
        prefix=f".{target.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
            # NamedTemporaryFile creates 0600; give the artifact the
            # umask-derived permissions a plain open() would have.
            if hasattr(os, "fchmod"):
                umask = os.umask(0)
                os.umask(umask)
                os.fchmod(handle.fileno(), 0o666 & ~umask)
        os.replace(handle.name, target)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def _jsonable(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot serialize {type(value).__name__} into a result file")


def save_results(path: Union[str, Path], name: str, results: Any) -> None:
    """Write experiment ``results`` (dataclass/dict/list tree) to JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "name": name,
        "results": _jsonable(results),
    }
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))


def load_results(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a result file; raises ``ValueError`` on unknown formats."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported result format {version!r}")
    return payload


def compare_series(
    baseline: List[float],
    measured: List[float],
    rel_tolerance: float = 0.25,
) -> Optional[str]:
    """Compare two series pointwise; ``None`` means within tolerance.

    Returns a human-readable description of the first deviation
    otherwise.  Tolerances are generous by default: simulation series
    vary with seeds; CI baselines catch order-of-magnitude drift, not
    noise.
    """
    if len(baseline) != len(measured):
        return f"length changed: {len(baseline)} -> {len(measured)}"
    for i, (expected, actual) in enumerate(zip(baseline, measured)):
        if expected == 0:
            if abs(actual) > rel_tolerance:
                return f"point {i}: expected 0, measured {actual}"
            continue
        drift = abs(actual - expected) / abs(expected)
        if drift > rel_tolerance:
            return (
                f"point {i}: {expected} -> {actual} "
                f"({drift * 100:.0f}% drift > {rel_tolerance * 100:.0f}%)"
            )
    return None
