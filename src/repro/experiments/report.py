"""One-shot reproduction report.

Gathers every experiment (Figs. 7-9, headline ratios) at a chosen
scale and renders a single markdown document with text tables and
ASCII charts — the artifact a reviewer reads next to EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.common import ExperimentScale
from repro.experiments.fig7_storage import Fig7Result, run_fig7_panels
from repro.experiments.fig8_comm import Fig8Result, run_fig8
from repro.experiments.fig9_consensus import PAPER_PANELS, Fig9Result, run_fig9
from repro.experiments.headline import HeadlineResult, run_headline
from repro.metrics.charts import render_chart


@dataclass
class ReproductionReport:
    """All experiment results at one scale."""

    scale: ExperimentScale
    fig7: Dict[float, Fig7Result]
    fig8: Fig8Result
    fig9: Dict[str, Fig9Result]
    headline: HeadlineResult

    def to_markdown(self) -> str:
        """Render the full report."""
        sections: List[str] = [
            "# 2LDAG reproduction report",
            "",
            f"Scale: {self.scale.node_count} nodes, {self.scale.slots} slots, "
            f"seed {self.scale.seed}.",
            "",
            "## Headline claims",
            "",
            "```",
            self.headline.summary(),
            "```",
        ]
        for body_mb, result in sorted(self.fig7.items()):
            sections += [
                "",
                f"## Fig. 7 — storage, C = {body_mb} MB",
                "",
                "```",
                result.to_table(),
                "",
                render_chart(
                    result.sample_slots, result.series_mb,
                    log_y=True, y_label="per-node storage (MB)",
                ),
                "```",
            ]
        sections += [
            "",
            "## Fig. 8 — communication",
            "",
            "```",
            self.fig8.to_table("a"),
            "",
            render_chart(
                self.fig8.sample_slots, self.fig8.overall_mbit,
                log_y=True, y_label="per-node traffic (Mbit)",
            ),
            "```",
        ]
        for panel, result in sorted(self.fig9.items()):
            consensus = {
                m: result.consensus_slot(m) for m in result.malicious_counts
            }
            sections += [
                "",
                f"## Fig. 9({panel}) — consensus time, gamma = {result.gamma}",
                "",
                "```",
                result.to_table(),
                "```",
                "",
                f"Consensus slots: {consensus}",
            ]
        return "\n".join(sections) + "\n"


def generate_report(
    scale: Optional[ExperimentScale] = None,
    fig7_bodies: Optional[List[float]] = None,
    fig9_panels: Optional[List[str]] = None,
    executor=None,
) -> ReproductionReport:
    """Run every experiment and assemble the report.

    ``fig7_bodies`` / ``fig9_panels`` trim the sweep for faster runs
    (defaults: all three C values, all four γ panels).  ``executor``
    (a :class:`~repro.campaign.executor.CampaignExecutor`) parallelizes
    each experiment's cells.
    """
    if scale is None:
        scale = ExperimentScale.from_env()
    if fig7_bodies is None:
        fig7_bodies = [0.1, 0.5, 1.0]
    if fig9_panels is None:
        fig9_panels = list(PAPER_PANELS)

    fig7 = run_fig7_panels(fig7_bodies, scale, executor)
    fig8 = run_fig8(scale, executor)
    fig9: Dict[str, Fig9Result] = {}
    for panel in fig9_panels:
        spec = PAPER_PANELS[panel]
        gamma = max(2, round(spec["gamma"] * scale.node_count / 50))
        malicious = sorted({
            round(m * scale.node_count / 50) for m in spec["malicious_counts"]
        })
        malicious = [m for m in malicious if m <= gamma]
        fig9[panel] = run_fig9(gamma, malicious, scale=scale, executor=executor)
    headline = run_headline(scale)
    return ReproductionReport(
        scale=scale, fig7=fig7, fig8=fig8, fig9=fig9, headline=headline
    )
