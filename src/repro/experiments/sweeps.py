"""Parameter sweeps beyond the paper's figures.

Two sweeps that probe the design space the paper's analysis (§V) maps
out but does not plot:

* :func:`gamma_sweep` — PoP message cost versus the tolerance γ.
  Proposition 4 lower-bounds it at ``2(γ+1)``; Proposition 6
  upper-bounds it; the sweep shows where reality falls.
* :func:`density_sweep` — communication cost versus radio range.
  Denser networks mean more digests per block (bigger Δ) but shorter
  PoP paths; the sweep exposes the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.bounds import prop4_message_lower_bound, prop6_message_upper_bound
from repro.scenario import (
    ProtocolSpec,
    ScenarioRunner,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)


@dataclass
class GammaSweepPoint:
    """Measured PoP cost at one γ."""

    gamma: int
    mean_messages: float
    prop4_lower: int
    prop6_upper: float
    success_rate: float


def _run_cold_validations(deployment, workload, count: int, rng) -> List:
    """Cold-cache verifications of old blocks from distinct validators."""
    outcomes = []
    targets = [b for s in range(4) for b in workload.blocks_by_slot[s]]
    validators = deployment.node_ids
    for i in range(count):
        target = targets[i % len(targets)]
        validator_id = rng.choice([n for n in validators if n != target.origin])
        node = deployment.node(validator_id)
        process = deployment.sim.process(
            node.validator(use_tps=False).run(target.origin, target, fetch_body=False)
        )
        deployment.sim.run()
        outcomes.append(process.value)
    return outcomes


def gamma_sweep(
    gammas: Sequence[int],
    node_count: int = 20,
    slots: int = 30,
    validations: int = 8,
    seed: int = 0,
) -> List[GammaSweepPoint]:
    """Measure cold-cache PoP message cost across tolerances."""
    points = []
    for gamma in gammas:
        # §V's analysis assumes slot-synchronous generation (every
        # neighbour embeds the previous slot's digest); zero jitter
        # matches that model so Props. 4/6 bracket the measurements.
        spec = ScenarioSpec(
            name=f"gamma-sweep-{gamma}",
            protocol=ProtocolSpec(body_bits=80_000, gamma=gamma, reply_timeout=0.05),
            topology=TopologySpec(node_count=node_count),
            workload=WorkloadSpec(
                slots=slots, generation_period=1, intra_slot_jitter=0.0
            ),
            seed=seed + gamma,
        )
        runner = ScenarioRunner(spec).advance_to(slots)
        deployment, workload = runner.deployment, runner.workload
        outcomes = _run_cold_validations(
            deployment, workload, validations, runner.streams.get("sweep")
        )
        successes = [o for o in outcomes if o.success]
        mean_messages = (
            sum(o.message_total for o in successes) / len(successes)
            if successes
            else float("nan")
        )
        rates = sorted((1.0 for _ in range(node_count)), reverse=True)
        points.append(
            GammaSweepPoint(
                gamma=gamma,
                mean_messages=mean_messages,
                prop4_lower=prop4_message_lower_bound(gamma),
                prop6_upper=prop6_message_upper_bound(rates, gamma, node_count),
                success_rate=len(successes) / len(outcomes) if outcomes else 0.0,
            )
        )
    return points


@dataclass
class DensitySweepPoint:
    """Measured costs at one radio range."""

    comm_range: float
    mean_degree: float
    digest_bits_per_slot: float
    mean_pop_messages: float
    success_rate: float


def density_sweep(
    comm_ranges: Sequence[float],
    node_count: int = 20,
    slots: int = 25,
    validations: int = 6,
    gamma: int = 5,
    seed: int = 0,
) -> List[DensitySweepPoint]:
    """Measure digest overhead vs PoP cost across network densities."""
    points = []
    for comm_range in comm_ranges:
        spec = ScenarioSpec(
            name=f"density-sweep-{comm_range}",
            protocol=ProtocolSpec(body_bits=80_000, gamma=gamma, reply_timeout=0.05),
            topology=TopologySpec(
                node_count=node_count, area_side=400.0, comm_range=comm_range
            ),
            workload=WorkloadSpec(slots=slots, generation_period=1),
            seed=seed,
        )
        runner = ScenarioRunner(spec).advance_to(slots)
        deployment, workload = runner.deployment, runner.workload
        outcomes = _run_cold_validations(
            deployment, workload, validations, runner.streams.get("sweep")
        )
        successes = [o for o in outcomes if o.success]
        nodes = deployment.node_ids
        topology = deployment.topology
        digest_bits = deployment.traffic.mean_tx_bits(nodes, ["dag"]) / slots
        points.append(
            DensitySweepPoint(
                comm_range=comm_range,
                mean_degree=sum(topology.degree(n) for n in nodes) / len(nodes),
                digest_bits_per_slot=digest_bits,
                mean_pop_messages=(
                    sum(o.message_total for o in successes) / len(successes)
                    if successes
                    else float("nan")
                ),
                success_rate=len(successes) / len(outcomes) if outcomes else 0.0,
            )
        )
    return points
