"""Parameter sweeps beyond the paper's figures.

Two sweeps that probe the design space the paper's analysis (§V) maps
out but does not plot:

* :func:`gamma_sweep` — PoP message cost versus the tolerance γ.
  Proposition 4 lower-bounds it at ``2(γ+1)``; Proposition 6
  upper-bounds it; the sweep shows where reality falls.
* :func:`density_sweep` — communication cost versus radio range.
  Denser networks mean more digests per block (bigger Δ) but shorter
  PoP paths; the sweep exposes the trade-off.

Each sweep point is a campaign cell (kinds ``gamma-sweep-point`` /
``density-sweep-point``): the whole run-then-probe recipe executes
inside the cell, so points fan out across workers and memoise in the
result cache when the caller passes a configured
:class:`~repro.campaign.executor.CampaignExecutor`.  Without one, the
points run serially in-process exactly as they always have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.analysis.bounds import prop4_message_lower_bound, prop6_message_upper_bound
from repro.campaign.cells import register_cell_kind
from repro.campaign.spec import CampaignSpec, CellSpec
from repro.scenario import (
    ProtocolSpec,
    ScenarioRunner,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)


@dataclass
class GammaSweepPoint:
    """Measured PoP cost at one γ."""

    gamma: int
    mean_messages: float
    prop4_lower: int
    prop6_upper: float
    success_rate: float


def _run_cold_validations(deployment, workload, count: int, rng) -> List:
    """Cold-cache verifications of old blocks from distinct validators."""
    outcomes = []
    targets = [b for s in range(4) for b in workload.blocks_by_slot[s]]
    validators = deployment.node_ids
    for i in range(count):
        target = targets[i % len(targets)]
        validator_id = rng.choice([n for n in validators if n != target.origin])
        node = deployment.node(validator_id)
        process = deployment.sim.process(
            node.validator(use_tps=False).run(target.origin, target, fetch_body=False)
        )
        deployment.sim.run()
        outcomes.append(process.value)
    return outcomes


def _gamma_sweep_spec(gamma: int, node_count: int, slots: int, seed: int) -> ScenarioSpec:
    # §V's analysis assumes slot-synchronous generation (every
    # neighbour embeds the previous slot's digest); zero jitter
    # matches that model so Props. 4/6 bracket the measurements.
    return ScenarioSpec(
        name=f"gamma-sweep-{gamma}",
        protocol=ProtocolSpec(body_bits=80_000, gamma=gamma, reply_timeout=0.05),
        topology=TopologySpec(node_count=node_count),
        workload=WorkloadSpec(
            slots=slots, generation_period=1, intra_slot_jitter=0.0
        ),
        seed=seed + gamma,
    )


@register_cell_kind("gamma-sweep-point")
def run_gamma_sweep_cell(cell: CellSpec) -> Dict[str, Any]:
    """Grow the DAG, run cold validations, report message costs."""
    spec = cell.scenario
    validations = int(cell.params.get("validations", 8))
    runner = ScenarioRunner(spec).advance_to(spec.workload.slots)
    deployment, workload = runner.deployment, runner.workload
    outcomes = _run_cold_validations(
        deployment, workload, validations, runner.streams.get("sweep")
    )
    successes = [o for o in outcomes if o.success]
    gamma = spec.protocol.gamma
    node_count = spec.node_count
    rates = sorted((1.0 for _ in range(node_count)), reverse=True)
    return {
        "gamma": gamma,
        "mean_messages": (
            sum(o.message_total for o in successes) / len(successes)
            if successes
            else None
        ),
        "prop4_lower": prop4_message_lower_bound(gamma),
        "prop6_upper": prop6_message_upper_bound(rates, gamma, node_count),
        "success_rate": len(successes) / len(outcomes) if outcomes else 0.0,
    }


def gamma_sweep_cells(
    gammas: Sequence[int],
    node_count: int = 20,
    slots: int = 30,
    validations: int = 8,
    seed: int = 0,
) -> Tuple[CellSpec, ...]:
    """One ``gamma-sweep-point`` cell per γ."""
    return tuple(
        CellSpec(
            scenario=_gamma_sweep_spec(gamma, node_count, slots, seed),
            kind="gamma-sweep-point",
            params={"validations": validations},
        )
        for gamma in gammas
    )


def gamma_sweep(
    gammas: Sequence[int],
    node_count: int = 20,
    slots: int = 30,
    validations: int = 8,
    seed: int = 0,
    executor=None,
) -> List[GammaSweepPoint]:
    """Measure cold-cache PoP message cost across tolerances."""
    from repro.campaign.executor import run_campaign

    campaign = CampaignSpec(
        name="gamma-sweep",
        cells=gamma_sweep_cells(gammas, node_count, slots, validations, seed),
    )
    points = []
    for payload in run_campaign(campaign, executor).payloads():
        mean_messages = payload["mean_messages"]
        points.append(
            GammaSweepPoint(
                gamma=int(payload["gamma"]),
                mean_messages=(
                    float("nan") if mean_messages is None else float(mean_messages)
                ),
                prop4_lower=int(payload["prop4_lower"]),
                prop6_upper=float(payload["prop6_upper"]),
                success_rate=float(payload["success_rate"]),
            )
        )
    return points


@dataclass
class DensitySweepPoint:
    """Measured costs at one radio range."""

    comm_range: float
    mean_degree: float
    digest_bits_per_slot: float
    mean_pop_messages: float
    success_rate: float


def _density_sweep_spec(
    comm_range: float, node_count: int, slots: int, gamma: int, seed: int
) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"density-sweep-{comm_range}",
        protocol=ProtocolSpec(body_bits=80_000, gamma=gamma, reply_timeout=0.05),
        topology=TopologySpec(
            node_count=node_count, area_side=400.0, comm_range=comm_range
        ),
        workload=WorkloadSpec(slots=slots, generation_period=1),
        seed=seed,
    )


@register_cell_kind("density-sweep-point")
def run_density_sweep_cell(cell: CellSpec) -> Dict[str, Any]:
    """Grow the DAG at one density, probe it, report the trade-off."""
    spec = cell.scenario
    validations = int(cell.params.get("validations", 6))
    slots = spec.workload.slots
    runner = ScenarioRunner(spec).advance_to(slots)
    deployment, workload = runner.deployment, runner.workload
    outcomes = _run_cold_validations(
        deployment, workload, validations, runner.streams.get("sweep")
    )
    successes = [o for o in outcomes if o.success]
    nodes = deployment.node_ids
    topology = deployment.topology
    return {
        "comm_range": spec.topology.comm_range,
        "mean_degree": sum(topology.degree(n) for n in nodes) / len(nodes),
        "digest_bits_per_slot": (
            deployment.traffic.mean_tx_bits(nodes, ["dag"]) / slots
        ),
        "mean_pop_messages": (
            sum(o.message_total for o in successes) / len(successes)
            if successes
            else None
        ),
        "success_rate": len(successes) / len(outcomes) if outcomes else 0.0,
    }


def density_sweep_cells(
    comm_ranges: Sequence[float],
    node_count: int = 20,
    slots: int = 25,
    validations: int = 6,
    gamma: int = 5,
    seed: int = 0,
) -> Tuple[CellSpec, ...]:
    """One ``density-sweep-point`` cell per radio range."""
    return tuple(
        CellSpec(
            scenario=_density_sweep_spec(comm_range, node_count, slots, gamma, seed),
            kind="density-sweep-point",
            params={"validations": validations},
        )
        for comm_range in comm_ranges
    )


def density_sweep(
    comm_ranges: Sequence[float],
    node_count: int = 20,
    slots: int = 25,
    validations: int = 6,
    gamma: int = 5,
    seed: int = 0,
    executor=None,
) -> List[DensitySweepPoint]:
    """Measure digest overhead vs PoP cost across network densities."""
    from repro.campaign.executor import run_campaign

    campaign = CampaignSpec(
        name="density-sweep",
        cells=density_sweep_cells(
            comm_ranges, node_count, slots, validations, gamma, seed
        ),
    )
    points = []
    for payload in run_campaign(campaign, executor).payloads():
        mean_pop = payload["mean_pop_messages"]
        points.append(
            DensitySweepPoint(
                comm_range=float(payload["comm_range"]),
                mean_degree=float(payload["mean_degree"]),
                digest_bits_per_slot=float(payload["digest_bits_per_slot"]),
                mean_pop_messages=(
                    float("nan") if mean_pop is None else float(mean_pop)
                ),
                success_rate=float(payload["success_rate"]),
            )
        )
    return points
