"""Declarative fault injection: timelines of typed fault events.

A :class:`FaultScheduleSpec` is an ordered timeline of
:class:`FaultEvent` entries — node crashes, rejoins, network
partitions, heals and link degradation — validated on construction and
round-tripping through JSON exactly like the rest of the spec tree.
The :class:`FaultEngine` applies due events at slot boundaries by
dispatching through the fault hooks every
:class:`~repro.scenario.backends.LedgerBackend` declares, so one
schedule runs identically on the paper's two-layer DAG, the PBFT
cluster (crashed replicas exercise view changes) and the IOTA tangle.

The legacy :class:`~repro.scenario.spec.ChurnSpec` is sugar over this
layer: it compiles to a two-event crash/rejoin schedule via
:meth:`FaultScheduleSpec.from_churn`, preserving its serialized form
(and therefore all existing spec JSON and campaign cell digests)
byte for byte.

Named schedule builders parameterized on the scenario's shape live in
:mod:`repro.faults.presets` (``mid-crash``, ``partition-heal``,
``lossy-links``, ``stress``) and back the CLI's ``--faults PRESET``
flag and the ``fault-grid`` campaign.

This layer injects faults into the *ledgers under test*;
:mod:`repro.campaign.chaos` applies the same philosophy — and the same
:func:`~repro.sim.rng.derive_seed` seeding idiom — to the measurement
harness itself, chaos-testing the campaign executor's retries,
timeouts and worker-crash recovery.
"""

from repro.faults.engine import FaultCapabilityError, FaultEngine
from repro.faults.presets import build_fault_preset, fault_preset_names
from repro.faults.spec import (
    FAULT_KINDS,
    HEAL,
    LINK_DEGRADE,
    NODE_CRASH,
    NODE_REJOIN,
    PARTITION,
    FaultError,
    FaultEvent,
    FaultScheduleSpec,
)

__all__ = [
    "FAULT_KINDS",
    "HEAL",
    "LINK_DEGRADE",
    "NODE_CRASH",
    "NODE_REJOIN",
    "PARTITION",
    "FaultCapabilityError",
    "FaultEngine",
    "FaultError",
    "FaultEvent",
    "FaultScheduleSpec",
    "build_fault_preset",
    "fault_preset_names",
]
