"""The fault engine: replay a schedule against a ledger backend.

:class:`FaultEngine` owns the timeline position; the
:class:`~repro.scenario.runner.ScenarioRunner` pauses at every
:attr:`~repro.faults.spec.FaultScheduleSpec.boundary_slots` entry and
calls :meth:`FaultEngine.apply_due`, which dispatches each due event
through the backend's ``apply_fault`` hook (see
:class:`~repro.scenario.backends.LedgerBackend`).  Events fire in
timeline order exactly once, *before* their slot is scheduled — the
same semantics the legacy churn path had, which is what makes
ChurnSpec → schedule compilation trace-identical.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.faults.spec import FaultError, FaultEvent, FaultScheduleSpec

#: Called after each applied event with (event, slot it fired before).
FaultObserver = Callable[[FaultEvent, int], None]


class FaultCapabilityError(FaultError):
    """A backend was asked to apply a fault kind it does not support.

    The message carries the backend's full capability roster so a user
    can immediately see what *would* work.
    """

    def __init__(self, backend: str, kind: str, capabilities: Sequence[str]) -> None:
        self.backend = backend
        self.kind = kind
        self.capabilities = tuple(capabilities)
        roster = ", ".join(self.capabilities) if self.capabilities else "none"
        super().__init__(
            f"the {backend} backend does not support fault kind {kind!r}; "
            f"its capabilities: {roster}"
        )


class FaultEngine:
    """Apply a :class:`FaultScheduleSpec` to a backend at slot boundaries.

    ``observer`` is an optional pure-observation callback fired *after*
    each event is applied (the telemetry layer's hook); it must not
    touch simulation state — the engine's behaviour is identical with
    or without one.
    """

    def __init__(
        self,
        schedule: FaultScheduleSpec,
        backend,
        observer: Optional[FaultObserver] = None,
    ) -> None:
        self.schedule = schedule
        self.backend = backend
        self.applied: List[FaultEvent] = []
        self._position = 0
        self._observer = observer

    @property
    def boundary_slots(self) -> Tuple[int, ...]:
        """Slots the runner must stop at so events fire on time."""
        return self.schedule.boundary_slots

    @property
    def pending(self) -> int:
        """Events not yet applied."""
        return len(self.schedule.events) - self._position

    def apply_due(self, slot: int) -> None:
        """Fire every not-yet-applied event whose slot is ``<= slot``.

        Called with the next slot about to be scheduled, so an event at
        slot ``s`` takes effect before any slot-``s`` work is enqueued.
        """
        events = self.schedule.events
        while self._position < len(events) and events[self._position].slot <= slot:
            event = events[self._position]
            self.backend.apply_fault(event)
            self.applied.append(event)
            self._position += 1
            if self._observer is not None:
                self._observer(event, slot)
