"""Named fault-schedule builders, parameterized on the scenario shape.

A fault preset cannot be a constant: which nodes crash and when depends
on how many nodes and slots the scenario has.  Each builder therefore
takes ``(node_count, slots)`` and returns a concrete
:class:`~repro.faults.spec.FaultScheduleSpec` scaled to that shape —
the CLI resolves ``--faults PRESET`` against the scenario it is about
to run, and the ``fault-grid`` campaign resolves intensities against
its cell scenarios.

Crashed nodes are always the *lowest* ids: on the PBFT backend node 0
is the view-0 primary, so every crash preset doubles as a view-change
stress test — exactly the scenario the ROADMAP's backend-layer item
asks for.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.faults.spec import (
    HEAL,
    LINK_DEGRADE,
    NODE_CRASH,
    NODE_REJOIN,
    PARTITION,
    FaultError,
    FaultEvent,
    FaultScheduleSpec,
)

#: name -> builder(node_count, slots) -> FaultScheduleSpec
_PRESETS: Dict[str, Callable[[int, int], FaultScheduleSpec]] = {}


def register_fault_preset(
    name: str,
) -> Callable[[Callable[[int, int], FaultScheduleSpec]], Callable[[int, int], FaultScheduleSpec]]:
    """Register the decorated ``(node_count, slots)`` builder under ``name``."""

    def decorate(builder: Callable[[int, int], FaultScheduleSpec]):
        if name in _PRESETS:
            raise ValueError(f"fault preset {name!r} is already registered")
        _PRESETS[name] = builder
        return builder

    return decorate


def fault_preset_names() -> List[str]:
    """All registered fault preset names, sorted."""
    return sorted(_PRESETS)


def build_fault_preset(name: str, node_count: int, slots: int) -> FaultScheduleSpec:
    """The preset schedule scaled to ``node_count`` nodes / ``slots`` slots."""
    builder = _PRESETS.get(name)
    if builder is None:
        raise FaultError(
            f"unknown fault preset {name!r}; known: {', '.join(fault_preset_names())}"
        )
    if node_count < 4:
        raise FaultError(
            f"fault presets need at least 4 nodes, got {node_count}"
        )
    if slots < 4:
        raise FaultError(f"fault presets need at least 4 slots, got {slots}")
    return builder(node_count, slots)


def _crash_set(node_count: int, fraction: int) -> Tuple[int, ...]:
    """The lowest ``max(1, node_count // fraction)`` node ids."""
    return tuple(range(max(1, node_count // fraction)))


@register_fault_preset("mid-crash")
def _mid_crash(node_count: int, slots: int) -> FaultScheduleSpec:
    """A quarter of the nodes crash a third in and rejoin at two thirds."""
    nodes = _crash_set(node_count, 4)
    return FaultScheduleSpec(
        events=(
            FaultEvent(kind=NODE_CRASH, slot=slots // 3, nodes=nodes),
            FaultEvent(kind=NODE_REJOIN, slot=(2 * slots) // 3, nodes=nodes),
        )
    )


@register_fault_preset("partition-heal")
def _partition_heal(node_count: int, slots: int) -> FaultScheduleSpec:
    """The low half splits from the rest mid-run, then the net heals."""
    half = tuple(range(node_count // 2))
    return FaultScheduleSpec(
        events=(
            FaultEvent(kind=PARTITION, slot=slots // 3, groups=(half,)),
            FaultEvent(kind=HEAL, slot=(2 * slots) // 3),
        )
    )


@register_fault_preset("lossy-links")
def _lossy_links(node_count: int, slots: int) -> FaultScheduleSpec:
    """Every link drops 5% of frames and slows down for the middle half."""
    return FaultScheduleSpec(
        events=(
            FaultEvent(
                kind=LINK_DEGRADE, slot=slots // 4, loss=0.05, extra_latency=0.002
            ),
            FaultEvent(kind=LINK_DEGRADE, slot=(3 * slots) // 4),
        )
    )


@register_fault_preset("stress")
def _stress(node_count: int, slots: int) -> FaultScheduleSpec:
    """Escalating compound faults: degrade, crash, partition, recover.

    The order is deliberate — degradation lands first, the crash hits
    the view-0 primary, the partition isolates the low half while nodes
    are down, and everything recovers before the final quarter so the
    run also measures recovery behaviour.
    """
    nodes = _crash_set(node_count, 6)
    half = tuple(range(node_count // 2))
    recover = (3 * slots) // 4
    return FaultScheduleSpec(
        events=(
            FaultEvent(
                kind=LINK_DEGRADE, slot=slots // 4, loss=0.02, extra_latency=0.001
            ),
            FaultEvent(kind=NODE_CRASH, slot=slots // 3, nodes=nodes),
            FaultEvent(kind=PARTITION, slot=slots // 2, groups=(half,)),
            FaultEvent(kind=HEAL, slot=recover),
            FaultEvent(kind=NODE_REJOIN, slot=recover, nodes=nodes),
            FaultEvent(kind=LINK_DEGRADE, slot=recover),
        )
    )
