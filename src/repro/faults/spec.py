"""Fault timelines: typed events, validated schedules, JSON round-trip.

A :class:`FaultEvent` names one fault at one slot; a
:class:`FaultScheduleSpec` is the ordered timeline a scenario declares
(``workload.faults``) and the :class:`~repro.faults.engine.FaultEngine`
replays.  Both are frozen, validate on construction, and round-trip
through JSON (:meth:`FaultScheduleSpec.to_dict` /
:meth:`FaultScheduleSpec.from_dict` / :meth:`FaultScheduleSpec.from_file`)
so a schedule can be committed, diffed and replayed byte-identically —
the same contract the scenario spec tree keeps.

Event kinds
-----------

``node-crash``
    ``nodes`` go down just before ``slot`` is scheduled: they stop
    generating/submitting/issuing and ignore traffic until they rejoin.
``node-rejoin``
    Previously crashed ``nodes`` come back; on the 2LDAG backend
    ``forgive`` additionally records renewed cooperation everywhere
    (§IV-D-6 blacklist forgiveness — ignored by ledgers without one).
``partition``
    The network splits along ``groups``: any hop between nodes of
    different groups is dropped (nodes not named in any group form one
    implicit remainder group).  Only one partition may be active.
``heal``
    The active partition is removed.
``link-degrade``
    Every hop loses frames with probability ``loss`` and pays
    ``extra_latency`` additional seconds, applied through
    :mod:`repro.net.linkmodels`.  A later ``link-degrade`` *replaces*
    the active degradation, so ``loss=0, extra_latency=0`` restores
    healthy links.

This module deliberately imports nothing from :mod:`repro.scenario`
(the scenario spec imports *us*); schedule validation is therefore
shape-only — the scenario layer checks node ids against its topology
and slots against its workload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

#: The typed fault event kinds, in documentation order.
NODE_CRASH = "node-crash"
NODE_REJOIN = "node-rejoin"
PARTITION = "partition"
HEAL = "heal"
LINK_DEGRADE = "link-degrade"

FAULT_KINDS = (NODE_CRASH, NODE_REJOIN, PARTITION, HEAL, LINK_DEGRADE)


class FaultError(ValueError):
    """A fault event or schedule that cannot describe a runnable timeline."""


@dataclass(frozen=True)
class FaultEvent:
    """One typed fault at one workload slot.

    Only the fields the ``kind`` reads are meaningful; the others must
    keep their defaults (validated), so serialized events stay minimal
    and two equal timelines always serialize identically.
    """

    kind: str
    slot: int
    nodes: Tuple[int, ...] = ()
    groups: Tuple[Tuple[int, ...], ...] = ()
    loss: float = 0.0
    extra_latency: float = 0.0
    forgive: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        if self.slot < 0:
            raise FaultError(f"fault slot must be non-negative, got {self.slot}")
        if self.kind in (NODE_CRASH, NODE_REJOIN):
            if not self.nodes:
                raise FaultError(f"{self.kind} event needs a non-empty nodes list")
            if len(set(self.nodes)) != len(self.nodes):
                raise FaultError(f"{self.kind} event names duplicate nodes: {self.nodes}")
        elif self.nodes:
            raise FaultError(f"{self.kind} event takes no nodes, got {self.nodes}")
        if self.kind == PARTITION:
            if not self.groups:
                raise FaultError("partition event needs at least one group")
            seen: set = set()
            for group in self.groups:
                if not group:
                    raise FaultError("partition groups must be non-empty")
                overlap = seen & set(group)
                if overlap:
                    raise FaultError(
                        f"partition groups overlap on node(s) {sorted(overlap)}"
                    )
                seen |= set(group)
        elif self.groups:
            raise FaultError(f"{self.kind} event takes no groups, got {self.groups}")
        if self.kind == LINK_DEGRADE:
            if not 0.0 <= self.loss <= 1.0:
                raise FaultError(f"loss must be in [0, 1], got {self.loss}")
            if self.extra_latency < 0:
                raise FaultError(
                    f"extra_latency must be non-negative, got {self.extra_latency}"
                )
        elif self.loss or self.extra_latency:
            raise FaultError(f"{self.kind} event takes no loss/extra_latency")
        if self.kind != NODE_REJOIN and self.forgive is not True:
            raise FaultError(f"forgive applies to {NODE_REJOIN} events only")

    @property
    def referenced_nodes(self) -> Tuple[int, ...]:
        """Every node id this event names (for topology validation)."""
        if self.kind in (NODE_CRASH, NODE_REJOIN):
            return self.nodes
        if self.kind == PARTITION:
            return tuple(node for group in self.groups for node in group)
        return ()

    def describe(self) -> str:
        """A compact one-line rendering for CLI timelines."""
        if self.kind in (NODE_CRASH, NODE_REJOIN):
            detail = f"nodes={','.join(str(n) for n in self.nodes)}"
            if self.kind == NODE_REJOIN and not self.forgive:
                detail += " forgive=no"
        elif self.kind == PARTITION:
            detail = "|".join(
                ",".join(str(n) for n in group) for group in self.groups
            )
            detail = f"groups={detail}"
        elif self.kind == LINK_DEGRADE:
            detail = f"loss={self.loss:g} extra_latency={self.extra_latency:g}s"
        else:
            detail = ""
        return f"slot {self.slot}: {self.kind}" + (f" ({detail})" if detail else "")

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A minimal JSON-ready dict (kind-relevant fields only)."""
        payload: Dict[str, Any] = {"kind": self.kind, "slot": self.slot}
        if self.kind in (NODE_CRASH, NODE_REJOIN):
            payload["nodes"] = list(self.nodes)
        if self.kind == NODE_REJOIN:
            payload["forgive"] = self.forgive
        if self.kind == PARTITION:
            payload["groups"] = [list(group) for group in self.groups]
        if self.kind == LINK_DEGRADE:
            payload["loss"] = self.loss
            payload["extra_latency"] = self.extra_latency
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultEvent":
        """Rebuild one event; unknown fields are rejected."""
        if not isinstance(payload, dict):
            raise FaultError(f"fault event must be an object, got {payload!r}")
        data = dict(payload)
        known = {"kind", "slot", "nodes", "groups", "loss", "extra_latency", "forgive"}
        unknown = set(data) - known
        if unknown:
            raise FaultError(
                f"unknown fault event field(s): {', '.join(sorted(unknown))}"
            )
        if isinstance(data.get("nodes"), list):
            data["nodes"] = tuple(data["nodes"])
        if isinstance(data.get("groups"), list):
            data["groups"] = tuple(tuple(group) for group in data["groups"])
        try:
            return cls(**data)
        except TypeError as error:
            raise FaultError(f"invalid fault event: {error}")


@dataclass(frozen=True)
class FaultScheduleSpec:
    """An ordered, validated timeline of fault events.

    Events must be sorted by slot (ties keep declaration order) and
    describe a consistent story: a node may only rejoin while crashed,
    only one partition may be active, and ``heal`` needs one.  The
    linear replay the validator performs is exactly what the
    :class:`~repro.faults.engine.FaultEngine` will do at run time, so a
    schedule that constructs is a schedule that executes.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if not self.events:
            raise FaultError("fault schedule with no events is meaningless")
        slots = [event.slot for event in self.events]
        if slots != sorted(slots):
            raise FaultError(
                f"fault events must be ordered by slot, got slots {slots}"
            )
        crashed: set = set()
        partitioned = False
        for event in self.events:
            if event.kind == NODE_CRASH:
                already = crashed & set(event.nodes)
                if already:
                    raise FaultError(
                        f"slot {event.slot}: node(s) {sorted(already)} are already crashed"
                    )
                crashed |= set(event.nodes)
            elif event.kind == NODE_REJOIN:
                missing = set(event.nodes) - crashed
                if missing:
                    raise FaultError(
                        f"slot {event.slot}: node(s) {sorted(missing)} rejoin "
                        f"without having crashed"
                    )
                crashed -= set(event.nodes)
            elif event.kind == PARTITION:
                if partitioned:
                    raise FaultError(
                        f"slot {event.slot}: a partition is already active; heal it first"
                    )
                partitioned = True
            elif event.kind == HEAL:
                if not partitioned:
                    raise FaultError(
                        f"slot {event.slot}: heal without an active partition"
                    )
                partitioned = False

    # -- derived -----------------------------------------------------------
    @property
    def boundary_slots(self) -> Tuple[int, ...]:
        """Sorted unique slots where the runner must pause to apply events."""
        return tuple(sorted({event.slot for event in self.events}))

    @property
    def max_slot(self) -> int:
        """The latest event slot (for workload-length validation)."""
        return self.events[-1].slot

    @property
    def kinds(self) -> FrozenSet[str]:
        """The set of event kinds used (for capability validation)."""
        return frozenset(event.kind for event in self.events)

    @property
    def referenced_nodes(self) -> Tuple[int, ...]:
        """Sorted unique node ids any event names."""
        return tuple(
            sorted({n for event in self.events for n in event.referenced_nodes})
        )

    def describe(self) -> List[str]:
        """One compact line per event, in timeline order."""
        return [event.describe() for event in self.events]

    # -- churn sugar -------------------------------------------------------
    @classmethod
    def from_churn(
        cls,
        offline_nodes: Iterable[int],
        offline_slot: int,
        rejoin_slot: Optional[int] = None,
        forgive_on_rejoin: bool = True,
    ) -> "FaultScheduleSpec":
        """Compile the legacy ChurnSpec fields to a crash(+rejoin) timeline.

        Duplicate node ids are collapsed (first occurrence wins): the
        legacy churn hooks applied them idempotently, so a spec that
        listed a node twice must keep loading and running.
        """
        nodes = tuple(dict.fromkeys(offline_nodes))
        events: List[FaultEvent] = [
            FaultEvent(kind=NODE_CRASH, slot=offline_slot, nodes=nodes)
        ]
        if rejoin_slot is not None:
            events.append(
                FaultEvent(
                    kind=NODE_REJOIN,
                    slot=rejoin_slot,
                    nodes=nodes,
                    forgive=forgive_on_rejoin,
                )
            )
        return cls(events=tuple(events))

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (round-trips through :meth:`from_dict`)."""
        return {"events": [event.to_dict() for event in self.events]}

    def to_json(self, indent: int = 2) -> str:
        """The canonical JSON text of this schedule."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultScheduleSpec":
        """Rebuild a schedule from :meth:`to_dict` output; validates fully."""
        if not isinstance(payload, dict):
            raise FaultError(f"fault schedule must be an object, got {payload!r}")
        data = dict(payload)
        entries = data.pop("events", None)
        if data:
            raise FaultError(
                f"unknown fault schedule field(s): {', '.join(sorted(data))}"
            )
        if not isinstance(entries, list) or not entries:
            raise FaultError("fault schedule needs a non-empty 'events' list")
        return cls(events=tuple(FaultEvent.from_dict(entry) for entry in entries))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FaultScheduleSpec":
        """Load a schedule from a JSON file written by :meth:`to_json`."""
        try:
            payload = json.loads(Path(path).read_text())
        except ValueError as error:
            raise FaultError(f"fault schedule file {path} is not valid JSON: {error}")
        return cls.from_dict(payload)

    def save(self, path: Union[str, Path]) -> None:
        """Write the canonical JSON of this schedule to ``path`` atomically."""
        from repro.experiments.persistence import atomic_write_text

        atomic_write_text(path, self.to_json())
