"""Measurement framework.

Figs. 7-9 of the paper measure per-node storage, per-node transmitted
data (split by protocol phase) and consensus failure probability.  This
package provides the counters (:mod:`repro.metrics.collector`),
empirical CDFs (:mod:`repro.metrics.cdf`), unit helpers
(:mod:`repro.metrics.units`) and plain-text series/table rendering
(:mod:`repro.metrics.reporting`) used by the experiment harness.
"""

from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.collector import StorageLedger, TrafficLedger
from repro.metrics.reporting import format_series_table, render_cdf_rows
from repro.metrics.units import bits_to_mb, bits_to_mbit, mb_to_bits

__all__ = [
    "EmpiricalCDF",
    "StorageLedger",
    "TrafficLedger",
    "bits_to_mb",
    "bits_to_mbit",
    "format_series_table",
    "mb_to_bits",
    "render_cdf_rows",
]
