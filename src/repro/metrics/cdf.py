"""Empirical cumulative distribution functions.

Figs. 7(d) and 8(d) plot the CDF of per-node storage/communication.
:class:`EmpiricalCDF` implements the standard right-continuous step
CDF with quantile inversion.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Tuple


class EmpiricalCDF:
    """The step CDF of a finite sample."""

    def __init__(self, samples: Iterable[float]) -> None:
        self.samples: List[float] = sorted(float(s) for s in samples)
        if not self.samples:
            raise ValueError("EmpiricalCDF requires at least one sample")

    @property
    def n(self) -> int:
        """Sample count."""
        return len(self.samples)

    def probability_at_or_below(self, x: float) -> float:
        """F(x) = P[X ≤ x]."""
        return bisect.bisect_right(self.samples, x) / self.n

    __call__ = probability_at_or_below

    def quantile(self, q: float) -> float:
        """Smallest sample value v with F(v) ≥ q (inverse CDF)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile level must be in (0, 1], got {q}")
        index = min(self.n - 1, max(0, math.ceil(q * self.n) - 1))
        return self.samples[index]

    @property
    def min(self) -> float:
        """Smallest sample."""
        return self.samples[0]

    @property
    def max(self) -> float:
        """Largest sample."""
        return self.samples[-1]

    def mean(self) -> float:
        """Sample mean."""
        return sum(self.samples) / self.n

    def steps(self) -> List[Tuple[float, float]]:
        """The plotted points ``(value, F(value))`` with duplicates merged."""
        points: List[Tuple[float, float]] = []
        for i, value in enumerate(self.samples):
            if i + 1 < self.n and self.samples[i + 1] == value:
                continue
            points.append((value, (i + 1) / self.n))
        return points
