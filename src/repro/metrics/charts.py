"""ASCII chart rendering for experiment output.

The benchmark harness runs in terminals and CI logs, so figures are
rendered as text: a log- or linear-scale multi-series line chart built
from unicode block characters.  No plotting dependencies.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

#: Marker characters assigned to series in order.
_MARKERS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, steps: int, log: bool) -> int:
    """Map a value to a row index in [0, steps-1]."""
    if log:
        value = math.log10(max(value, 1e-12))
        low = math.log10(max(low, 1e-12))
        high = math.log10(max(high, 1e-12))
    if high == low:
        return 0
    fraction = (value - low) / (high - low)
    return max(0, min(steps - 1, int(round(fraction * (steps - 1)))))


def render_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: Optional[int] = None,
    log_y: bool = False,
    y_label: str = "",
) -> str:
    """Render named series against ``x_values`` as an ASCII chart.

    Parameters
    ----------
    height:
        Chart rows (excluding axes and legend).
    width:
        Chart columns; defaults to one column per x value, padded to a
        minimum of 24.
    log_y:
        Log10 y-axis, as the paper's Fig. 7/8 use.
    """
    if not x_values:
        raise ValueError("need at least one x value")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")

    all_values = [v for values in series.values() for v in values]
    if log_y:
        positive = [v for v in all_values if v > 0]
        low = min(positive) if positive else 1e-12
    else:
        low = min(all_values)
    high = max(all_values)

    if width is None:
        width = max(24, len(x_values) * 6)
    grid = [[" "] * width for _ in range(height)]

    for series_index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        for i, value in enumerate(values):
            if log_y and value <= 0:
                continue
            column = int(i * (width - 1) / max(1, len(x_values) - 1))
            row = height - 1 - _scale(value, low, high, height, log_y)
            grid[row][column] = marker

    def fmt(value: float) -> str:
        return f"{value:.3g}"

    lines = []
    axis_width = max(len(fmt(high)), len(fmt(low)))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = fmt(high)
        elif row_index == height - 1:
            label = fmt(low)
        else:
            label = ""
        lines.append(f"{label:>{axis_width}} |{''.join(row)}")
    lines.append(f"{'':>{axis_width}} +{'-' * width}")
    x_axis = f"{fmt(x_values[0])}{' ' * max(1, width - len(fmt(x_values[0])) - len(fmt(x_values[-1])))}{fmt(x_values[-1])}"
    lines.append(f"{'':>{axis_width}}  {x_axis}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    scale_tag = "log10" if log_y else "linear"
    header = f"[{scale_tag} y] {y_label}".rstrip()
    return "\n".join([header, *lines, legend])
