"""Per-node traffic and storage ledgers.

:class:`TrafficLedger` is written by the network transport on every
physical transmission/reception; :class:`StorageLedger` snapshots what
each node currently persists.  Both break quantities down by *category*
(e.g. ``"digest"``, ``"pop"``, ``"pbft"``) so experiments can reproduce
Fig. 8's separation of DAG-construction traffic from consensus traffic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional


class TrafficLedger:
    """Accumulates transmitted/received bits per node and category."""

    def __init__(self) -> None:
        self._tx: Dict[int, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
        self._rx: Dict[int, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
        self._messages: Dict[str, int] = defaultdict(int)

    # -- recording (called by the transport) --------------------------------
    def record_tx(self, node: int, category: str, bits: float) -> None:
        """Account ``bits`` transmitted by ``node`` under ``category``."""
        self._tx[node][category] += bits

    def record_rx(self, node: int, category: str, bits: float) -> None:
        """Account ``bits`` received by ``node`` under ``category``."""
        self._rx[node][category] += bits

    def record_message(self, kind: str) -> None:
        """Count one end-to-end message of the given kind."""
        self._messages[kind] += 1

    # -- queries -------------------------------------------------------------
    def tx_bits(self, node: int, categories: Optional[Iterable[str]] = None) -> float:
        """Bits transmitted by ``node`` (optionally restricted by category)."""
        per_cat = self._tx.get(node, {})
        if categories is None:
            return sum(per_cat.values())
        return sum(per_cat.get(c, 0.0) for c in categories)

    def rx_bits(self, node: int, categories: Optional[Iterable[str]] = None) -> float:
        """Bits received by ``node`` (optionally restricted by category)."""
        per_cat = self._rx.get(node, {})
        if categories is None:
            return sum(per_cat.values())
        return sum(per_cat.get(c, 0.0) for c in categories)

    def total_bits(self, node: int, categories: Optional[Iterable[str]] = None) -> float:
        """Transmit + receive bits for ``node``."""
        return self.tx_bits(node, categories) + self.rx_bits(node, categories)

    def message_count(self, kind: str) -> int:
        """End-to-end messages recorded under ``kind``."""
        return self._messages.get(kind, 0)

    def message_counts(self) -> Dict[str, int]:
        """All end-to-end message counts, keyed by kind, sorted (a copy).

        The telemetry layer snapshots this per slot record; handing out
        a fresh dict keeps the ledger's own accounting unaliased.
        """
        return {kind: self._messages[kind] for kind in sorted(self._messages)}

    def categories(self) -> List[str]:
        """All categories seen so far, sorted."""
        seen = set()
        for per_cat in self._tx.values():
            seen.update(per_cat)
        for per_cat in self._rx.values():
            seen.update(per_cat)
        return sorted(seen)

    def mean_tx_bits(self, nodes: Iterable[int], categories: Optional[Iterable[str]] = None) -> float:
        """Average transmitted bits across ``nodes`` — Fig. 8's y-axis."""
        cats = list(categories) if categories is not None else None
        node_list = list(nodes)
        if not node_list:
            return 0.0
        return sum(self.tx_bits(n, cats) for n in node_list) / len(node_list)

    def snapshot_tx(self) -> Mapping[int, float]:
        """Total transmitted bits per node (a copy)."""
        return {node: sum(per_cat.values()) for node, per_cat in self._tx.items()}


class StorageLedger:
    """Per-node persistent storage in bits, by category.

    Categories used by the reproduction: ``"blocks"`` (a node's own
    blocks ``S_i``), ``"headers"`` (the trusted header cache ``H_i``),
    ``"chain"``/``"tangle"`` for the baselines.
    """

    def __init__(self) -> None:
        self._bits: Dict[int, Dict[str, float]] = defaultdict(lambda: defaultdict(float))

    def set_bits(self, node: int, category: str, bits: float) -> None:
        """Overwrite the current figure (storage is a level, not a flow)."""
        self._bits[node][category] = bits

    def add_bits(self, node: int, category: str, bits: float) -> None:
        """Increase the current figure by ``bits``."""
        self._bits[node][category] += bits

    def bits(self, node: int, categories: Optional[Iterable[str]] = None) -> float:
        """Stored bits for ``node`` (optionally restricted by category)."""
        per_cat = self._bits.get(node, {})
        if categories is None:
            return sum(per_cat.values())
        return sum(per_cat.get(c, 0.0) for c in categories)

    def mean_bits(self, nodes: Iterable[int], categories: Optional[Iterable[str]] = None) -> float:
        """Average stored bits across ``nodes`` — Fig. 7's y-axis."""
        cats = list(categories) if categories is not None else None
        node_list = list(nodes)
        if not node_list:
            return 0.0
        return sum(self.bits(n, cats) for n in node_list) / len(node_list)

    def per_node_bits(self, nodes: Iterable[int]) -> List[float]:
        """Stored bits for each node in order — feeds the Fig. 7(d) CDF."""
        return [self.bits(n) for n in nodes]
