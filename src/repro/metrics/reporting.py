"""Plain-text rendering of figure series.

The benchmark harness "regenerates" each figure by printing the series
the paper plots; these helpers keep that output aligned and consistent
across experiments.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def format_series_table(
    x_label: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    float_format: str = "{:.4g}",
) -> str:
    """Render ``x`` against several named ``series`` as a text table.

    Example output::

        slots | PBFT     | IOTA     | 2LDAG
        ------+----------+----------+---------
        25    | 625      | 627.2    | 12.53
    """
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, expected {len(x_values)}"
            )
    header = [x_label] + names
    rows: List[List[str]] = [header]
    for i, x in enumerate(x_values):
        row = [float_format.format(x)]
        row += [float_format.format(series[name][i]) for name in names]
        rows.append(row)
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = []
    for r_index, row in enumerate(rows):
        lines.append(" | ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if r_index == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render pre-formatted string cells as an aligned text table.

    The generic sibling of :func:`format_series_table` for tables whose
    cells are not one numeric series per column (mixed labels, ratios,
    missing values).
    """
    table: List[List[str]] = [list(header)] + [list(row) for row in rows]
    for row in table:
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(header)}: {row}"
            )
    widths = [max(len(r[c]) for r in table) for c in range(len(header))]
    lines = []
    for r_index, row in enumerate(table):
        lines.append(" | ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if r_index == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


def render_cdf_rows(
    points: Sequence[Tuple[float, float]], value_label: str = "value"
) -> str:
    """Render CDF step points as two aligned columns."""
    lines = [f"{value_label:>16} | CDF", "-" * 16 + "-+------"]
    for value, prob in points:
        lines.append(f"{value:16.4f} | {prob:.3f}")
    return "\n".join(lines)


def format_ratio(numerator: float, denominator: float) -> str:
    """Human ratio like ``"412x"`` guarding division by zero."""
    if denominator == 0:
        return "inf"
    return f"{numerator / denominator:.0f}x"
