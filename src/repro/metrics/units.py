"""Unit conversions used by the figures.

The paper mixes units: Fig. 7 reports storage in megabytes (MB),
Fig. 8 reports communication in megabits (Mb) on some panels and MB on
the CDF panel.  Centralising the conversions avoids silent factor-of-8
errors in experiment code.
"""

from __future__ import annotations

BITS_PER_BYTE = 8
BYTES_PER_MB = 1_000_000  # the paper uses decimal megabytes
BITS_PER_MBIT = 1_000_000


def mb_to_bits(mb: float) -> int:
    """Decimal megabytes -> bits (block body sizes C are given in MB)."""
    return int(round(mb * BYTES_PER_MB * BITS_PER_BYTE))


def bits_to_mb(bits: float) -> float:
    """Bits -> decimal megabytes."""
    return bits / (BYTES_PER_MB * BITS_PER_BYTE)


def bits_to_mbit(bits: float) -> float:
    """Bits -> decimal megabits."""
    return bits / BITS_PER_MBIT


def bits_to_kb(bits: float) -> float:
    """Bits -> decimal kilobytes."""
    return bits / (1000 * BITS_PER_BYTE)
