"""Wireless network substrate.

Models the physical layer of §III-A/§VI: static IoT nodes placed in a
square area with a fixed communication range, connected by undirected
links.  Provides:

* :mod:`repro.net.topology` — the paper's sequential random geometric
  placement (each new node lands within range of an existing one, so
  the network is connected by construction);
* :mod:`repro.net.routing` — hop counts and shortest paths, used by the
  "route PoP over shortest physical paths" future-work feature;
* :mod:`repro.net.transport` — discrete-event message delivery with
  per-node transmit/receive byte counters (the quantities Figs. 7-8
  measure).
"""

from repro.net.messages import Message
from repro.net.routing import RoutingTable
from repro.net.topology import Topology, sequential_geometric_topology
from repro.net.transport import Network, NodeInterface

__all__ = [
    "Message",
    "Network",
    "NodeInterface",
    "RoutingTable",
    "Topology",
    "sequential_geometric_topology",
]
