"""Pluggable link latency and loss models.

The base transport uses a constant per-hop latency; real wireless links
vary with distance and congestion, and drop frames.  These models
compose with :class:`~repro.net.transport.Network`:

* latency models are callables ``(topology, hop_from, hop_to) -> seconds``
  installed via :func:`install_latency_model`;
* loss models are seeded random drop rules built by
  :func:`random_loss_rule`, installed with ``Network.add_drop_rule``.

PoP is timeout-driven, so loss and latency directly shape Fig. 9-style
consensus times; the failure-injection tests use these models.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence

from repro.net.messages import Message
from repro.net.topology import Topology
from repro.net.transport import DropRule, Network

#: Latency model signature.
LatencyModel = Callable[[Topology, int, int], float]


def constant_latency(seconds: float) -> LatencyModel:
    """The default behaviour as an explicit model."""
    def model(topology: Topology, hop_from: int, hop_to: int) -> float:
        return seconds

    return model


def distance_proportional_latency(
    seconds_per_meter: float, floor: float = 1e-6
) -> LatencyModel:
    """Latency grows with link length (propagation + power control)."""
    def model(topology: Topology, hop_from: int, hop_to: int) -> float:
        return max(floor, topology.distance(hop_from, hop_to) * seconds_per_meter)

    return model


def bandwidth_latency(
    bits_per_second: float, base: float = 0.0
) -> Callable[[Topology, int, int, int], float]:
    """Serialization-delay model: latency depends on message size.

    Returned callable takes ``(topology, hop_from, hop_to, size_bits)``;
    install with :func:`install_latency_model` (size-aware variant).
    """
    if bits_per_second <= 0:
        raise ValueError("bandwidth must be positive")

    def model(topology: Topology, hop_from: int, hop_to: int, size_bits: int) -> float:
        return base + size_bits / bits_per_second

    return model


def install_latency_model(network: Network, model, size_aware: bool = False) -> None:
    """Replace the network's constant per-hop latency with ``model``.

    Monkey-patches the network's unicast latency computation in a
    supported way: the network keeps routing and accounting; only the
    delay calculation changes.
    """
    original_unicast = network.unicast

    def unicast(message: Message) -> None:
        # Recompute the route to derive the per-hop latency sum, then
        # delegate with a temporarily adjusted per-hop latency.
        try:
            route = network.routing.path(message.sender, message.recipient)
        except ValueError:
            original_unicast(message)
            return
        total = 0.0
        for hop_index in range(len(route) - 1):
            a, b = route[hop_index], route[hop_index + 1]
            if size_aware:
                total += model(network.topology, a, b, message.size_bits)
            else:
                total += model(network.topology, a, b)
        hops = max(1, len(route) - 1)
        saved = network.per_hop_latency
        network.per_hop_latency = total / hops
        try:
            original_unicast(message)
        finally:
            network.per_hop_latency = saved

    network.unicast = unicast  # type: ignore[method-assign]


def partition_drop_rule(groups: Sequence[Sequence[int]]) -> DropRule:
    """A drop rule realizing a network partition.

    ``groups`` are disjoint node sets; any hop between nodes of
    different groups is dropped.  Nodes named in no group form one
    implicit remainder group, so a single group partitions "these nodes
    vs everyone else".  This is what the fault engine installs for
    ``partition`` events and removes again on ``heal``.
    """
    group_of: dict = {}
    for index, group in enumerate(groups):
        for node in group:
            if node in group_of:
                raise ValueError(f"node {node} appears in more than one group")
            group_of[node] = index

    def rule(message: Message, hop_from: int, hop_to: int) -> bool:
        return group_of.get(hop_from, -1) != group_of.get(hop_to, -1)

    return rule


class LinkDegradation:
    """Seeded loss plus extra per-hop latency installed on a network.

    One object owns one degradation: construction installs a
    :func:`random_loss_rule` (when ``loss > 0``) and raises the
    network's per-hop latency by ``extra_latency``; :meth:`revoke`
    undoes exactly what was installed, leaving any other drop rules
    (eclipse adversaries, partitions) untouched.  The fault engine
    keeps at most one live instance per run — a later ``link-degrade``
    event revokes the old one and installs a replacement.
    """

    def __init__(
        self,
        network: Network,
        loss: float,
        extra_latency: float,
        rng: Optional[random.Random] = None,
    ) -> None:
        if extra_latency < 0:
            raise ValueError(f"extra_latency must be non-negative, got {extra_latency}")
        self.network = network
        self.loss = loss
        self.extra_latency = extra_latency
        self._rule: Optional[DropRule] = None
        if loss > 0:
            self._rule = random_loss_rule(loss, rng=rng)
            network.add_drop_rule(self._rule)
        network.per_hop_latency += extra_latency
        self._revoked = False

    def revoke(self) -> None:
        """Restore the latency delta and uninstall the loss rule."""
        if self._revoked:
            return
        self._revoked = True
        if self._rule is not None:
            self.network.remove_drop_rule(self._rule)
            self._rule = None
        self.network.per_hop_latency -= self.extra_latency


def random_loss_rule(
    loss_probability: float,
    rng: Optional[random.Random] = None,
    kinds: Optional[set] = None,
) -> DropRule:
    """A seeded Bernoulli per-hop loss rule.

    Parameters
    ----------
    loss_probability:
        Chance each hop transmission is lost.
    kinds:
        Restrict loss to these message kinds (``None`` = all).
    """
    if not 0.0 <= loss_probability <= 1.0:
        raise ValueError(f"loss probability must be in [0, 1], got {loss_probability}")
    if rng is None:
        # Fixed-seed fallback for ad-hoc use; scenario paths always pass
        # the "faults"/"loss" named stream in.
        rng = random.Random(0)  # repro: allow[unseeded-random]

    def rule(message: Message, hop_from: int, hop_to: int) -> bool:
        if kinds is not None and message.kind not in kinds:
            return False
        return rng.random() < loss_probability

    return rule
