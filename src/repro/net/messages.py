"""The transport-level message envelope.

Every protocol payload (digest broadcast, PoP request/reply, PBFT
phase messages, IOTA gossip) is wrapped in a :class:`Message` whose
``size_bits`` drives the byte accounting in Figs. 7-8.  The envelope
carries a ``kind`` tag so metrics can attribute traffic to protocol
phases (DAG construction vs consensus — Fig. 8(b) vs 8(c)).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_MESSAGE_IDS = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """An addressed, sized protocol message.

    Attributes
    ----------
    sender / recipient:
        Node ids; the transport routes between them.
    kind:
        Protocol message tag, e.g. ``"digest"``, ``"req_child"``,
        ``"rpy_child"``, ``"pbft.prepare"``, ``"iota.tx"``.
    payload:
        Arbitrary protocol object.
    size_bits:
        Wire size used for communication accounting.
    msg_id:
        Unique id, useful for request/reply matching and replay
        detection (the nonce of §IV-D-5).
    in_reply_to:
        ``msg_id`` of the request this message answers, or ``None``.
    """

    sender: int
    recipient: int
    kind: str
    payload: Any
    size_bits: int
    msg_id: int = field(default_factory=lambda: next(_MESSAGE_IDS))
    in_reply_to: Any = None

    def __post_init__(self) -> None:
        if self.size_bits < 0:
            raise ValueError(f"message size must be non-negative, got {self.size_bits}")

    @property
    def size_bytes(self) -> float:
        """Size in bytes."""
        return self.size_bits / 8.0

    def reply(self, kind: str, payload: Any, size_bits: int) -> "Message":
        """Construct the reverse-direction message for request/reply flows."""
        return Message(
            sender=self.recipient,
            recipient=self.sender,
            kind=kind,
            payload=payload,
            size_bits=size_bits,
            in_reply_to=self.msg_id,
        )
