"""Shortest-path routing over a topology.

PoP's validator exchanges ``REQ_CHILD``/``RPY_CHILD`` with nodes that
are generally not its physical neighbours, so those unicasts traverse
multi-hop routes.  :class:`RoutingTable` precomputes all-pairs hop
counts and next-hops with per-source BFS (unweighted links), which is
exact for the paper's unit-cost wireless graph.

The paper's §VII names "construct the shortest path from a validator to
a verifier in the physical layer" as future work; this module is also
the substrate for that extension (see the validator's ``route_aware``
option).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.net.topology import Topology

#: Hop count reported for unreachable destinations.
UNREACHABLE = -1


class RoutingTable:
    """All-pairs BFS routes over a :class:`Topology`.

    Routes are deterministic: among equal-length routes, the next hop
    with the smallest node id is chosen, keeping byte accounting
    reproducible across runs.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._distance: Dict[int, Dict[int, int]] = {}
        self._next_hop: Dict[int, Dict[int, int]] = {}
        for source in topology.node_ids:
            self._compute_from(source)

    def _compute_from(self, source: int) -> None:
        distance: Dict[int, int] = {source: 0}
        parent: Dict[int, int] = {}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor in sorted(self.topology.neighbors(node)):
                if neighbor not in distance:
                    distance[neighbor] = distance[node] + 1
                    parent[neighbor] = node
                    queue.append(neighbor)
        next_hop: Dict[int, int] = {}
        for destination in distance:
            if destination == source:
                continue
            # Walk back from the destination to the node adjacent to source.
            cursor = destination
            while parent[cursor] != source:
                cursor = parent[cursor]
            next_hop[destination] = cursor
        self._distance[source] = distance
        self._next_hop[source] = next_hop

    def hop_count(self, source: int, destination: int) -> int:
        """Hops on the shortest route, 0 for self, ``UNREACHABLE`` if none."""
        if source == destination:
            return 0
        return self._distance[source].get(destination, UNREACHABLE)

    def next_hop(self, source: int, destination: int) -> Optional[int]:
        """First hop from ``source`` toward ``destination`` (``None`` if unreachable)."""
        if source == destination:
            return None
        return self._next_hop[source].get(destination)

    def path(self, source: int, destination: int) -> List[int]:
        """Full node sequence ``[source, ..., destination]``.

        Raises ``ValueError`` when the destination is unreachable.
        """
        if source == destination:
            return [source]
        route = [source]
        cursor = source
        while cursor != destination:
            step = self.next_hop(cursor, destination)
            if step is None:
                raise ValueError(f"no route from {source} to {destination}")
            route.append(step)
            cursor = step
        return route

    def eccentricity(self, node: int) -> int:
        """Largest hop count from ``node`` to any reachable node."""
        return max(self._distance[node].values())

    def diameter(self) -> int:
        """Largest hop count over all reachable pairs."""
        return max(self.eccentricity(n) for n in self.topology.node_ids)

    def nodes_sorted_by_distance(self, source: int) -> List[int]:
        """All reachable nodes ordered by (hops, id) — used by experiments."""
        reachable = self._distance[source]
        return sorted(reachable, key=lambda n: (reachable[n], n))
