"""IoT network topologies.

The evaluation (§VI) places 50 wireless nodes with 50 m communication
range in a square area, one by one: the first node at the centre, every
subsequent node uniformly at random *within communication range of an
already-placed node*.  This guarantees a connected graph without
rejection sampling over whole layouts.  :func:`sequential_geometric_topology`
implements exactly that procedure; :class:`Topology` is the resulting
immutable graph with geometry attached.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class Topology:
    """An undirected node graph with planar positions.

    Attributes
    ----------
    positions:
        Node id -> (x, y) metres.
    adjacency:
        Node id -> frozen set of neighbour ids (Eq. 1's ``N(i)``).
    comm_range:
        The radio range used to derive the adjacency.
    """

    positions: Dict[int, Tuple[float, float]]
    adjacency: Dict[int, FrozenSet[int]]
    comm_range: float

    # -- basic queries ---------------------------------------------------
    @property
    def node_ids(self) -> List[int]:
        """Sorted node identifiers (the set ``V``)."""
        return sorted(self.positions)

    @property
    def node_count(self) -> int:
        """``|V|``."""
        return len(self.positions)

    def neighbors(self, node: int) -> FrozenSet[int]:
        """``N(node)`` per Eq. (1)."""
        return self.adjacency[node]

    @cached_property
    def closed_neighborhoods(self) -> Dict[int, FrozenSet[int]]:
        """``N(node) ∪ {node}`` for every node, built once per topology.

        WPS scores every candidate by its closed neighbourhood (Eq. 7)
        on every path-extension step of every PoP run; precomputing the
        frozen sets here turns each score into set lookups with no
        per-candidate allocation.  The topology is immutable, so the
        table can never go stale (``subgraph_without`` returns a fresh
        instance with its own table).
        """
        return {
            node: frozenset(neighbors | {node})
            for node, neighbors in self.adjacency.items()
        }

    def closed_neighborhood(self, node: int) -> FrozenSet[int]:
        """``N(node) ∪ {node}`` from the precomputed table."""
        return self.closed_neighborhoods[node]

    def degree(self, node: int) -> int:
        """``|N(node)|``."""
        return len(self.adjacency[node])

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Each undirected edge once, as ``(low_id, high_id)``."""
        for node in self.node_ids:
            for neighbor in self.adjacency[node]:
                if node < neighbor:
                    yield (node, neighbor)

    def edge_count(self) -> int:
        """``|E|``."""
        return sum(1 for _ in self.edges())

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes in metres."""
        ax, ay = self.positions[a]
        bx, by = self.positions[b]
        return math.hypot(ax - bx, ay - by)

    def is_connected(self) -> bool:
        """Whether the whole graph is one component (BFS check)."""
        ids = self.node_ids
        if not ids:
            return True
        seen: Set[int] = {ids[0]}
        frontier = [ids[0]]
        while frontier:
            node = frontier.pop()
            for neighbor in self.adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(ids)

    def subgraph_without(self, removed: Set[int]) -> "Topology":
        """The topology with ``removed`` nodes (and their edges) deleted."""
        positions = {n: p for n, p in self.positions.items() if n not in removed}
        adjacency = {
            n: frozenset(m for m in neigh if m not in removed)
            for n, neigh in self.adjacency.items()
            if n not in removed
        }
        return Topology(positions=positions, adjacency=adjacency, comm_range=self.comm_range)


def _adjacency_from_positions(
    positions: Dict[int, Tuple[float, float]], comm_range: float
) -> Dict[int, FrozenSet[int]]:
    ids = sorted(positions)
    neighbors: Dict[int, Set[int]] = {n: set() for n in ids}
    for i, a in enumerate(ids):
        ax, ay = positions[a]
        for b in ids[i + 1:]:
            bx, by = positions[b]
            if math.hypot(ax - bx, ay - by) <= comm_range:
                neighbors[a].add(b)
                neighbors[b].add(a)
    return {n: frozenset(s) for n, s in neighbors.items()}


def sequential_geometric_topology(
    node_count: int = 50,
    area_side: float = 1000.0,
    comm_range: float = 50.0,
    streams: RandomStreams = None,
    stream_name: str = "topology",
) -> Topology:
    """The paper's sequential connected placement (§VI).

    The first node is placed at the centre of the ``area_side`` ×
    ``area_side`` square.  Each subsequent node picks an already-placed
    anchor uniformly at random and lands uniformly within the anchor's
    communication disc (clamped to the area), guaranteeing connectivity.

    Parameters
    ----------
    node_count:
        ``|V|``; the paper uses 50.
    area_side:
        Side of the deployment square in metres.
    comm_range:
        Radio range in metres; the paper uses 50.
    streams:
        Random source; a fresh seed-0 source when omitted.
    """
    if node_count <= 0:
        raise ValueError(f"node_count must be positive, got {node_count}")
    if streams is None:
        streams = RandomStreams(0)
    rng = streams.get(stream_name)

    center = area_side / 2.0
    positions: Dict[int, Tuple[float, float]] = {0: (center, center)}
    for node in range(1, node_count):
        anchor = rng.choice(sorted(positions))
        ax, ay = positions[anchor]
        # Uniform point in the anchor's disc via polar inverse-CDF.
        radius = comm_range * math.sqrt(rng.random())
        angle = rng.uniform(0.0, 2.0 * math.pi)
        x = min(max(ax + radius * math.cos(angle), 0.0), area_side)
        y = min(max(ay + radius * math.sin(angle), 0.0), area_side)
        positions[node] = (x, y)

    adjacency = _adjacency_from_positions(positions, comm_range)
    topology = Topology(positions=positions, adjacency=adjacency, comm_range=comm_range)
    assert topology.is_connected(), "sequential placement must yield a connected graph"
    return topology


def grid_topology(rows: int, cols: int, spacing: float = 40.0, comm_range: float = 50.0) -> Topology:
    """A deterministic grid layout — handy for unit tests and examples.

    With the default spacing/range, each node links to its 4-neighbours
    (diagonals are out of range at 40·√2 ≈ 56.6 m > 50 m).
    """
    positions = {
        r * cols + c: (c * spacing, r * spacing) for r in range(rows) for c in range(cols)
    }
    adjacency = _adjacency_from_positions(positions, comm_range)
    return Topology(positions=positions, adjacency=adjacency, comm_range=comm_range)


def ring_topology(
    node_count: int, spacing: float = 40.0, comm_range: float = 50.0
) -> Topology:
    """A deterministic ring: nodes evenly spaced on a circle.

    The circle's circumference is ``node_count * spacing``, so with the
    default spacing/range each node reaches exactly its two ring
    neighbours (chord length ≈ spacing < comm_range < 2·spacing) — the
    worst case for PoP path construction: every consensus path must
    walk the ring.
    """
    if node_count < 3:
        raise ValueError(f"a ring needs at least 3 nodes, got {node_count}")
    radius = node_count * spacing / (2.0 * math.pi)
    center = radius + comm_range
    positions = {
        k: (
            center + radius * math.cos(2.0 * math.pi * k / node_count),
            center + radius * math.sin(2.0 * math.pi * k / node_count),
        )
        for k in range(node_count)
    }
    adjacency = _adjacency_from_positions(positions, comm_range)
    return Topology(positions=positions, adjacency=adjacency, comm_range=comm_range)


def random_geometric_topology(
    node_count: int = 20,
    area_side: float = 200.0,
    comm_range: float = 50.0,
    streams: RandomStreams = None,
    stream_name: str = "topology",
    max_attempts: int = 200,
) -> Topology:
    """A classic random geometric graph, resampled until connected.

    Unlike :func:`sequential_geometric_topology` (the paper's placement,
    connected by construction), every node lands uniformly in the square
    independently; disconnected layouts are rejected.  Denser by default
    (200 m square) so connectivity is likely within a few attempts.
    """
    if node_count <= 0:
        raise ValueError(f"node_count must be positive, got {node_count}")
    if streams is None:
        streams = RandomStreams(0)
    rng = streams.get(stream_name)
    for _ in range(max_attempts):
        positions = {
            node: (rng.uniform(0.0, area_side), rng.uniform(0.0, area_side))
            for node in range(node_count)
        }
        adjacency = _adjacency_from_positions(positions, comm_range)
        topology = Topology(
            positions=positions, adjacency=adjacency, comm_range=comm_range
        )
        if topology.is_connected():
            return topology
    raise ValueError(
        f"no connected layout of {node_count} nodes in a {area_side} m square "
        f"with {comm_range} m range after {max_attempts} attempts"
    )


def explicit_topology(edges: Sequence[Tuple[int, int]], comm_range: float = 1.0) -> Topology:
    """Build a topology from an explicit edge list (unit positions).

    Used throughout the tests to recreate the paper's worked examples
    (Fig. 3's four-node network, Fig. 5's 13-node network, Fig. 6's
    three-node chain).
    """
    nodes: Set[int] = set()
    for a, b in edges:
        if a == b:
            raise ValueError(f"self-loop on node {a}")
        nodes.add(a)
        nodes.add(b)
    positions = {n: (float(i), 0.0) for i, n in enumerate(sorted(nodes))}
    neighbors: Dict[int, Set[int]] = {n: set() for n in nodes}
    for a, b in edges:
        neighbors[a].add(b)
        neighbors[b].add(a)
    adjacency = {n: frozenset(s) for n, s in neighbors.items()}
    return Topology(positions=positions, adjacency=adjacency, comm_range=comm_range)
