"""Discrete-event message transport with byte accounting.

:class:`Network` connects node protocol stacks over a
:class:`~repro.net.topology.Topology`.  Delivery semantics:

* **neighbor broadcast** — one logical transmission per neighbour (the
  paper counts node B's digest cost as "transmission and reception of
  three digests to and from A, C and D", §III-D, i.e. per-link
  accounting);
* **unicast** — multi-hop along shortest routes; every forwarding node
  is charged transmit bits and every receiving node receive bits, so a
  few central relays accumulate the heavy tails seen in Fig. 8(d).

Messages are delivered after ``hops × per_hop_latency`` simulated time.
Per-node drop rules model malicious silence, DoS filtering and eclipse
partitions (§IV-D).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.metrics.collector import TrafficLedger
from repro.net.messages import Message
from repro.net.routing import RoutingTable
from repro.net.topology import Topology
from repro.sim.kernel import Event, Simulator
from repro.sim.tracing import Tracer

#: A drop rule decides, per message and hop, whether the link eats it.
DropRule = Callable[[Message, int, int], bool]

#: Maps a message kind to the ledger category it is accounted under.
CategoryFn = Callable[[str], str]


def default_category(kind: str) -> str:
    """Account each kind under itself (experiments install finer maps)."""
    return kind


class NodeInterface:
    """One node's attachment point to the :class:`Network`.

    Protocol stacks register handlers by message kind and use
    :meth:`send`, :meth:`broadcast_neighbors` and :meth:`request`.
    """

    def __init__(self, network: "Network", node_id: int) -> None:
        self.network = network
        self.node_id = node_id
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._pending: Dict[int, Event] = {}
        self._default_handler: Optional[Callable[[Message], None]] = None

    # -- registration ---------------------------------------------------
    def on(self, kind: str, handler: Callable[[Message], None]) -> None:
        """Register ``handler`` for messages of ``kind``."""
        self._handlers[kind] = handler

    def on_any(self, handler: Callable[[Message], None]) -> None:
        """Register a fallback handler for unmatched kinds."""
        self._default_handler = handler

    # -- sending -----------------------------------------------------------
    def send(self, recipient: int, kind: str, payload: Any, size_bits: int) -> Message:
        """Unicast to ``recipient`` over the shortest route."""
        message = Message(
            sender=self.node_id, recipient=recipient, kind=kind,
            payload=payload, size_bits=size_bits,
        )
        self.network.unicast(message)
        return message

    def reply(self, request: Message, kind: str, payload: Any, size_bits: int) -> Message:
        """Answer a request; the reply is matched to a waiting :meth:`request`."""
        message = request.reply(kind, payload, size_bits)
        self.network.unicast(message)
        return message

    def broadcast_neighbors(self, kind: str, payload: Any, size_bits: int) -> List[Message]:
        """Send ``payload`` to every physical neighbour (digest push)."""
        messages = []
        for neighbor in sorted(self.network.topology.neighbors(self.node_id)):
            messages.append(self.send(neighbor, kind, payload, size_bits))
        return messages

    def request(
        self, recipient: int, kind: str, payload: Any, size_bits: int, timeout: float
    ) -> Event:
        """Unicast and return an event for the reply (``None`` on timeout).

        This is the validator's REQ_CHILD/RPY_CHILD pattern
        (Algorithm 3, lines 17-19): the returned event succeeds with the
        reply :class:`Message`, or with ``None`` once ``timeout`` sim
        time elapses with no answer — silent malicious responders are
        thus survivable.
        """
        message = self.send(recipient, kind, payload, size_bits)
        waiter = self.network.sim.event()
        self._pending[message.msg_id] = waiter

        def expire() -> None:
            pending = self._pending.pop(message.msg_id, None)
            if pending is not None and not pending.triggered:
                pending.succeed(None)

        self.network.sim.call_in(timeout, expire)
        return waiter

    # -- delivery (called by Network) ------------------------------------------
    def deliver(self, message: Message) -> None:
        """Dispatch an arriving message to a waiter or handler."""
        if message.in_reply_to is not None:
            waiter = self._pending.pop(message.in_reply_to, None)
            if waiter is not None:
                if not waiter.triggered:
                    waiter.succeed(message)
                return
        handler = self._handlers.get(message.kind, self._default_handler)
        if handler is not None:
            handler(message)


class Network:
    """The shared medium: topology + routing + latency + accounting."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        ledger: Optional[TrafficLedger] = None,
        per_hop_latency: float = 0.001,
        category_fn: CategoryFn = default_category,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.routing = RoutingTable(topology)
        self.ledger = ledger if ledger is not None else TrafficLedger()
        self.per_hop_latency = per_hop_latency
        self.category_fn = category_fn
        self.tracer = tracer if tracer is not None else Tracer()
        self._interfaces: Dict[int, NodeInterface] = {}
        self._drop_rules: List[DropRule] = []

    # -- attachment -----------------------------------------------------------
    def attach(self, node_id: int) -> NodeInterface:
        """Create (or return) the interface for ``node_id``."""
        if node_id not in self.topology.positions:
            raise KeyError(f"node {node_id} is not part of the topology")
        interface = self._interfaces.get(node_id)
        if interface is None:
            interface = NodeInterface(self, node_id)
            self._interfaces[node_id] = interface
        return interface

    def interface(self, node_id: int) -> NodeInterface:
        """The already-attached interface for ``node_id``."""
        return self._interfaces[node_id]

    # -- fault injection ---------------------------------------------------
    def add_drop_rule(self, rule: DropRule) -> None:
        """Install a per-hop drop predicate ``rule(message, from, to)``."""
        self._drop_rules.append(rule)

    def remove_drop_rule(self, rule: DropRule) -> None:
        """Uninstall one previously added drop rule (no-op if absent).

        Fault injection needs targeted removal — healing a partition
        must not also clear an eclipse adversary's rule.
        """
        try:
            self._drop_rules.remove(rule)
        except ValueError:
            pass

    def clear_drop_rules(self) -> None:
        """Remove all drop rules."""
        self._drop_rules.clear()

    def _dropped(self, message: Message, hop_from: int, hop_to: int) -> bool:
        return any(rule(message, hop_from, hop_to) for rule in self._drop_rules)

    # -- delivery -------------------------------------------------------------
    def unicast(self, message: Message) -> None:
        """Route ``message`` hop by hop, accounting every transmission.

        If the destination is unreachable (e.g. after node removal) or a
        drop rule fires mid-route, traffic up to the failure point is
        still accounted — bytes were spent even though delivery failed,
        matching how a real radio medium behaves.
        """
        category = self.category_fn(message.kind)
        self.ledger.record_message(message.kind)
        if message.sender == message.recipient:
            # Loopback costs nothing on the medium.
            self.sim.call_in(0.0, lambda: self._deliver(message))
            return
        try:
            route = self.routing.path(message.sender, message.recipient)
        except ValueError:
            self.tracer.emit(self.sim.now, "net.unroutable", message.sender,
                             recipient=message.recipient, kind=message.kind)
            return
        for hop_index in range(len(route) - 1):
            hop_from, hop_to = route[hop_index], route[hop_index + 1]
            self.ledger.record_tx(hop_from, category, message.size_bits)
            if self._dropped(message, hop_from, hop_to):
                self.tracer.emit(self.sim.now, "net.dropped", hop_from,
                                 hop_to=hop_to, kind=message.kind)
                return
            self.ledger.record_rx(hop_to, category, message.size_bits)
        latency = self.per_hop_latency * (len(route) - 1)
        self.sim.call_in(latency, lambda: self._deliver(message))

    def _deliver(self, message: Message) -> None:
        interface = self._interfaces.get(message.recipient)
        if interface is not None:
            interface.deliver(message)

    def hop_count(self, source: int, destination: int) -> int:
        """Hops between two nodes (routing shortcut for experiments)."""
        return self.routing.hop_count(source, destination)
