"""ASCII rendering of network topologies.

Examples and debugging sessions benefit from *seeing* the deployment:
node positions are projected onto a character grid, optionally coloured
by role (malicious/validator/verifier).  Pure text, no dependencies.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.topology import Topology


def render_topology(
    topology: Topology,
    width: int = 60,
    height: int = 24,
    roles: Optional[Dict[int, str]] = None,
    show_ids: bool = True,
) -> str:
    """Render node positions as an ASCII map.

    Parameters
    ----------
    roles:
        Node id -> single-character marker (e.g. ``{3: "X"}`` for a
        malicious node).  Unlabelled nodes render as ``o`` (or their id
        when ``show_ids`` and the id fits in one character).
    """
    if topology.node_count == 0:
        return "(empty topology)"
    xs = [p[0] for p in topology.positions.values()]
    ys = [p[1] for p in topology.positions.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)

    grid = [[" "] * width for _ in range(height)]
    for node, (x, y) in sorted(topology.positions.items()):
        column = int((x - min_x) / span_x * (width - 1))
        row = int((y - min_y) / span_y * (height - 1))
        if roles and node in roles:
            marker = roles[node][0]
        elif show_ids and node < 10:
            marker = str(node)
        else:
            marker = "o"
        grid[height - 1 - row][column] = marker

    lines = ["+" + "-" * width + "+"]
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    legend = [
        f"{topology.node_count} nodes, {topology.edge_count()} edges, "
        f"range {topology.comm_range:g} m"
    ]
    if roles:
        tags = ", ".join(f"{marker}={node}" for node, marker in sorted(roles.items()))
        legend.append(f"roles: {tags}")
    return "\n".join(lines + legend)


def degree_histogram(topology: Topology, bar_width: int = 40) -> str:
    """Text histogram of node degrees (connectivity sanity check)."""
    from collections import Counter

    counts = Counter(topology.degree(n) for n in topology.node_ids)
    if not counts:
        return "(empty topology)"
    peak = max(counts.values())
    lines = ["degree | nodes"]
    for degree in range(min(counts), max(counts) + 1):
        count = counts.get(degree, 0)
        bar = "#" * int(round(count / peak * bar_width))
        lines.append(f"{degree:6d} | {bar} {count}")
    return "\n".join(lines)
