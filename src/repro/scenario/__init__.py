"""The unified scenario pipeline: declarative spec → runner → result.

One :class:`ScenarioSpec` declares a whole 2LDAG run — protocol knobs,
topology, workload (slots, validation, churn), adversaries, and seeds
— with JSON round-trip for committing and replaying scenarios.  A
:class:`ScenarioRunner` builds the deployment, drives it, and returns
a structured :class:`ScenarioResult`.  Named presets (``quickstart``,
``paper-fig7`` … ``attack-*``, ``bench-*``) live in the registry.

Every entry point in the repository — the CLI, the paper experiments,
the examples, the attack demos and the bench harness — constructs its
deployment through this package, so new scenarios are data, not code.

Specs name a *ledger backend* (``backend="2ldag"|"pbft"|"iota"``): the
runner dispatches through the :mod:`repro.scenario.backends` registry,
so the same spec — same topology, workload and seed — runs on the
paper's two-layer DAG or on the PBFT/IOTA comparison baselines.
"""

from repro.scenario.backends import (
    LedgerBackend,
    backend_names,
    build_topology,
    create_backend,
    register_backend,
)
from repro.scenario.registry import (
    bench_scenario,
    fault_bench_scenario,
    fig7_scenario,
    fig8_scenario,
    fig9_scenario,
    get_scenario,
    ledger_bench_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenario.runner import (
    ScenarioResult,
    ScenarioRunner,
    run_scenario,
)
from repro.scenario.spec import (
    ADVERSARY_KINDS,
    COALITION_KINDS,
    DEFAULT_BACKEND,
    RANDOM_1_2,
    TOPOLOGY_KINDS,
    AdversarySpec,
    ChurnSpec,
    IotaParams,
    PbftParams,
    ProtocolSpec,
    ScenarioError,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

__all__ = [
    "ADVERSARY_KINDS",
    "COALITION_KINDS",
    "DEFAULT_BACKEND",
    "RANDOM_1_2",
    "TOPOLOGY_KINDS",
    "AdversarySpec",
    "ChurnSpec",
    "IotaParams",
    "LedgerBackend",
    "PbftParams",
    "ProtocolSpec",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "backend_names",
    "bench_scenario",
    "build_topology",
    "create_backend",
    "fault_bench_scenario",
    "fig7_scenario",
    "fig8_scenario",
    "fig9_scenario",
    "get_scenario",
    "ledger_bench_scenario",
    "register_backend",
    "register_scenario",
    "run_scenario",
    "scenario_names",
]
