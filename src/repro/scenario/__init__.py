"""The unified scenario pipeline: declarative spec → runner → result.

One :class:`ScenarioSpec` declares a whole 2LDAG run — protocol knobs,
topology, workload (slots, validation, churn), adversaries, and seeds
— with JSON round-trip for committing and replaying scenarios.  A
:class:`ScenarioRunner` builds the deployment, drives it, and returns
a structured :class:`ScenarioResult`.  Named presets (``quickstart``,
``paper-fig7`` … ``attack-*``, ``bench-*``) live in the registry.

Every entry point in the repository — the CLI, the paper experiments,
the examples, the attack demos and the bench harness — constructs its
deployment through this package, so new scenarios are data, not code.
"""

from repro.scenario.registry import (
    bench_scenario,
    fig7_scenario,
    fig8_scenario,
    fig9_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenario.runner import (
    ScenarioResult,
    ScenarioRunner,
    build_topology,
    run_scenario,
)
from repro.scenario.spec import (
    ADVERSARY_KINDS,
    COALITION_KINDS,
    RANDOM_1_2,
    TOPOLOGY_KINDS,
    AdversarySpec,
    ChurnSpec,
    ProtocolSpec,
    ScenarioError,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

__all__ = [
    "ADVERSARY_KINDS",
    "COALITION_KINDS",
    "RANDOM_1_2",
    "TOPOLOGY_KINDS",
    "AdversarySpec",
    "ChurnSpec",
    "ProtocolSpec",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "bench_scenario",
    "build_topology",
    "fig7_scenario",
    "fig8_scenario",
    "fig9_scenario",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "scenario_names",
]
