"""Pluggable ledger backends: one scenario, three ledgers.

A :class:`LedgerBackend` is what a :class:`~repro.scenario.runner.
ScenarioRunner` drives: it builds a deployment from a
:class:`~repro.scenario.spec.ScenarioSpec`, advances it slot by slot,
drains it, snapshots the storage/traffic series and reports a
canonical trace digest.  The runner owns the *schedule* (sample slots,
fault boundaries, result assembly); the backend owns the *ledger* and
declares which fault event kinds it honours (``fault_capabilities``)
via the hooks the :class:`~repro.faults.engine.FaultEngine` dispatches
through — crash/rejoin are ledger-specific, while partition/heal and
link degradation come for free from the shared wireless substrate
(:meth:`LedgerBackend._fault_network`).

Three backends are registered:

* ``2ldag`` — the paper's two-layer DAG.  This class is a verbatim
  move of the runner's original wiring: construction order, stream
  names and the slot-driving calls are unchanged, so all seeded
  traces (the golden determinism digest included) stay byte-identical.
* ``pbft`` — the :class:`~repro.baselines.pbft.cluster.PbftCluster`
  baseline driven by the same slot workload (every live node submits
  one ``C``-bit request per slot).
* ``iota`` — the :class:`~repro.baselines.iota.node.IotaNetwork`
  gossip-flooded tangle under the same issuance workload.

All three reseed deterministically from the scenario's named random
streams, so one master seed yields the identical topology across
backends — the property that makes three-ledger scoreboards
apples-to-apples.  Registering a new backend::

    @register_backend
    class MyLedgerBackend(LedgerBackend):
        name = "myledger"
        ...

Backends must be registered before a spec naming them validates
(:func:`repro.scenario.spec.known_backend_names` reads this registry).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, Iterable, List, Optional, Tuple, Type

from repro.faults.engine import FaultCapabilityError
from repro.faults.spec import (
    FAULT_KINDS,
    HEAL,
    LINK_DEGRADE,
    NODE_CRASH,
    NODE_REJOIN,
    PARTITION,
    FaultError,
    FaultEvent,
)
from repro.metrics.units import bits_to_mb, bits_to_mbit
from repro.net.linkmodels import LinkDegradation, partition_drop_rule
from repro.net.topology import (
    Topology,
    grid_topology,
    random_geometric_topology,
    ring_topology,
    sequential_geometric_topology,
)
from repro.scenario.spec import (
    COALITION_KINDS,
    DEFAULT_BACKEND,
    ScenarioSpec,
    TopologySpec,
)
from repro.sim.rng import RandomStreams


def build_topology(spec: TopologySpec, streams: RandomStreams) -> Topology:
    """Materialize a :class:`TopologySpec` (random kinds draw from ``streams``)."""
    if spec.kind == "sequential-geometric":
        return sequential_geometric_topology(
            node_count=spec.node_count,
            area_side=spec.area_side,
            comm_range=spec.comm_range,
            streams=streams,
        )
    if spec.kind == "grid":
        return grid_topology(
            spec.rows, spec.cols, spacing=spec.spacing, comm_range=spec.comm_range
        )
    if spec.kind == "ring":
        return ring_topology(
            spec.node_count, spacing=spec.spacing, comm_range=spec.comm_range
        )
    if spec.kind == "random-geometric":
        return random_geometric_topology(
            node_count=spec.node_count,
            area_side=spec.area_side,
            comm_range=spec.comm_range,
            streams=streams,
        )
    raise ValueError(f"unknown topology kind {spec.kind!r}")  # pragma: no cover


def build_config(spec: ScenarioSpec):
    """The :class:`~repro.core.config.ProtocolConfig` a spec describes."""
    from repro.core.config import ProtocolConfig

    return ProtocolConfig(
        body_bits=spec.protocol.body_bits,
        gamma=spec.protocol.gamma,
        reply_timeout=spec.protocol.reply_timeout,
        puzzle_difficulty_bits=spec.protocol.puzzle_difficulty_bits,
    )


@dataclass
class BackendMetrics:
    """The backend-measured totals a :class:`ScenarioResult` reports."""

    total_blocks: int
    validations: int = 0
    success_rate: float = 1.0
    per_node_storage_mb: List[float] = field(default_factory=list)
    per_node_traffic_mb: List[float] = field(default_factory=list)
    events: int = 0
    sim_now: float = 0.0


class LedgerBackend(ABC):
    """build / advance / finish / measure one ledger implementation.

    The driving contract (enforced by the runner): :meth:`build` once,
    then :meth:`advance_slots` over contiguous slot ranges in order,
    then :meth:`finalize` once, after which :meth:`collect` and
    :meth:`trace_digest` describe the finished run.  :meth:`sample` may
    be called at any slot boundary, and :meth:`apply_fault` at any
    boundary between driven ranges (the fault engine's dispatch point).
    """

    #: Registry name; also the value of ``ScenarioSpec.backend``.
    name: ClassVar[str] = ""

    #: Fault event kinds this backend honours; spec validation checks a
    #: scenario's schedule (or compiled churn) against this roster, and
    #: :meth:`apply_fault` re-checks at dispatch time so a mid-run
    #: schedule swap cannot smuggle an unsupported event through.
    fault_capabilities: ClassVar[Tuple[str, ...]] = ()

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.streams: Optional[RandomStreams] = None
        self._partition_rule = None
        self._degradation: Optional[LinkDegradation] = None
        self._span_collector = None

    # -- fault hooks --------------------------------------------------------
    def apply_fault(self, event: FaultEvent) -> None:
        """Dispatch one due fault event to the kind-specific hook."""
        if event.kind not in self.fault_capabilities:
            raise FaultCapabilityError(
                backend=self.name, kind=event.kind,
                capabilities=self.fault_capabilities,
            )
        if event.kind == NODE_CRASH:
            self.crash_nodes(event.nodes)
        elif event.kind == NODE_REJOIN:
            self.rejoin_nodes(event.nodes, forgive=event.forgive)
        elif event.kind == PARTITION:
            self.set_partition(event.groups)
        elif event.kind == HEAL:
            self.heal_partition()
        elif event.kind == LINK_DEGRADE:
            self.degrade_links(event.loss, event.extra_latency)

    def crash_nodes(self, node_ids: Iterable[int]) -> None:
        """Take the named nodes down (ledger-specific semantics).

        Only reachable when a backend *declares* the capability but
        forgot the hook (``apply_fault`` gates undeclared kinds first),
        so the error names the missing implementation, not the roster.
        """
        raise FaultError(
            f"the {self.name} backend declares {NODE_CRASH!r} capability "
            f"but implements no crash_nodes()"
        )

    def rejoin_nodes(self, node_ids: Iterable[int], forgive: bool) -> None:
        """Bring previously crashed nodes back."""
        raise FaultError(
            f"the {self.name} backend declares {NODE_REJOIN!r} capability "
            f"but implements no rejoin_nodes()"
        )

    def _fault_network(self):
        """The :class:`~repro.net.transport.Network` link faults act on.

        Backends whose deployment rides the shared wireless substrate
        return it here and inherit working partition/heal/link-degrade
        hooks for free.
        """
        raise FaultError(
            f"the {self.name} backend declares link-level fault "
            f"capabilities but implements no _fault_network()"
        )

    def set_partition(self, groups) -> None:
        """Split the network along ``groups`` (cross-group hops drop)."""
        network = self._fault_network()
        self._partition_rule = partition_drop_rule(groups)
        network.add_drop_rule(self._partition_rule)

    def heal_partition(self) -> None:
        """Remove the active partition (schedule validation ensures one)."""
        if self._partition_rule is not None:
            self._fault_network().remove_drop_rule(self._partition_rule)
            self._partition_rule = None

    def degrade_links(self, loss: float, extra_latency: float) -> None:
        """Replace the active link degradation (zeros restore health).

        The loss rule draws from the scenario's named ``faults`` stream
        so degraded runs stay deterministic per master seed without
        perturbing any existing stream.
        """
        if self._degradation is not None:
            self._degradation.revoke()
            self._degradation = None
        if loss > 0 or extra_latency > 0:
            self._degradation = LinkDegradation(
                self._fault_network(), loss, extra_latency,
                rng=self.streams.get("faults"),
            )

    @abstractmethod
    def build(self) -> None:
        """Construct the deployment (topology, nodes, workload driver)."""

    @abstractmethod
    def advance_slots(self, start_slot: int, count: int) -> None:
        """Simulate ``count`` slots beginning at ``start_slot``."""

    @abstractmethod
    def finalize(self) -> None:
        """Drain in-flight work after the last slot was driven."""

    @abstractmethod
    def sample(self) -> Dict[str, float]:
        """One point of the storage/traffic series at the current slot."""

    @abstractmethod
    def collect(self) -> BackendMetrics:
        """Totals and per-node finals of the finished run."""

    @abstractmethod
    def trace_digest(self) -> str:
        """Hex SHA-256 over everything observable about the run."""

    # -- telemetry (pure observation) ---------------------------------------
    def telemetry_counters(self) -> Dict[str, float]:
        """Backend-specific monotonic counters for telemetry records.

        Implementations must be *pure reads* of existing state — no
        lazy materialization, no RNG draws, no event scheduling — which
        is what keeps telemetry-enabled runs byte-identical to disabled
        ones (the determinism no-op contract, CI-gated).
        """
        return {}

    def current_time(self) -> float:
        """The backend's simulated clock right now (pure read)."""
        return 0.0

    # -- block-lifecycle tracing (pure observation) -------------------------
    def enable_block_tracing(self, sample_rate: float) -> None:
        """Attach a span collector to the deployment's tracer.

        Must be called after :meth:`build` and before any slots are
        driven.  Like :meth:`telemetry_counters` this is strictly
        read-side: collectors subscribe to emissions the deployment
        already makes, never draw from existing random streams, and
        never schedule events — so seeded trace digests stay
        byte-identical with tracing on or off (the determinism no-op
        contract, pinned per backend).  Idempotent.
        """
        if self._span_collector is not None:
            return
        collector = self._make_span_collector(sample_rate)
        collector.attach(self._trace_tracer())
        self._span_collector = collector

    def _make_span_collector(self, sample_rate: float):
        """The backend-specific :class:`~repro.telemetry.spans.SpanCollector`."""
        raise NotImplementedError(
            f"the {self.name} backend does not support block tracing"
        )

    def _trace_tracer(self):
        """The deployment :class:`~repro.sim.tracing.Tracer` to subscribe to."""
        raise NotImplementedError(
            f"the {self.name} backend does not support block tracing"
        )

    def trace_block_events(self) -> List[Dict[str, object]]:
        """Every sampled block's finished span tree (pure drain).

        Empty when tracing was never enabled, so callers need no
        enabled-state branching.
        """
        if self._span_collector is None:
            return []
        return self._span_collector.block_traces()

    def trace_fault(self, event: FaultEvent, slot: int) -> None:
        """Annotate open traces with an applied fault (observer hook)."""
        if self._span_collector is not None:
            self._span_collector.fault_applied(event, slot, self.current_time())


#: name -> backend class.
_BACKENDS: Dict[str, Type[LedgerBackend]] = {}


def register_backend(cls: Type[LedgerBackend]) -> Type[LedgerBackend]:
    """Register ``cls`` under its ``name`` (class decorator)."""
    if not cls.name:
        raise ValueError(f"backend class {cls.__name__} declares no name")
    existing = _BACKENDS.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"ledger backend {cls.name!r} is already registered")
    _BACKENDS[cls.name] = cls
    return cls


def backend_names() -> List[str]:
    """All registered backend names, default first then sorted."""
    others = sorted(name for name in _BACKENDS if name != DEFAULT_BACKEND)
    return [DEFAULT_BACKEND] + others if DEFAULT_BACKEND in _BACKENDS else others


def backend_fault_capabilities(name: str) -> Tuple[str, ...]:
    """The fault event kinds the named backend declares support for."""
    return tuple(_BACKENDS[name].fault_capabilities)


def create_backend(spec: ScenarioSpec) -> LedgerBackend:
    """The backend instance ``spec.backend`` names (spec validation
    guarantees the name is registered)."""
    return _BACKENDS[spec.backend](spec)


# -- the paper's protocol ------------------------------------------------------

@register_backend
class TwoLayerDagBackend(LedgerBackend):
    """The 2LDAG deployment plus its slot workload.

    The construction recipe is deliberately frozen: one
    :class:`RandomStreams` per scenario seeds the topology and the
    adversary coalitions, and the same seed masters the deployment's
    internal streams.  Any change to this ordering changes seeded
    traces, which the golden-trace determinism test pins.
    """

    name = DEFAULT_BACKEND
    fault_capabilities = FAULT_KINDS

    def __init__(self, spec: ScenarioSpec) -> None:
        super().__init__(spec)
        self.deployment = None
        self.workload = None
        self.behaviors: Dict[int, object] = {}
        self.sybil_identities: List[object] = []

    def build(self) -> None:
        from repro.attacks.behaviors import (
            CorruptResponder,
            EquivocatingResponder,
            SelfishNode,
            SilentResponder,
        )
        from repro.attacks.eclipse import eclipse_victim
        from repro.attacks.majority import make_coalition
        from repro.attacks.sybil import sybil_identities
        from repro.core.protocol import SlotSimulation, TwoLayerDagNetwork

        behavior_factories: Dict[str, Callable[[], object]] = {
            "silent": SilentResponder,
            "corrupt": CorruptResponder,
            "equivocating": EquivocatingResponder,
            "selfish": SelfishNode,
        }

        spec = self.spec
        self.streams = RandomStreams(spec.seed)
        topology = build_topology(spec.topology, self.streams)

        behaviors: Dict[int, object] = {}
        drop_rules = []
        for adversary in spec.adversaries:
            if adversary.kind in COALITION_KINDS:
                coalition = make_coalition(
                    topology,
                    adversary.count,
                    self.streams,
                    stream_name=adversary.stream_name,
                    behavior_factory=behavior_factories[adversary.kind],
                    protect=sorted(set(adversary.protect) | set(behaviors)),
                )
                behaviors.update(coalition)
            elif adversary.kind == "eclipse":
                drop_rules.append(eclipse_victim(adversary.victim))
            elif adversary.kind == "sybil":
                self.sybil_identities.extend(
                    sybil_identities(adversary.attacker, adversary.count)
                )
        self.behaviors = behaviors

        self.deployment = TwoLayerDagNetwork(
            config=build_config(spec),
            topology=topology,
            seed=spec.seed,
            behaviors=behaviors or None,
            per_hop_latency=spec.per_hop_latency,
        )
        for rule in drop_rules:
            self.deployment.network.add_drop_rule(rule)

        workload = spec.workload
        self.workload = SlotSimulation(
            self.deployment,
            generation_period=workload.generation_period,
            validate=workload.validate,
            validation_min_age_slots=workload.validation_min_age_slots,
            intra_slot_jitter=workload.intra_slot_jitter,
            fetch_body=workload.fetch_body,
        )

    def advance_slots(self, start_slot: int, count: int) -> None:
        self.workload.run(count, start_slot=start_slot)

    def finalize(self) -> None:
        if self.spec.workload.run_until_quiet:
            self.workload.run_until_quiet(
                max_extra_time=self.spec.workload.quiet_time
            )

    def sample(self) -> Dict[str, float]:
        from repro.core.protocol import CATEGORY_DAG, CATEGORY_POP

        deployment = self.deployment
        nodes = deployment.node_ids
        ledger = deployment.traffic
        return {
            "storage_mb": bits_to_mb(deployment.mean_storage_bits()),
            "traffic_mbit": bits_to_mbit(ledger.mean_tx_bits(nodes)),
            "traffic_dag_mbit": bits_to_mbit(
                ledger.mean_tx_bits(nodes, [CATEGORY_DAG])
            ),
            "traffic_pop_mbit": bits_to_mbit(
                ledger.mean_tx_bits(nodes, [CATEGORY_POP])
            ),
        }

    def collect(self) -> BackendMetrics:
        deployment, workload = self.deployment, self.workload
        return BackendMetrics(
            total_blocks=workload.total_blocks(),
            validations=len(workload.validations),
            success_rate=workload.success_rate(),
            per_node_storage_mb=[
                bits_to_mb(node.storage_bits())
                for node in deployment.nodes.values()
            ],
            per_node_traffic_mb=[
                bits_to_mb(deployment.traffic.total_bits(n))
                for n in deployment.node_ids
            ],
            events=deployment.sim.processed_count,
            sim_now=deployment.sim.now,
        )

    def trace_digest(self) -> str:
        from repro.bench.trace import slot_simulation_trace_digest

        return slot_simulation_trace_digest(self.workload)

    def telemetry_counters(self) -> Dict[str, float]:
        from repro.core.pop.messages import KIND_REQ_CHILD, KIND_RPY_CHILD

        workload, deployment = self.workload, self.deployment
        return {
            "blocks": float(workload.total_blocks()),
            "validations": float(len(workload.validations)),
            "pop_batches": float(
                deployment.traffic.message_count(KIND_REQ_CHILD)
            ),
            "pop_replies": float(
                deployment.traffic.message_count(KIND_RPY_CHILD)
            ),
            "events": float(deployment.sim.processed_count),
        }

    def current_time(self) -> float:
        return float(self.deployment.sim.now)

    def _make_span_collector(self, sample_rate: float):
        from repro.telemetry.spans import DagSpanCollector

        return DagSpanCollector(self.spec.seed, sample_rate)

    def _trace_tracer(self):
        return self.deployment.tracer

    # -- faults ------------------------------------------------------------
    # (the crash/rejoin bodies are the original churn hooks verbatim,
    # which is what keeps compiled ChurnSpec traces byte-identical)
    def crash_nodes(self, node_ids: Iterable[int]) -> None:
        for node_id in node_ids:
            self.deployment.node(node_id).go_offline()

    def rejoin_nodes(self, node_ids: Iterable[int], forgive: bool) -> None:
        for node_id in node_ids:
            self.deployment.node(node_id).come_online()
            if forgive:
                for other in self.deployment.node_ids:
                    self.deployment.node(other).record_cooperation(node_id)

    def _fault_network(self):
        return self.deployment.network


# -- baselines -----------------------------------------------------------------

def _digest_lines(lines: List[str]) -> str:
    """Hex SHA-256 of canonical text lines (same framing as bench traces)."""
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


@register_backend
class PbftBackend(LedgerBackend):
    """The PBFT cluster baseline driven by the scenario workload.

    The topology is rebuilt from the scenario's named streams — one
    master seed gives the identical physical graph the 2LDAG run saw.
    ``workload.validate``/``fetch_body`` have no PBFT equivalent and
    are ignored; every committed request already replicates its block
    to all replicas.  All traffic is consensus traffic, so the DAG
    series is zero and the PoP series carries the total.
    """

    name = "pbft"
    fault_capabilities = FAULT_KINDS

    def __init__(self, spec: ScenarioSpec) -> None:
        super().__init__(spec)
        self.cluster = None

    def build(self) -> None:
        from repro.baselines.pbft.cluster import PbftCluster

        spec = self.spec
        self.streams = RandomStreams(spec.seed)
        topology = build_topology(spec.topology, self.streams)
        self.cluster = PbftCluster(
            topology=topology,
            payload_bits=spec.protocol.body_bits,
            seed=spec.seed,
            view_change_timeout=spec.pbft.view_change_timeout,
            per_hop_latency=spec.per_hop_latency,
        )

    def advance_slots(self, start_slot: int, count: int) -> None:
        # run_slots settles the three-phase pipeline after the chunk, so
        # a sample taken at the boundary sees committed state.
        self.cluster.run_slots(count, settle_time=self.spec.pbft.settle_time)

    def finalize(self) -> None:
        pass  # every driven chunk already settled

    # -- faults ------------------------------------------------------------
    def crash_nodes(self, node_ids: Iterable[int]) -> None:
        self.cluster.crash(node_ids)

    def rejoin_nodes(self, node_ids: Iterable[int], forgive: bool) -> None:
        # PBFT keeps no cooperation blacklist; ``forgive`` is meaningless.
        self.cluster.recover(node_ids)

    def _fault_network(self):
        return self.cluster.network

    def sample(self) -> Dict[str, float]:
        cluster = self.cluster
        total = bits_to_mbit(cluster.traffic.mean_tx_bits(cluster.node_ids))
        return {
            "storage_mb": bits_to_mb(cluster.mean_storage_bits()),
            "traffic_mbit": total,
            "traffic_dag_mbit": 0.0,
            "traffic_pop_mbit": total,
        }

    def _reference_replicas(self):
        """Live replicas, or all of them when the whole cluster is down
        (a schedule may legitimately end mid-crash)."""
        return self.cluster.live_replicas() or list(self.cluster.replicas.values())

    def collect(self) -> BackendMetrics:
        cluster = self.cluster
        return BackendMetrics(
            total_blocks=max(r.chain.height for r in self._reference_replicas()),
            per_node_storage_mb=[
                bits_to_mb(cluster.replicas[n].storage_bits())
                for n in cluster.node_ids
            ],
            per_node_traffic_mb=[
                bits_to_mb(cluster.traffic.total_bits(n))
                for n in cluster.node_ids
            ],
            events=cluster.sim.processed_count,
            sim_now=cluster.sim.now,
        )

    def trace_digest(self) -> str:
        cluster = self.cluster
        lines: List[str] = []
        longest = max(
            (r.chain for r in self._reference_replicas()), key=lambda c: c.height
        )
        for sequence in range(longest.height):
            lines.append(
                f"commit {sequence}: {longest.block_at(sequence).digest().hex()}"
            )
        for node_id in cluster.node_ids:
            replica = cluster.replicas[node_id]
            lines.append(
                f"replica {node_id} height {replica.chain.height} "
                f"crashed={replica.crashed}"
            )
        lines.append(f"events {cluster.sim.processed_count}")
        lines.append(f"now {cluster.sim.now!r}")
        return _digest_lines(lines)

    def telemetry_counters(self) -> Dict[str, float]:
        cluster = self.cluster
        return {
            "consensus_rounds": float(
                max(r.chain.height for r in self._reference_replicas())
            ),
            "events": float(cluster.sim.processed_count),
        }

    def current_time(self) -> float:
        return float(self.cluster.sim.now)

    def _make_span_collector(self, sample_rate: float):
        from repro.telemetry.spans import PbftSpanCollector

        # Confirmation = the (2f+1)-th replica executing the request;
        # by then a client would hold f+1 matching replies.
        any_replica = next(iter(self.cluster.replicas.values()))
        return PbftSpanCollector(
            self.spec.seed, sample_rate, quorum=2 * any_replica.f + 1
        )

    def _trace_tracer(self):
        return self.cluster.network.tracer


@register_backend
class IotaBackend(LedgerBackend):
    """The IOTA tangle baseline driven by the scenario workload.

    Same named-stream topology rebuild as the other backends; each node
    issues one ``C``-bit transaction per slot and gossip-floods it.
    All traffic is DAG-construction traffic, so the PoP series is zero.
    """

    name = "iota"
    fault_capabilities = FAULT_KINDS

    def __init__(self, spec: ScenarioSpec) -> None:
        super().__init__(spec)
        self.network = None

    def build(self) -> None:
        from repro.baselines.iota.node import IotaNetwork

        spec = self.spec
        self.streams = RandomStreams(spec.seed)
        topology = build_topology(spec.topology, self.streams)
        self.network = IotaNetwork(
            topology=topology,
            payload_bits=spec.protocol.body_bits,
            seed=spec.seed,
            tip_strategy=spec.iota.tip_strategy,
            mcmc_alpha=spec.iota.mcmc_alpha,
            per_hop_latency=spec.per_hop_latency,
        )

    def advance_slots(self, start_slot: int, count: int) -> None:
        self.network.run_slots(count, settle_time=self.spec.iota.settle_time)

    def finalize(self) -> None:
        pass  # every driven chunk already settled

    # -- faults ------------------------------------------------------------
    def crash_nodes(self, node_ids: Iterable[int]) -> None:
        for node_id in node_ids:
            self.network.nodes[node_id].online = False

    def rejoin_nodes(self, node_ids: Iterable[int], forgive: bool) -> None:
        # The tangle keeps no cooperation blacklist; ``forgive`` is a
        # no-op.  A rejoined node resumes issuing and gossiping but
        # does not fetch the transactions it missed (no solidification
        # protocol in this baseline) — the honest cost the fault
        # experiments measure.
        for node_id in node_ids:
            self.network.nodes[node_id].online = True

    def _fault_network(self):
        return self.network.network

    def sample(self) -> Dict[str, float]:
        network = self.network
        total = bits_to_mbit(network.traffic.mean_tx_bits(network.node_ids))
        return {
            "storage_mb": bits_to_mb(network.mean_storage_bits()),
            "traffic_mbit": total,
            "traffic_dag_mbit": total,
            "traffic_pop_mbit": 0.0,
        }

    def collect(self) -> BackendMetrics:
        network = self.network
        return BackendMetrics(
            total_blocks=max(len(n.tangle) for n in network.nodes.values()),
            per_node_storage_mb=[
                bits_to_mb(network.nodes[n].storage_bits())
                for n in network.node_ids
            ],
            per_node_traffic_mb=[
                bits_to_mb(network.traffic.total_bits(n))
                for n in network.node_ids
            ],
            events=network.sim.processed_count,
            sim_now=network.sim.now,
        )

    def trace_digest(self) -> str:
        network = self.network
        reference = max(
            (node.tangle for node in network.nodes.values()), key=len
        )
        lines: List[str] = []
        for digest_hex in sorted(
            transaction.digest().hex() for transaction in reference.transactions()
        ):
            lines.append(f"tx {digest_hex}")
        for node_id in network.node_ids:
            node = network.nodes[node_id]
            lines.append(f"node {node_id} tangle {len(node.tangle)}")
        lines.append(f"tips {len(reference.tips())}")
        lines.append(f"events {network.sim.processed_count}")
        lines.append(f"now {network.sim.now!r}")
        return _digest_lines(lines)

    def telemetry_counters(self) -> Dict[str, float]:
        network = self.network
        return {
            "tangle_size": float(
                max(len(node.tangle) for node in network.nodes.values())
            ),
            "events": float(network.sim.processed_count),
        }

    def current_time(self) -> float:
        return float(self.network.sim.now)

    def _make_span_collector(self, sample_rate: float):
        from repro.telemetry.spans import IotaSpanCollector

        return IotaSpanCollector(self.spec.seed, sample_rate)

    def _trace_tracer(self):
        return self.network.network.tracer
