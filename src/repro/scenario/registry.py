"""Named scenario presets.

The registry maps stable names to :class:`ScenarioSpec` factories so
canonical runs — the paper figures, the README quickstart, the attack
demos, the bench macro workload — are discoverable (``python -m repro
scenarios list``), exportable (``scenarios show NAME > spec.json``) and
replayable (``simulate --scenario NAME``) without touching code.

Factories, not constants: every lookup builds a fresh spec, so callers
may freely derive variants with :func:`dataclasses.replace`.

The parameterized builders (:func:`fig7_scenario`,
:func:`fig8_scenario`, :func:`fig9_scenario`, :func:`bench_scenario`)
are what the experiment and bench layers call; the presets are those
builders evaluated at their canonical parameters.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, List, Optional

from repro.experiments.common import ExperimentScale
from repro.faults.presets import build_fault_preset
from repro.metrics.units import mb_to_bits
from repro.scenario.spec import (
    RANDOM_1_2,
    AdversarySpec,
    ChurnSpec,
    ProtocolSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

#: name -> zero-argument spec factory.
_REGISTRY: Dict[str, Callable[[], ScenarioSpec]] = {}


def register_scenario(factory: Callable[[], ScenarioSpec]) -> Callable[[], ScenarioSpec]:
    """Register ``factory`` under the name of the spec it builds."""
    spec = factory()
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = factory
    return factory


def scenario_names() -> List[str]:
    """All registered preset names, sorted."""
    return sorted(_REGISTRY)


def get_scenario(name: str) -> ScenarioSpec:
    """The preset spec for ``name``; raises ``KeyError`` with the roster."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        )
    return factory()


# -- parameterized builders (experiment/bench backbone) -----------------------

def fig7_scenario(
    body_mb: float, scale: Optional[ExperimentScale] = None
) -> ScenarioSpec:
    """The Fig. 7 storage run: 1 block/slot/node, γ = ⌈|V|/3⌉."""
    if scale is None:
        scale = ExperimentScale.from_env()
    gamma = max(1, round(scale.node_count / 3))
    return ScenarioSpec(
        name=f"fig7-C{body_mb}",
        description=f"Fig. 7 storage workload, C = {body_mb} MB",
        protocol=ProtocolSpec.paper(gamma=gamma, body_mb=body_mb),
        topology=TopologySpec(node_count=scale.node_count),
        workload=WorkloadSpec(
            slots=scale.slots,
            generation_period=1,
            validate=scale.validation,
            sample_slots=tuple(scale.sample_slots),
        ),
        seed=scale.seed,
        scale=scale,
    )


def fig8_scenario(
    tolerance_fraction: float, scale: Optional[ExperimentScale] = None
) -> ScenarioSpec:
    """One Fig. 8 communication run at a malicious-tolerance fraction."""
    if scale is None:
        scale = ExperimentScale.from_env()
    gamma = max(1, math.ceil(scale.node_count * tolerance_fraction))
    return ScenarioSpec(
        name=f"fig8-{round(tolerance_fraction * 100)}pct",
        description=(
            f"Fig. 8 communication workload, "
            f"{round(tolerance_fraction * 100)}% malicious tolerance"
        ),
        protocol=ProtocolSpec.paper(gamma=gamma, body_mb=0.5),
        topology=TopologySpec(node_count=scale.node_count),
        workload=WorkloadSpec(
            slots=scale.slots,
            generation_period=1,
            validate=True,
            sample_slots=tuple(scale.sample_slots),
        ),
        seed=scale.seed,
        scale=scale,
    )


def fig9_scenario(
    gamma: int,
    malicious: int,
    slots: int,
    scale: Optional[ExperimentScale] = None,
) -> ScenarioSpec:
    """One Fig. 9 consensus-time run: a silent coalition of ``malicious``.

    Per the paper's workload each node generates one block per one or
    two slots; the short reply timeout and fast links keep each probe's
    sim-time well under a slot even with many silent responders.
    """
    if scale is None:
        scale = ExperimentScale.from_env()
    adversaries = ()
    if malicious > 0:
        adversaries = (AdversarySpec(kind="silent", count=malicious),)
    return ScenarioSpec(
        name=f"fig9-g{gamma}-m{malicious}",
        description=(
            f"Fig. 9 consensus workload, gamma={gamma}, "
            f"{malicious} PoP-silent nodes"
        ),
        protocol=ProtocolSpec(
            body_bits=mb_to_bits(0.5), gamma=gamma, reply_timeout=0.02
        ),
        topology=TopologySpec(node_count=scale.node_count),
        workload=WorkloadSpec(
            slots=slots, generation_period=RANDOM_1_2, validate=False
        ),
        adversaries=adversaries,
        seed=scale.seed + malicious,
        per_hop_latency=0.0001,
        scale=scale,
    )


def bench_scenario(fast: bool) -> ScenarioSpec:
    """The bench harness's macro slot-simulation workload."""
    return ScenarioSpec(
        name="bench-fast" if fast else "bench-full",
        description=(
            "benchmark macro workload "
            + ("(smoke scale)" if fast else "(full scale)")
        ),
        protocol=ProtocolSpec.paper(gamma=3 if fast else 4, body_mb=0.1),
        topology=TopologySpec(node_count=12 if fast else 20),
        workload=WorkloadSpec(
            slots=25 if fast else 100,
            generation_period=1,
            validate=True,
            run_until_quiet=True,
        ),
        seed=7,
    )


def fault_bench_scenario(fast: bool) -> ScenarioSpec:
    """The bench macro workload under a mid-run crash + rejoin.

    The ``slot_sim_faults`` bench row: identical to
    :func:`bench_scenario` except a quarter of the nodes crash a third
    of the way in and rejoin at two thirds, so the row tracks the cost
    of fault-engine boundaries plus degraded-then-recovering workloads
    over time.
    """
    base = bench_scenario(fast)
    return dataclasses.replace(
        base,
        name=f"{base.name}-faults",
        description=base.description + " under mid-run crash + rejoin",
        workload=dataclasses.replace(
            base.workload,
            faults=build_fault_preset(
                "mid-crash", base.topology.size, base.workload.slots
            ),
        ),
    )


def ledger_bench_scenario(backend: str, fast: bool) -> ScenarioSpec:
    """The bench harness's baseline macro workloads (PBFT/IOTA rows).

    Deliberately smaller than the 2LDAG macro: a fully simulated PBFT
    slot costs O(|V|²) routed control messages, so the row stays a
    sub-second wall-clock probe rather than a stress test.
    """
    suffix = "-fast" if fast else ""
    return ScenarioSpec(
        name=f"bench-{backend}{suffix}",
        description=f"benchmark {backend} macro workload"
        + (" (smoke scale)" if fast else " (full scale)"),
        backend=backend,
        protocol=ProtocolSpec.paper(gamma=3, body_mb=0.1),
        topology=TopologySpec(node_count=10 if fast else 12),
        workload=WorkloadSpec(slots=6 if fast else 15, generation_period=1),
        seed=7,
    )


# -- presets -------------------------------------------------------------------

@register_scenario
def _quickstart() -> ScenarioSpec:
    return ScenarioSpec(
        name="quickstart",
        description="9-node grid, 30 slots, small blocks — the README walk-through",
        protocol=ProtocolSpec(body_bits=8_000, gamma=3),
        topology=TopologySpec(kind="grid", rows=3, cols=3),
        workload=WorkloadSpec(slots=30, generation_period=1),
        seed=7,
    )


@register_scenario
def _headline() -> ScenarioSpec:
    scale = ExperimentScale.paper()
    spec = fig8_scenario(0.33, scale)
    return ScenarioSpec(
        name="headline",
        description=(
            "the abstract's headline workload: paper-scale C=0.5 MB run at "
            "33% tolerance (the storage/communication ratio denominators)"
        ),
        protocol=spec.protocol,
        topology=spec.topology,
        workload=spec.workload,
        seed=spec.seed,
        scale=scale,
    )


@register_scenario
def _paper_fig7() -> ScenarioSpec:
    spec = fig7_scenario(0.5, ExperimentScale.paper())
    return ScenarioSpec(
        name="paper-fig7",
        description="Fig. 7(b) storage run at paper scale (C = 0.5 MB)",
        protocol=spec.protocol,
        topology=spec.topology,
        workload=spec.workload,
        seed=spec.seed,
        scale=spec.scale,
    )


@register_scenario
def _paper_fig8() -> ScenarioSpec:
    spec = fig8_scenario(0.33, ExperimentScale.paper())
    return ScenarioSpec(
        name="paper-fig8",
        description="Fig. 8 communication run at paper scale (33% tolerance)",
        protocol=spec.protocol,
        topology=spec.topology,
        workload=spec.workload,
        seed=spec.seed,
        scale=spec.scale,
    )


@register_scenario
def _paper_fig9() -> ScenarioSpec:
    scale = ExperimentScale.paper()
    spec = fig9_scenario(gamma=10, malicious=5, slots=50, scale=scale)
    return ScenarioSpec(
        name="paper-fig9",
        description=(
            "Fig. 9(a) consensus run at paper scale "
            "(gamma=10, 5 PoP-silent nodes)"
        ),
        protocol=spec.protocol,
        topology=spec.topology,
        workload=spec.workload,
        adversaries=spec.adversaries,
        seed=spec.seed,
        per_hop_latency=spec.per_hop_latency,
        scale=scale,
    )


@register_scenario
def _attack_majority() -> ScenarioSpec:
    return ScenarioSpec(
        name="attack-majority",
        description=(
            "30-node network with a mixed captured coalition: 4 PoP-silent "
            "+ 2 header-forging nodes (the Fig. 5 / §IV-D demo)"
        ),
        protocol=ProtocolSpec.paper(gamma=9, body_mb=0.1, reply_timeout=0.05),
        topology=TopologySpec(node_count=30),
        workload=WorkloadSpec(slots=40, generation_period=1),
        adversaries=(
            AdversarySpec(kind="silent", count=4, protect=(0, 1), stream_name="silent"),
            AdversarySpec(kind="corrupt", count=2, protect=(0, 1), stream_name="corrupt"),
        ),
        seed=99,
    )


@register_scenario
def _attack_eclipse() -> ScenarioSpec:
    return ScenarioSpec(
        name="attack-eclipse",
        description=(
            "9-node grid with node 4's PoP traffic eclipsed by a drop rule "
            "(§IV-D-4): the victim cannot reach consensus, everyone else can"
        ),
        protocol=ProtocolSpec(body_bits=8_000, gamma=2),
        topology=TopologySpec(kind="grid", rows=3, cols=3),
        workload=WorkloadSpec(slots=20, generation_period=1),
        adversaries=(AdversarySpec(kind="eclipse", victim=4),),
        seed=2,
    )


@register_scenario
def _attack_sybil() -> ScenarioSpec:
    return ScenarioSpec(
        name="attack-sybil",
        description=(
            "9-node grid plus 5 fabricated identities controlled by node 3 "
            "(§IV-D-3): forged headers fail the key-registry check"
        ),
        protocol=ProtocolSpec(body_bits=8_000, gamma=2),
        topology=TopologySpec(kind="grid", rows=3, cols=3),
        workload=WorkloadSpec(slots=20, generation_period=1),
        adversaries=(AdversarySpec(kind="sybil", attacker=3, count=5),),
        seed=2,
    )


@register_scenario
def _churn() -> ScenarioSpec:
    return ScenarioSpec(
        name="churn",
        description=(
            "18 sensors; a third duty-cycle offline for 10 slots mid-run and "
            "rejoin with blacklist forgiveness (§VII dynamic membership)"
        ),
        protocol=ProtocolSpec(body_bits=80_000, gamma=5, reply_timeout=0.1),
        topology=TopologySpec(node_count=18),
        workload=WorkloadSpec(
            slots=35,
            generation_period=1,
            churn=ChurnSpec(
                offline_nodes=(3, 6, 9, 12, 15, 17),
                offline_slot=15,
                rejoin_slot=25,
            ),
        ),
        seed=77,
    )


@register_scenario
def _fault_demo() -> ScenarioSpec:
    return ScenarioSpec(
        name="fault-demo",
        description=(
            "16 sensors surviving the 'stress' fault timeline: degraded "
            "links, a crashed view-0 primary, a mid-run partition, full "
            "recovery — runs on any backend via --backend"
        ),
        protocol=ProtocolSpec(body_bits=80_000, gamma=4, reply_timeout=0.1),
        topology=TopologySpec(node_count=16),
        workload=WorkloadSpec(
            slots=24,
            generation_period=1,
            faults=build_fault_preset("stress", 16, 24),
        ),
        seed=42,
    )


@register_scenario
def _digital_twin() -> ScenarioSpec:
    return ScenarioSpec(
        name="digital-twin",
        description=(
            "25-sensor factory floor streaming 0.1 MB readings for 60 slots "
            "— the paper's §I Metaverse audit scenario"
        ),
        protocol=ProtocolSpec.paper(gamma=8, body_mb=0.1),
        topology=TopologySpec(node_count=25),
        workload=WorkloadSpec(slots=60, generation_period=1),
        seed=2024,
    )


@register_scenario
def _ledger_comparison() -> ScenarioSpec:
    return ScenarioSpec(
        name="ledger-comparison",
        description=(
            "12 nodes, 12 slots, 20 kB blocks with generation-time PoP — "
            "the live 2LDAG side of the three-ledger scoreboard"
        ),
        protocol=ProtocolSpec(body_bits=160_000, gamma=4, reply_timeout=0.1),
        topology=TopologySpec(node_count=12),
        workload=WorkloadSpec(
            slots=12,
            generation_period=1,
            validate=True,
            validation_min_age_slots=6,
            run_until_quiet=True,
        ),
        seed=5,
    )


@register_scenario
def _partial_audit() -> ScenarioSpec:
    return ScenarioSpec(
        name="partial-audit",
        description=(
            "9-node grid with 250 kB bodies — chunk proofs and the wire "
            "format round-trip"
        ),
        protocol=ProtocolSpec(body_bits=2_000_000, gamma=3),
        topology=TopologySpec(kind="grid", rows=3, cols=3),
        workload=WorkloadSpec(slots=20, generation_period=1),
        seed=3,
    )


@register_scenario
def _bench_fast() -> ScenarioSpec:
    return bench_scenario(fast=True)


@register_scenario
def _bench_full() -> ScenarioSpec:
    return bench_scenario(fast=False)
