"""Run a :class:`~repro.scenario.spec.ScenarioSpec` end to end.

:class:`ScenarioRunner` is the only place in the codebase that wires a
deployment from declarative input — every entry point (CLI, paper
experiments, examples, attack demos, the bench harness) goes through
it, so scenario construction is defined exactly once and seeded traces
stay byte-identical across callers.

The runner does not construct ledgers itself: it dispatches through
the backend registry (:mod:`repro.scenario.backends`) on
``spec.backend`` — ``"2ldag"`` (the paper's protocol, the default),
``"pbft"`` or ``"iota"`` — and owns only the schedule: slot
boundaries, fault-timeline application (via the
:class:`~repro.faults.engine.FaultEngine`), series sampling and result
assembly.  The same spec therefore runs on any registered ledger, and
every result carries the same series/digest shape.

The 2LDAG construction recipe is deliberately frozen: one
:class:`~repro.sim.rng.RandomStreams` per scenario seeds the topology
and the adversary coalitions, and the same seed masters the
deployment's internal streams.  Any change to this ordering changes
seeded traces, which the golden-trace determinism test pins.

Typical use::

    runner = ScenarioRunner(get_scenario("quickstart"))
    result = runner.run()          # -> ScenarioResult (pure data)
    runner.deployment              # the live network, for follow-up audits
    runner.workload                # the finished SlotSimulation

Long-form use (probes or audits between slots)::

    runner = ScenarioRunner(spec).build()
    runner.advance_to(15)
    ...  # interact with runner.deployment mid-run
    result = runner.finish()
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faults.engine import FaultEngine
from repro.metrics.reporting import format_series_table
from repro.scenario.backends import (  # noqa: F401  (re-exported API)
    LedgerBackend,
    backend_names,
    build_config,
    build_topology,
    create_backend,
    register_backend,
)
from repro.scenario.spec import ScenarioSpec

#: The series every backend samples, in canonical order.
SERIES_KEYS = (
    "storage_mb", "traffic_mbit", "traffic_dag_mbit", "traffic_pop_mbit"
)


@dataclass
class ScenarioResult:
    """Everything measurable about one finished scenario — pure data.

    Serializes directly through
    :func:`repro.experiments.persistence.save_results` (every leaf is a
    JSON primitive) and renders through
    :func:`repro.metrics.reporting.format_series_table` via
    :meth:`to_table`.
    """

    spec: ScenarioSpec
    sample_slots: List[int]
    total_blocks: int
    validations: int
    success_rate: float
    storage_mb: List[float]
    traffic_mbit: List[float]
    traffic_dag_mbit: List[float]
    traffic_pop_mbit: List[float]
    per_node_storage_mb: List[float] = field(default_factory=list)
    per_node_traffic_mb: List[float] = field(default_factory=list)
    events: int = 0
    sim_now: float = 0.0
    trace_sha256: str = ""

    @property
    def series(self) -> Dict[str, List[float]]:
        """The sampled series keyed by metric name."""
        return {
            "storage_mb": self.storage_mb,
            "traffic_mbit": self.traffic_mbit,
            "traffic_dag_mbit": self.traffic_dag_mbit,
            "traffic_pop_mbit": self.traffic_pop_mbit,
        }

    def to_table(self) -> str:
        """The sampled series as an aligned text table."""
        return format_series_table("slots", self.sample_slots, self.series)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict (round-trips through :meth:`from_dict`).

        This is the payload format campaign cells of kind ``scenario``
        return: every leaf is a JSON primitive, so results can cross
        process boundaries and live in the on-disk result cache.
        """
        return {
            "spec": self.spec.to_dict(),
            "sample_slots": list(self.sample_slots),
            "total_blocks": self.total_blocks,
            "validations": self.validations,
            "success_rate": self.success_rate,
            "storage_mb": list(self.storage_mb),
            "traffic_mbit": list(self.traffic_mbit),
            "traffic_dag_mbit": list(self.traffic_dag_mbit),
            "traffic_pop_mbit": list(self.traffic_pop_mbit),
            "per_node_storage_mb": list(self.per_node_storage_mb),
            "per_node_traffic_mb": list(self.per_node_traffic_mb),
            "events": self.events,
            "sim_now": self.sim_now,
            "trace_sha256": self.trace_sha256,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output."""
        data = dict(payload)
        spec = ScenarioSpec.from_dict(data.pop("spec"))
        known = {f.name for f in dataclasses.fields(cls)} - {"spec"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ScenarioResult field(s): {', '.join(sorted(unknown))}"
            )
        return cls(spec=spec, **data)

    def summary(self) -> str:
        """A compact human-readable digest of the run."""
        lines = [
            f"scenario {self.spec.name}: {self.spec.node_count} nodes, "
            f"{self.spec.workload.slots} slots, seed {self.spec.seed}, "
            f"backend {self.spec.backend}",
            f"blocks generated: {self.total_blocks}",
        ]
        if self.validations:
            lines.append(
                f"validations: {self.validations} "
                f"(success rate {self.success_rate:.3f})"
            )
        lines.append(f"mean storage/node: {self.storage_mb[-1]:.2f} MB")
        lines.append(f"mean transmit/node: {self.traffic_mbit[-1]:.3f} Mbit")
        lines.append(f"trace sha256: {self.trace_sha256}")
        return "\n".join(lines)


class ScenarioRunner:
    """spec → backend deployment → result, the shared pipeline.

    After :meth:`build` (or lazily on first use) the live objects are
    exposed for follow-up interaction: ``backend`` (the
    :class:`~repro.scenario.backends.LedgerBackend` instance),
    ``streams`` (the scenario's master random source), and — when the
    2LDAG backend is driving — ``deployment``, ``workload``,
    ``behaviors`` (the adversary roster actually installed) and
    ``sybil_identities``; they stay ``None``/empty on the baseline
    backends.
    """

    def __init__(self, spec: ScenarioSpec, telemetry=None, spans=None) -> None:
        self.spec = spec
        self.backend: Optional[LedgerBackend] = None
        self.deployment = None
        self.workload = None
        self.streams = None
        self.behaviors: Dict[int, object] = {}
        self.sybil_identities: List[object] = []
        self.fault_engine: Optional[FaultEngine] = None
        #: Optional :class:`~repro.telemetry.events.TelemetryRecorder`.
        #: Strictly write-only observation: every value handed to it is
        #: a pure read the runner performs anyway (or an extra pure
        #: read), and it never changes which slot boundaries are driven
        #: — so traces are byte-identical with telemetry on or off.
        self.telemetry = telemetry
        #: Optional :class:`~repro.telemetry.spans.SpanRecorder` — the
        #: block-lifecycle tracing twin, bound by the same no-op
        #: contract (collectors subscribe to existing tracer emissions
        #: and never touch simulation state).
        self.spans = spans
        self._next_slot = 0
        self._sampled: Dict[int, Dict[str, float]] = {}

    # -- construction ------------------------------------------------------
    def build(self) -> "ScenarioRunner":
        """Wire the backend's deployment and workload; idempotent."""
        if self.backend is not None:
            return self
        backend = create_backend(self.spec)
        backend.build()
        self.backend = backend
        self.streams = backend.streams
        self.deployment = getattr(backend, "deployment", None)
        self.workload = getattr(backend, "workload", None)
        self.behaviors = getattr(backend, "behaviors", {})
        self.sybil_identities = getattr(backend, "sybil_identities", [])
        if self.spans is not None:
            backend.enable_block_tracing(self.spans.sample)
        schedule = self.spec.workload.fault_schedule()
        if schedule is not None:
            observers = []
            if self.telemetry is not None:
                observers.append(self.telemetry.fault_applied)
            if self.spans is not None:
                observers.append(self._spans_fault_applied)
            observer = None
            if observers:
                def observer(event, slot, _observers=tuple(observers)):
                    for callback in _observers:
                        callback(event, slot)
            self.fault_engine = FaultEngine(schedule, backend, observer=observer)
        if self.telemetry is not None:
            self.telemetry.run_started(self.spec)
        if self.spans is not None:
            self.spans.run_started(self.spec)
        return self

    def _spans_fault_applied(self, event, slot: int) -> None:
        """Fault observer leg for span tracing: annotate + record."""
        self.backend.trace_fault(event, slot)
        self.spans.fault_applied(event, slot, self.backend.current_time())

    # -- driving -----------------------------------------------------------
    def _boundaries_until(self, target: int) -> List[int]:
        """Slots in (next, target] where the runner must pause."""
        stops = {s for s in self.spec.workload.sample_slots if self._next_slot < s <= target}
        if self.fault_engine is not None:
            for stop in self.fault_engine.boundary_slots:
                if self._next_slot < stop <= target:
                    stops.add(stop)
        stops.add(target)
        return sorted(stops)

    def advance_to(self, slot: int) -> "ScenarioRunner":
        """Simulate up to (and including) slot ``slot - 1``.

        Churn is applied and series are sampled at their declared
        slots; mid-run interaction with ``deployment`` between calls is
        safe (the workload re-anchors behind an advanced clock).
        """
        self.build()
        if slot > self.spec.workload.slots:
            raise ValueError(
                f"cannot advance to slot {slot}: the workload declares "
                f"{self.spec.workload.slots} slots"
            )
        if slot < self._next_slot:
            raise ValueError(
                f"cannot advance to slot {slot}: slot {self._next_slot} "
                f"is already simulated"
            )
        if slot == self._next_slot:
            return self
        for stop in self._boundaries_until(slot):
            if self.fault_engine is not None:
                self.fault_engine.apply_due(self._next_slot)
            advanced = stop - self._next_slot
            if advanced > 0:
                self.backend.advance_slots(self._next_slot, advanced)
                self._next_slot = stop
            if stop in self.spec.workload.sample_slots:
                self._sampled[stop] = self.backend.sample()
            if self.telemetry is not None and advanced > 0:
                # Boundary-granular by design: emitting per individual
                # slot would change the chunking some backends observe
                # (PBFT settles per driven chunk) and break the
                # telemetry-off byte-identity contract.  Every read
                # below is pure.
                series = self._sampled.get(stop)
                if series is None:
                    series = self.backend.sample()
                self.telemetry.slot_advanced(
                    slot=stop,
                    slots_covered=advanced,
                    sim_now=self.backend.current_time(),
                    series=series,
                    counters=self.backend.telemetry_counters(),
                )
        return self

    def finish(self) -> ScenarioResult:
        """Run any remaining slots, drain, and assemble the result."""
        self.build()
        workload_spec = self.spec.workload
        self.advance_to(workload_spec.slots)
        self.backend.finalize()
        if not self._sampled:
            # No declared sample axis: record the final state so the
            # series have one point.  When the spec declares
            # sample_slots, the series stay exactly that length (the
            # experiment tables align them with other sampled series).
            self._sampled[workload_spec.slots] = self.backend.sample()

        sample_slots = sorted(self._sampled)
        series = {
            key: [self._sampled[s][key] for s in sample_slots]
            for key in SERIES_KEYS
        }
        metrics = self.backend.collect()
        result = ScenarioResult(
            spec=self.spec,
            sample_slots=sample_slots,
            total_blocks=metrics.total_blocks,
            validations=metrics.validations,
            success_rate=metrics.success_rate,
            storage_mb=series["storage_mb"],
            traffic_mbit=series["traffic_mbit"],
            traffic_dag_mbit=series["traffic_dag_mbit"],
            traffic_pop_mbit=series["traffic_pop_mbit"],
            per_node_storage_mb=metrics.per_node_storage_mb,
            per_node_traffic_mb=metrics.per_node_traffic_mb,
            events=metrics.events,
            sim_now=metrics.sim_now,
            trace_sha256=self.backend.trace_digest(),
        )
        if self.telemetry is not None:
            self.telemetry.run_finished(
                slot=workload_spec.slots,
                sim_now=result.sim_now,
                blocks=result.total_blocks,
                validations=result.validations,
                success_rate=result.success_rate,
                events=result.events,
                trace_sha256=result.trace_sha256,
            )
        if self.spans is not None:
            self.spans.run_finished(self.backend.trace_block_events())
        return result

    def run(self) -> ScenarioResult:
        """``build()`` + drive the whole workload + ``finish()``."""
        return self.finish()


def run_scenario(spec: ScenarioSpec, telemetry=None, spans=None) -> ScenarioResult:
    """One-shot convenience: run ``spec`` and return its result."""
    return ScenarioRunner(spec, telemetry=telemetry, spans=spans).run()
