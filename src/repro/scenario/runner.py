"""Run a :class:`~repro.scenario.spec.ScenarioSpec` end to end.

:class:`ScenarioRunner` is the only place in the codebase that wires a
:class:`~repro.core.protocol.TwoLayerDagNetwork` from declarative
input — every entry point (CLI, paper experiments, examples, attack
demos, the bench harness) goes through it, so scenario construction is
defined exactly once and seeded traces stay byte-identical across
callers.

The construction recipe is deliberately frozen: one
:class:`~repro.sim.rng.RandomStreams` per scenario seeds the topology
and the adversary coalitions, and the same seed masters the
deployment's internal streams.  Any change to this ordering changes
seeded traces, which the golden-trace determinism test pins.

Typical use::

    runner = ScenarioRunner(get_scenario("quickstart"))
    result = runner.run()          # -> ScenarioResult (pure data)
    runner.deployment              # the live network, for follow-up audits
    runner.workload                # the finished SlotSimulation

Long-form use (probes or audits between slots)::

    runner = ScenarioRunner(spec).build()
    runner.advance_to(15)
    ...  # interact with runner.deployment mid-run
    result = runner.finish()
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.attacks.behaviors import (
    CorruptResponder,
    EquivocatingResponder,
    SelfishNode,
    SilentResponder,
)
from repro.attacks.eclipse import eclipse_victim
from repro.attacks.majority import make_coalition
from repro.attacks.sybil import SybilIdentity, sybil_identities
from repro.bench.trace import slot_simulation_trace_digest
from repro.core.config import ProtocolConfig
from repro.core.node import NodeBehavior
from repro.core.protocol import (
    CATEGORY_DAG,
    CATEGORY_POP,
    SlotSimulation,
    TwoLayerDagNetwork,
)
from repro.metrics.reporting import format_series_table
from repro.metrics.units import bits_to_mb, bits_to_mbit
from repro.net.topology import (
    Topology,
    grid_topology,
    random_geometric_topology,
    ring_topology,
    sequential_geometric_topology,
)
from repro.scenario.spec import COALITION_KINDS, ScenarioSpec, TopologySpec
from repro.sim.rng import RandomStreams

#: Coalition kind -> behaviour factory (all zero-argument constructors).
_BEHAVIOR_FACTORIES: Dict[str, Callable[[], NodeBehavior]] = {
    "silent": SilentResponder,
    "corrupt": CorruptResponder,
    "equivocating": EquivocatingResponder,
    "selfish": SelfishNode,
}


def build_topology(spec: TopologySpec, streams: RandomStreams) -> Topology:
    """Materialize a :class:`TopologySpec` (random kinds draw from ``streams``)."""
    if spec.kind == "sequential-geometric":
        return sequential_geometric_topology(
            node_count=spec.node_count,
            area_side=spec.area_side,
            comm_range=spec.comm_range,
            streams=streams,
        )
    if spec.kind == "grid":
        return grid_topology(
            spec.rows, spec.cols, spacing=spec.spacing, comm_range=spec.comm_range
        )
    if spec.kind == "ring":
        return ring_topology(
            spec.node_count, spacing=spec.spacing, comm_range=spec.comm_range
        )
    if spec.kind == "random-geometric":
        return random_geometric_topology(
            node_count=spec.node_count,
            area_side=spec.area_side,
            comm_range=spec.comm_range,
            streams=streams,
        )
    raise ValueError(f"unknown topology kind {spec.kind!r}")  # pragma: no cover


def build_config(spec: ScenarioSpec) -> ProtocolConfig:
    """The :class:`ProtocolConfig` a spec's protocol section describes."""
    return ProtocolConfig(
        body_bits=spec.protocol.body_bits,
        gamma=spec.protocol.gamma,
        reply_timeout=spec.protocol.reply_timeout,
        puzzle_difficulty_bits=spec.protocol.puzzle_difficulty_bits,
    )


@dataclass
class ScenarioResult:
    """Everything measurable about one finished scenario — pure data.

    Serializes directly through
    :func:`repro.experiments.persistence.save_results` (every leaf is a
    JSON primitive) and renders through
    :func:`repro.metrics.reporting.format_series_table` via
    :meth:`to_table`.
    """

    spec: ScenarioSpec
    sample_slots: List[int]
    total_blocks: int
    validations: int
    success_rate: float
    storage_mb: List[float]
    traffic_mbit: List[float]
    traffic_dag_mbit: List[float]
    traffic_pop_mbit: List[float]
    per_node_storage_mb: List[float] = field(default_factory=list)
    per_node_traffic_mb: List[float] = field(default_factory=list)
    events: int = 0
    sim_now: float = 0.0
    trace_sha256: str = ""

    @property
    def series(self) -> Dict[str, List[float]]:
        """The sampled series keyed by metric name."""
        return {
            "storage_mb": self.storage_mb,
            "traffic_mbit": self.traffic_mbit,
            "traffic_dag_mbit": self.traffic_dag_mbit,
            "traffic_pop_mbit": self.traffic_pop_mbit,
        }

    def to_table(self) -> str:
        """The sampled series as an aligned text table."""
        return format_series_table("slots", self.sample_slots, self.series)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict (round-trips through :meth:`from_dict`).

        This is the payload format campaign cells of kind ``scenario``
        return: every leaf is a JSON primitive, so results can cross
        process boundaries and live in the on-disk result cache.
        """
        return {
            "spec": self.spec.to_dict(),
            "sample_slots": list(self.sample_slots),
            "total_blocks": self.total_blocks,
            "validations": self.validations,
            "success_rate": self.success_rate,
            "storage_mb": list(self.storage_mb),
            "traffic_mbit": list(self.traffic_mbit),
            "traffic_dag_mbit": list(self.traffic_dag_mbit),
            "traffic_pop_mbit": list(self.traffic_pop_mbit),
            "per_node_storage_mb": list(self.per_node_storage_mb),
            "per_node_traffic_mb": list(self.per_node_traffic_mb),
            "events": self.events,
            "sim_now": self.sim_now,
            "trace_sha256": self.trace_sha256,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output."""
        data = dict(payload)
        spec = ScenarioSpec.from_dict(data.pop("spec"))
        known = {f.name for f in dataclasses.fields(cls)} - {"spec"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ScenarioResult field(s): {', '.join(sorted(unknown))}"
            )
        return cls(spec=spec, **data)

    def summary(self) -> str:
        """A compact human-readable digest of the run."""
        lines = [
            f"scenario {self.spec.name}: {self.spec.node_count} nodes, "
            f"{self.spec.workload.slots} slots, seed {self.spec.seed}",
            f"blocks generated: {self.total_blocks}",
        ]
        if self.validations:
            lines.append(
                f"validations: {self.validations} "
                f"(success rate {self.success_rate:.3f})"
            )
        lines.append(f"mean storage/node: {self.storage_mb[-1]:.2f} MB")
        lines.append(f"mean transmit/node: {self.traffic_mbit[-1]:.3f} Mbit")
        lines.append(f"trace sha256: {self.trace_sha256}")
        return "\n".join(lines)


class ScenarioRunner:
    """spec → deployment → result, the pipeline every entry point shares.

    After :meth:`build` (or lazily on first use) the live objects are
    exposed for follow-up interaction: ``deployment``, ``workload``,
    ``streams`` (the scenario's master random source), ``behaviors``
    (the adversary roster actually installed) and ``sybil_identities``.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.deployment: Optional[TwoLayerDagNetwork] = None
        self.workload: Optional[SlotSimulation] = None
        self.streams: Optional[RandomStreams] = None
        self.behaviors: Dict[int, NodeBehavior] = {}
        self.sybil_identities: List[SybilIdentity] = []
        self._next_slot = 0
        self._sampled: Dict[int, Dict[str, float]] = {}
        self._offline_applied = False
        self._rejoin_applied = False

    # -- construction ------------------------------------------------------
    def build(self) -> "ScenarioRunner":
        """Wire the deployment and workload; idempotent."""
        if self.deployment is not None:
            return self
        spec = self.spec
        self.streams = RandomStreams(spec.seed)
        topology = build_topology(spec.topology, self.streams)

        behaviors: Dict[int, NodeBehavior] = {}
        drop_rules = []
        for adversary in spec.adversaries:
            if adversary.kind in COALITION_KINDS:
                coalition = make_coalition(
                    topology,
                    adversary.count,
                    self.streams,
                    stream_name=adversary.stream_name,
                    behavior_factory=_BEHAVIOR_FACTORIES[adversary.kind],
                    protect=sorted(set(adversary.protect) | set(behaviors)),
                )
                behaviors.update(coalition)
            elif adversary.kind == "eclipse":
                drop_rules.append(eclipse_victim(adversary.victim))
            elif adversary.kind == "sybil":
                self.sybil_identities.extend(
                    sybil_identities(adversary.attacker, adversary.count)
                )
        self.behaviors = behaviors

        self.deployment = TwoLayerDagNetwork(
            config=build_config(spec),
            topology=topology,
            seed=spec.seed,
            behaviors=behaviors or None,
            per_hop_latency=spec.per_hop_latency,
        )
        for rule in drop_rules:
            self.deployment.network.add_drop_rule(rule)

        workload = spec.workload
        self.workload = SlotSimulation(
            self.deployment,
            generation_period=workload.generation_period,
            validate=workload.validate,
            validation_min_age_slots=workload.validation_min_age_slots,
            intra_slot_jitter=workload.intra_slot_jitter,
            fetch_body=workload.fetch_body,
        )
        return self

    # -- driving -----------------------------------------------------------
    def _apply_churn(self, slot: int) -> None:
        churn = self.spec.workload.churn
        if churn is None:
            return
        if not self._offline_applied and slot >= churn.offline_slot:
            for node_id in churn.offline_nodes:
                self.deployment.node(node_id).go_offline()
            self._offline_applied = True
        if (
            not self._rejoin_applied
            and churn.rejoin_slot is not None
            and slot >= churn.rejoin_slot
        ):
            for node_id in churn.offline_nodes:
                self.deployment.node(node_id).come_online()
                if churn.forgive_on_rejoin:
                    for other in self.deployment.node_ids:
                        self.deployment.node(other).record_cooperation(node_id)
            self._rejoin_applied = True

    def _boundaries_until(self, target: int) -> List[int]:
        """Slots in (next, target] where the runner must pause."""
        churn = self.spec.workload.churn
        stops = {s for s in self.spec.workload.sample_slots if self._next_slot < s <= target}
        if churn is not None:
            for stop in (churn.offline_slot, churn.rejoin_slot):
                if stop is not None and self._next_slot < stop <= target:
                    stops.add(stop)
        stops.add(target)
        return sorted(stops)

    def _record_sample(self, slot: int) -> None:
        deployment = self.deployment
        nodes = deployment.node_ids
        ledger = deployment.traffic
        self._sampled[slot] = {
            "storage_mb": bits_to_mb(deployment.mean_storage_bits()),
            "traffic_mbit": bits_to_mbit(ledger.mean_tx_bits(nodes)),
            "traffic_dag_mbit": bits_to_mbit(
                ledger.mean_tx_bits(nodes, [CATEGORY_DAG])
            ),
            "traffic_pop_mbit": bits_to_mbit(
                ledger.mean_tx_bits(nodes, [CATEGORY_POP])
            ),
        }

    def advance_to(self, slot: int) -> "ScenarioRunner":
        """Simulate up to (and including) slot ``slot - 1``.

        Churn is applied and series are sampled at their declared
        slots; mid-run interaction with ``deployment`` between calls is
        safe (the workload re-anchors behind an advanced clock).
        """
        self.build()
        if slot > self.spec.workload.slots:
            raise ValueError(
                f"cannot advance to slot {slot}: the workload declares "
                f"{self.spec.workload.slots} slots"
            )
        if slot < self._next_slot:
            raise ValueError(
                f"cannot advance to slot {slot}: slot {self._next_slot} "
                f"is already simulated"
            )
        if slot == self._next_slot:
            return self
        for stop in self._boundaries_until(slot):
            self._apply_churn(self._next_slot)
            if stop > self._next_slot:
                self.workload.run(stop - self._next_slot, start_slot=self._next_slot)
                self._next_slot = stop
            if stop in self.spec.workload.sample_slots:
                self._record_sample(stop)
        return self

    def finish(self) -> ScenarioResult:
        """Run any remaining slots, drain, and assemble the result."""
        self.build()
        workload_spec = self.spec.workload
        self.advance_to(workload_spec.slots)
        if workload_spec.run_until_quiet:
            self.workload.run_until_quiet(max_extra_time=workload_spec.quiet_time)
        if not self._sampled:
            # No declared sample axis: record the final state so the
            # series have one point.  When the spec declares
            # sample_slots, the series stay exactly that length (the
            # experiment tables align them with other sampled series).
            self._record_sample(workload_spec.slots)

        deployment = self.deployment
        sample_slots = sorted(self._sampled)
        series = {
            key: [self._sampled[s][key] for s in sample_slots]
            for key in (
                "storage_mb", "traffic_mbit", "traffic_dag_mbit", "traffic_pop_mbit"
            )
        }
        return ScenarioResult(
            spec=self.spec,
            sample_slots=sample_slots,
            total_blocks=self.workload.total_blocks(),
            validations=len(self.workload.validations),
            success_rate=self.workload.success_rate(),
            storage_mb=series["storage_mb"],
            traffic_mbit=series["traffic_mbit"],
            traffic_dag_mbit=series["traffic_dag_mbit"],
            traffic_pop_mbit=series["traffic_pop_mbit"],
            per_node_storage_mb=[
                bits_to_mb(node.storage_bits())
                for node in deployment.nodes.values()
            ],
            per_node_traffic_mb=[
                bits_to_mb(deployment.traffic.total_bits(n))
                for n in deployment.node_ids
            ],
            events=deployment.sim.processed_count,
            sim_now=deployment.sim.now,
            trace_sha256=slot_simulation_trace_digest(self.workload),
        )

    def run(self) -> ScenarioResult:
        """``build()`` + drive the whole workload + ``finish()``."""
        return self.finish()


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """One-shot convenience: run ``spec`` and return its result."""
    return ScenarioRunner(spec).run()
