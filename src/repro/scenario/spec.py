"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the single source of truth for one 2LDAG
run: protocol knobs, a named+parameterized topology, the slot workload
(including churn), an optional adversary roster and the master seed.
Specs are frozen, validated on construction, and round-trip through
JSON (:meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict` /
:meth:`ScenarioSpec.from_file`), so a scenario can be committed,
diffed, and replayed byte-identically — new workloads are data, not
copy-pasted wiring code.

The companion modules supply the other two stages of the pipeline:
:mod:`repro.scenario.registry` names the canonical specs and
:mod:`repro.scenario.runner` turns any spec into a deployment and a
structured :class:`~repro.scenario.runner.ScenarioResult`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.experiments.common import ExperimentScale
from repro.faults.spec import FaultError, FaultScheduleSpec
from repro.metrics.units import bits_to_mb, mb_to_bits

#: Format marker for serialized specs, bumped on breaking layout changes.
SPEC_FORMAT_VERSION = 1

#: Topology kinds :func:`repro.scenario.backends.build_topology` understands.
TOPOLOGY_KINDS = ("sequential-geometric", "grid", "ring", "random-geometric")

#: Coalition adversary kinds -> behaviour factories live in the 2LDAG
#: backend (:class:`repro.scenario.backends.TwoLayerDagBackend`).
COALITION_KINDS = ("silent", "corrupt", "equivocating", "selfish")

#: All adversary kinds (coalitions plus the structural attacks).
ADVERSARY_KINDS = COALITION_KINDS + ("eclipse", "sybil")

#: The default ledger backend (the paper's two-layer DAG).
DEFAULT_BACKEND = "2ldag"

#: IOTA tip-selection strategies the tangle backend understands.
IOTA_TIP_STRATEGIES = ("uniform", "mcmc")

#: The sentinel generation period reproducing Fig. 9's workload.
RANDOM_1_2 = "random-1-2"


class ScenarioError(ValueError):
    """A spec that cannot describe a runnable scenario."""


def known_backend_names() -> Tuple[str, ...]:
    """The registered ledger backend names (lazily imported registry).

    The registry lives in :mod:`repro.scenario.backends` (which imports
    this module); resolving it lazily keeps spec validation in sync
    with whatever backends are registered without an import cycle.
    """
    from repro.scenario.backends import backend_names

    return tuple(backend_names())


def known_fault_capabilities(backend: str) -> Tuple[str, ...]:
    """The fault kinds ``backend`` supports (lazily imported registry)."""
    from repro.scenario.backends import backend_fault_capabilities

    return backend_fault_capabilities(backend)


@dataclass(frozen=True)
class PbftParams:
    """Knobs of the ``pbft`` ledger backend (ignored by the others).

    ``settle_time`` is how long the three-phase commit is allowed to
    drain after each driven slot chunk — the live-cluster equivalent of
    2LDAG's ``run_until_quiet``.
    """

    view_change_timeout: float = 5.0
    settle_time: float = 3.0

    def __post_init__(self) -> None:
        if self.view_change_timeout <= 0:
            raise ScenarioError(
                f"view_change_timeout must be positive, got {self.view_change_timeout}"
            )
        if self.settle_time < 0:
            raise ScenarioError(
                f"settle_time must be non-negative, got {self.settle_time}"
            )


@dataclass(frozen=True)
class IotaParams:
    """Knobs of the ``iota`` ledger backend (ignored by the others)."""

    tip_strategy: str = "uniform"
    mcmc_alpha: float = 0.01
    settle_time: float = 2.0

    def __post_init__(self) -> None:
        if self.tip_strategy not in IOTA_TIP_STRATEGIES:
            raise ScenarioError(
                f"unknown tip_strategy {self.tip_strategy!r}; "
                f"known: {', '.join(IOTA_TIP_STRATEGIES)}"
            )
        if self.mcmc_alpha < 0:
            raise ScenarioError(
                f"mcmc_alpha must be non-negative, got {self.mcmc_alpha}"
            )
        if self.settle_time < 0:
            raise ScenarioError(
                f"settle_time must be non-negative, got {self.settle_time}"
            )


@dataclass(frozen=True)
class TopologySpec:
    """A named, parameterized physical graph.

    ``kind`` selects the builder; only the parameters that kind reads
    are meaningful (the rest keep their defaults and are ignored):

    * ``sequential-geometric`` — the paper's §VI placement
      (``node_count``, ``area_side``, ``comm_range``);
    * ``grid`` — deterministic ``rows`` × ``cols`` lattice
      (``spacing``, ``comm_range``);
    * ``ring`` — nodes on a circle (``node_count``, ``spacing``,
      ``comm_range``);
    * ``random-geometric`` — uniform placement, resampled until
      connected (``node_count``, ``area_side``, ``comm_range``).
    """

    kind: str = "sequential-geometric"
    node_count: int = 50
    area_side: float = 1000.0
    comm_range: float = 50.0
    rows: int = 0
    cols: int = 0
    spacing: float = 40.0

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ScenarioError(
                f"unknown topology kind {self.kind!r}; "
                f"known: {', '.join(TOPOLOGY_KINDS)}"
            )
        if self.kind == "grid":
            if self.rows <= 0 or self.cols <= 0:
                raise ScenarioError(
                    f"grid topology needs positive rows/cols, "
                    f"got {self.rows}x{self.cols}"
                )
        elif self.node_count <= 0:
            raise ScenarioError(
                f"node_count must be positive, got {self.node_count}"
            )

    @property
    def size(self) -> int:
        """``|V|`` the built topology will have."""
        if self.kind == "grid":
            return self.rows * self.cols
        return self.node_count


@dataclass(frozen=True)
class ProtocolSpec:
    """The :class:`~repro.core.config.ProtocolConfig` knobs runs vary.

    Field widths (``f_v``, ``f_H``, …) always stay at the paper's Fig. 2
    values; what scenarios sweep is the body size ``C``, the tolerance
    γ, the PoP reply timeout τ and the nonce-puzzle difficulty.
    """

    body_bits: int = mb_to_bits(0.5)
    gamma: int = 16
    reply_timeout: float = 0.5
    puzzle_difficulty_bits: int = 0

    def __post_init__(self) -> None:
        if self.body_bits < 0:
            raise ScenarioError(f"body_bits must be non-negative, got {self.body_bits}")
        if self.gamma < 0:
            raise ScenarioError(f"gamma must be non-negative, got {self.gamma}")
        if self.reply_timeout <= 0:
            raise ScenarioError(
                f"reply_timeout must be positive, got {self.reply_timeout}"
            )

    @property
    def body_mb(self) -> float:
        """``C`` in decimal megabytes (the unit Fig. 7 sweeps)."""
        return bits_to_mb(self.body_bits)

    @classmethod
    def paper(
        cls, gamma: int, body_mb: float = 0.5, **overrides: Any
    ) -> "ProtocolSpec":
        """The §VI settings with ``C`` given in MB."""
        return cls(body_bits=mb_to_bits(body_mb), gamma=gamma, **overrides)


@dataclass(frozen=True)
class ChurnSpec:
    """Mid-run membership changes: nodes leave and optionally rejoin.

    ``offline_nodes`` go offline just before slot ``offline_slot`` is
    scheduled; when ``rejoin_slot`` is set they come back online before
    that slot, and with ``forgive_on_rejoin`` every node records
    renewed cooperation (§IV-D-6 blacklist forgiveness).

    This is legacy sugar over the fault layer: at run time it compiles
    to a two-event crash/rejoin
    :class:`~repro.faults.spec.FaultScheduleSpec` (see
    :meth:`compile` and :meth:`WorkloadSpec.fault_schedule`), while its
    serialized form — and therefore every existing spec JSON and
    campaign cell digest — stays byte-identical.
    """

    offline_nodes: Tuple[int, ...] = ()
    offline_slot: int = 0
    rejoin_slot: Optional[int] = None
    forgive_on_rejoin: bool = True

    def __post_init__(self) -> None:
        if not self.offline_nodes:
            raise ScenarioError("churn with no offline_nodes is meaningless")
        if self.offline_slot < 0:
            raise ScenarioError(
                f"offline_slot must be non-negative, got {self.offline_slot}"
            )
        if self.rejoin_slot is not None and self.rejoin_slot <= self.offline_slot:
            raise ScenarioError(
                f"rejoin_slot {self.rejoin_slot} must come after "
                f"offline_slot {self.offline_slot}"
            )

    def compile(self) -> FaultScheduleSpec:
        """The equivalent crash(+rejoin) fault timeline."""
        return FaultScheduleSpec.from_churn(
            self.offline_nodes,
            self.offline_slot,
            rejoin_slot=self.rejoin_slot,
            forgive_on_rejoin=self.forgive_on_rejoin,
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """The slot-driven workload (§VI) a scenario runs.

    Mirrors :class:`~repro.core.protocol.SlotSimulation`'s knobs plus
    the sampling and drain behaviour the experiment loops used to
    hand-roll: ``sample_slots`` are the slots at which the runner
    snapshots storage/traffic series, ``run_until_quiet`` drains
    in-flight validations after the last slot.

    ``faults`` declares a full fault timeline
    (:class:`~repro.faults.spec.FaultScheduleSpec`); ``churn`` is the
    legacy crash/rejoin shorthand and compiles to one — declare one or
    the other, not both (:meth:`fault_schedule` resolves whichever is
    present).
    """

    slots: int = 40
    generation_period: Union[int, str] = 1
    validate: bool = False
    fetch_body: bool = False
    validation_min_age_slots: Optional[int] = None
    intra_slot_jitter: float = 0.3
    run_until_quiet: bool = False
    quiet_time: float = 50.0
    sample_slots: Tuple[int, ...] = ()
    churn: Optional[ChurnSpec] = None
    faults: Optional[FaultScheduleSpec] = None

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise ScenarioError(f"slots must be positive, got {self.slots}")
        if isinstance(self.generation_period, str):
            if self.generation_period != RANDOM_1_2:
                raise ScenarioError(
                    f"unknown generation_period {self.generation_period!r}; "
                    f"use an integer or {RANDOM_1_2!r}"
                )
        elif self.generation_period < 1:
            raise ScenarioError(
                f"generation_period must be >= 1, got {self.generation_period}"
            )
        if self.intra_slot_jitter < 0:
            raise ScenarioError(
                f"intra_slot_jitter must be non-negative, got {self.intra_slot_jitter}"
            )
        if self.sample_slots:
            if list(self.sample_slots) != sorted(set(self.sample_slots)):
                raise ScenarioError(
                    f"sample_slots must be strictly increasing, got {self.sample_slots}"
                )
            if self.sample_slots[0] <= 0:
                raise ScenarioError("sample_slots must be positive")
            if self.sample_slots[-1] > self.slots:
                raise ScenarioError(
                    f"sample slot {self.sample_slots[-1]} exceeds the "
                    f"{self.slots}-slot workload"
                )
        if self.churn is not None and self.faults is not None:
            raise ScenarioError(
                "declare either churn (legacy shorthand) or faults (a full "
                "timeline), not both"
            )
        if self.churn is not None:
            if self.churn.offline_slot >= self.slots:
                raise ScenarioError(
                    f"churn offline_slot {self.churn.offline_slot} is past the "
                    f"{self.slots}-slot workload"
                )
            if self.churn.rejoin_slot is not None and self.churn.rejoin_slot >= self.slots:
                raise ScenarioError(
                    f"churn rejoin_slot {self.churn.rejoin_slot} is past the "
                    f"{self.slots}-slot workload"
                )
        if self.faults is not None and self.faults.max_slot >= self.slots:
            raise ScenarioError(
                f"fault event at slot {self.faults.max_slot} is past the "
                f"{self.slots}-slot workload"
            )

    def fault_schedule(self) -> Optional[FaultScheduleSpec]:
        """The effective fault timeline: ``faults``, compiled ``churn``,
        or ``None`` for a fault-free run."""
        if self.faults is not None:
            return self.faults
        if self.churn is not None:
            try:
                return self.churn.compile()
            except FaultError as error:
                raise ScenarioError(
                    f"churn does not compile to a fault schedule: {error}"
                )
        return None


@dataclass(frozen=True)
class AdversarySpec:
    """One adversary in the scenario's roster.

    Coalition kinds (``silent``, ``corrupt``, ``equivocating``,
    ``selfish``) pick ``count`` nodes via
    :func:`repro.attacks.majority.make_coalition` on the named stream,
    sparing ``protect``.  ``eclipse`` installs the
    :func:`repro.attacks.eclipse.eclipse_victim` drop rule around
    ``victim``.  ``sybil`` fabricates ``count`` forged identities
    controlled by ``attacker`` (exposed on the built runner — they
    never enter the deployment, which is the point of the defence).
    """

    kind: str
    count: int = 0
    protect: Tuple[int, ...] = ()
    stream_name: str = "coalition"
    victim: int = -1
    attacker: int = -1

    def __post_init__(self) -> None:
        if self.kind not in ADVERSARY_KINDS:
            raise ScenarioError(
                f"unknown adversary kind {self.kind!r}; "
                f"known: {', '.join(ADVERSARY_KINDS)}"
            )
        if self.kind in COALITION_KINDS and self.count <= 0:
            raise ScenarioError(
                f"{self.kind} coalition needs a positive count, got {self.count}"
            )
        if self.kind == "eclipse" and self.victim < 0:
            raise ScenarioError("eclipse adversary needs a victim node id")
        if self.kind == "sybil":
            if self.attacker < 0:
                raise ScenarioError("sybil adversary needs an attacker node id")
            if self.count <= 0:
                raise ScenarioError(
                    f"sybil adversary needs a positive identity count, got {self.count}"
                )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, runnable 2LDAG scenario.

    The whole run is declared here — hand a spec to
    :class:`~repro.scenario.runner.ScenarioRunner` and nothing else is
    needed.  ``backend`` names the ledger implementation the runner
    dispatches to (``"2ldag"`` — the paper's protocol — by default;
    ``"pbft"`` and ``"iota"`` run the comparison baselines on the same
    topology, workload and seed); ``pbft``/``iota`` carry the
    backend-specific knobs and are ignored by the other backends.
    ``scale`` optionally records the
    :class:`~repro.experiments.common.ExperimentScale` a paper-figure
    spec was derived from (``probes_per_sample`` and friends); the
    authoritative topology/slot/seed values are always the explicit
    fields.
    """

    name: str = "custom"
    description: str = ""
    backend: str = DEFAULT_BACKEND
    protocol: ProtocolSpec = field(default_factory=ProtocolSpec)
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    adversaries: Tuple[AdversarySpec, ...] = ()
    pbft: PbftParams = field(default_factory=PbftParams)
    iota: IotaParams = field(default_factory=IotaParams)
    seed: int = 0
    per_hop_latency: float = 0.001
    scale: Optional[ExperimentScale] = None

    def __post_init__(self) -> None:
        registered = known_backend_names()
        if self.backend not in registered:
            raise ScenarioError(
                f"unknown ledger backend {self.backend!r}; "
                f"registered: {', '.join(registered)}"
            )
        if self.backend != DEFAULT_BACKEND:
            if self.adversaries:
                raise ScenarioError(
                    f"the {self.backend} backend does not support adversaries; "
                    f"remove them or use backend {DEFAULT_BACKEND!r}"
                )
            if self.workload.generation_period != 1:
                # The baseline adapters hardwire one request/transaction
                # per node per slot; admitting another period would
                # silently compare different workloads across backends.
                raise ScenarioError(
                    f"the {self.backend} backend only supports "
                    f"generation_period=1, got "
                    f"{self.workload.generation_period!r}"
                )
        schedule = self.workload.fault_schedule()
        if schedule is not None:
            capabilities = known_fault_capabilities(self.backend)
            unsupported = sorted(schedule.kinds - set(capabilities))
            if unsupported:
                roster = ", ".join(capabilities) if capabilities else "none"
                raise ScenarioError(
                    f"the {self.backend} backend does not support fault "
                    f"kind(s) {', '.join(unsupported)}; its capabilities: "
                    f"{roster}"
                )
        size = self.topology.size
        if schedule is not None:
            bad = [n for n in schedule.referenced_nodes if n < 0 or n >= size]
            if bad:
                raise ScenarioError(
                    f"fault event node(s) {bad} are not among the {size} "
                    f"topology nodes"
                )
        if self.protocol.gamma + 1 > size:
            raise ScenarioError(
                f"gamma={self.protocol.gamma} needs a consensus path of "
                f"{self.protocol.gamma + 1} distinct nodes but the "
                f"{self.topology.kind} topology only has {size}"
            )
        if self.per_hop_latency < 0:
            raise ScenarioError(
                f"per_hop_latency must be non-negative, got {self.per_hop_latency}"
            )
        for adversary in self.adversaries:
            if adversary.kind in COALITION_KINDS:
                eligible = size - len(set(adversary.protect))
                if adversary.count > eligible:
                    raise ScenarioError(
                        f"{adversary.kind} coalition of {adversary.count} cannot "
                        f"be drawn from {eligible} eligible nodes"
                    )
            if adversary.kind == "eclipse" and adversary.victim >= size:
                raise ScenarioError(
                    f"eclipse victim {adversary.victim} is not one of the "
                    f"{size} topology nodes"
                )
            if adversary.kind == "sybil" and adversary.attacker >= size:
                raise ScenarioError(
                    f"sybil attacker {adversary.attacker} is not one of the "
                    f"{size} topology nodes"
                )

    # -- derived -----------------------------------------------------------
    @property
    def node_count(self) -> int:
        """``|V|`` of the scenario's topology."""
        return self.topology.size

    def with_workload(self, **changes: Any) -> "ScenarioSpec":
        """Copy with workload fields replaced (validation re-runs)."""
        return replace(self, workload=replace(self.workload, **changes))

    def with_backend(self, backend: str) -> "ScenarioSpec":
        """Copy targeting another ledger backend (validation re-runs)."""
        return replace(self, backend=backend)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (round-trips through :meth:`from_dict`).

        Pure JSON values throughout (tuples become lists), so the dict
        equals its own ``json.dumps``/``loads`` round-trip — a property
        the campaign result cache relies on.
        """

        def listify(value: Any) -> Any:
            if isinstance(value, (list, tuple)):
                return [listify(item) for item in value]
            if isinstance(value, dict):
                return {key: listify(item) for key, item in value.items()}
            return value

        payload: Dict[str, Any] = listify(dataclasses.asdict(self))
        payload["format_version"] = SPEC_FORMAT_VERSION
        if self.scale is None:
            payload.pop("scale")
        if self.workload.churn is None:
            payload["workload"].pop("churn")
        # Fault timelines serialize through their own canonical form
        # (kind-relevant event fields only); fault-free workloads omit
        # the key entirely so pre-fault spec JSON — and every campaign
        # cell digest derived from it — is byte-identical.
        if self.workload.faults is None:
            payload["workload"].pop("faults")
        else:
            payload["workload"]["faults"] = self.workload.faults.to_dict()
        # Default backend sections are omitted so pre-backend specs (and
        # their campaign cell digests) serialize byte-identically.
        if self.backend == DEFAULT_BACKEND:
            payload.pop("backend")
        if self.pbft == PbftParams():
            payload.pop("pbft")
        if self.iota == IotaParams():
            payload.pop("iota")
        return payload

    def to_json(self, indent: int = 2) -> str:
        """The canonical JSON text of this spec."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output; validates fully."""
        data = dict(payload)
        version = data.pop("format_version", SPEC_FORMAT_VERSION)
        if version != SPEC_FORMAT_VERSION:
            raise ScenarioError(f"unsupported scenario format {version!r}")
        known_top = {f.name for f in dataclasses.fields(cls)}
        unknown_top = set(data) - known_top
        if unknown_top:
            raise ScenarioError(
                f"unknown scenario field(s): {', '.join(sorted(unknown_top))}"
            )

        def build(cls_: type, section: Dict[str, Any], **extra: Any) -> Any:
            known = {f.name for f in dataclasses.fields(cls_)}
            unknown = set(section) - known
            if unknown:
                raise ScenarioError(
                    f"unknown {cls_.__name__} field(s): {', '.join(sorted(unknown))}"
                )
            merged = {**section, **extra}
            for name, value in merged.items():
                if isinstance(value, list):
                    merged[name] = tuple(value)
            return cls_(**merged)

        for text_field in ("name", "description", "backend"):
            if text_field in data and not isinstance(data[text_field], str):
                raise ScenarioError(
                    f"{text_field} must be a string, got {data[text_field]!r}"
                )
        workload_data = dict(data.get("workload", {}))
        churn_data = workload_data.pop("churn", None)
        churn = build(ChurnSpec, churn_data) if churn_data is not None else None
        faults_data = workload_data.pop("faults", None)
        faults = None
        if faults_data is not None:
            try:
                faults = FaultScheduleSpec.from_dict(faults_data)
            except FaultError as error:
                raise ScenarioError(f"invalid fault schedule: {error}")
        scale_data = data.pop("scale", None)
        scale = None
        if scale_data is not None:
            scale = ExperimentScale(
                **{**scale_data, "sample_slots": list(scale_data["sample_slots"])}
            )
        return cls(
            name=data.get("name", "custom"),
            description=data.get("description", ""),
            backend=data.get("backend", DEFAULT_BACKEND),
            protocol=build(ProtocolSpec, data.get("protocol", {})),
            topology=build(TopologySpec, data.get("topology", {})),
            workload=build(WorkloadSpec, workload_data, churn=churn, faults=faults),
            adversaries=tuple(
                build(AdversarySpec, adv) for adv in data.get("adversaries", [])
            ),
            pbft=build(PbftParams, data.get("pbft", {})),
            iota=build(IotaParams, data.get("iota", {})),
            seed=int(data.get("seed", 0)),
            per_hop_latency=float(data.get("per_hop_latency", 0.001)),
            scale=scale,
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ScenarioSpec":
        """Load a spec from a JSON file written by :meth:`to_json`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save(self, path: Union[str, Path]) -> None:
        """Write the canonical JSON of this spec to ``path`` atomically."""
        from repro.experiments.persistence import atomic_write_text

        atomic_write_text(path, self.to_json())
