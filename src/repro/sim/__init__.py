"""Discrete-event simulation kernel.

This package provides the simulation substrate used by every protocol in
the reproduction: an event heap with deterministic tie-breaking
(:mod:`repro.sim.kernel`), generator-based processes
(:mod:`repro.sim.process`), named deterministic random streams
(:mod:`repro.sim.rng`) and structured event tracing
(:mod:`repro.sim.tracing`).

The kernel is intentionally small and dependency-free; it resembles a
reduced ``simpy`` with explicit determinism guarantees, which the paper's
evaluation (time-slot driven, repeated seeded trials) requires.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> hits = []
>>> sim.call_at(3.0, lambda: hits.append(sim.now))
>>> sim.run()
>>> hits
[3.0]
"""

from repro.sim.errors import SimulationError, StopProcess
from repro.sim.kernel import Event, ScheduledCall, Simulator, Timeout
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.tracing import TraceRecord, Tracer

__all__ = [
    "Event",
    "Process",
    "RandomStreams",
    "ScheduledCall",
    "SimulationError",
    "Simulator",
    "StopProcess",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
