"""Exception types raised by the simulation kernel."""


class SimulationError(Exception):
    """Base class for all kernel-level failures.

    Raised for misuse of the kernel itself (scheduling into the past,
    re-triggering an already-triggered event, running a stopped
    simulator).  Protocol-level failures never use this type.
    """


class SchedulingError(SimulationError):
    """An event was scheduled at an invalid time (e.g. in the past)."""


class EventStateError(SimulationError):
    """An event was triggered or cancelled in an incompatible state."""


class StopProcess(Exception):
    """Thrown into a process generator to terminate it early.

    Processes may catch this to run clean-up code, but must re-raise or
    return afterwards.
    """
