"""Event heap and simulator core.

The kernel is a classic discrete-event loop: a priority queue of
:class:`Event` objects ordered by ``(time, priority, sequence)``.  The
sequence number makes the order of same-time, same-priority events equal
to their scheduling order, which keeps whole simulations reproducible
from a single seed.

Two scheduling styles are supported:

* callback style — :meth:`Simulator.call_at` / :meth:`Simulator.call_in`
  run a plain callable at a simulated time (scheduled as a lightweight
  :class:`ScheduledCall`, the kernel's allocation-lean fast path);
* process style — :class:`repro.sim.process.Process` wraps a generator
  that ``yield``\\ s events (usually :class:`Timeout`) and is resumed when
  they trigger.

Both styles are used by the protocol implementations: slot-driven block
generation uses callbacks, while the PoP validator (which waits on
replies with timeouts) is a process.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.errors import EventStateError, SchedulingError, SimulationError

#: Priority given to ordinary events.
PRIORITY_NORMAL = 10
#: Priority for bookkeeping events that must run before normal ones.
PRIORITY_HIGH = 0
#: Priority for events that must observe everything else at a time step.
PRIORITY_LOW = 20


class Event:
    """A schedulable occurrence with callbacks.

    An event moves through three states: *pending* (created, not yet
    triggered), *triggered* (given a time and queued) and *processed*
    (callbacks executed).  A callback receives the event itself and can
    inspect :attr:`value`.

    Events are also usable as one-shot futures: a process may ``yield``
    an event and is resumed with :attr:`value` when it is processed.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed", "_cancelled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._cancelled = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been placed on the event heap."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether callbacks have already run."""
        return self._processed

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled before processing."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """``False`` when the event carries a failure (see :meth:`fail`)."""
        return self._ok

    @property
    def value(self) -> Any:
        """Payload delivered to waiters; an exception instance if failed."""
        return self._value

    # -- state transitions -------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully after ``delay`` sim-time units."""
        if self._triggered:
            raise EventStateError("event already triggered")
        self._value = value
        self._ok = True
        self.sim._enqueue(self.sim.now + delay, PRIORITY_NORMAL, self)
        self._triggered = True
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as a failure carrying ``exception``.

        A process waiting on the event will have the exception thrown
        into it; callback listeners receive the event with ``ok`` False.
        """
        if self._triggered:
            raise EventStateError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.sim._enqueue(self.sim.now + delay, PRIORITY_NORMAL, self)
        self._triggered = True
        return self

    def cancel(self) -> None:
        """Prevent a triggered-but-unprocessed event from running.

        Cancelling an already-processed event is an error; cancelling a
        never-triggered event simply marks it so it can't be triggered.
        """
        if self._processed:
            raise EventStateError("cannot cancel a processed event")
        self._cancelled = True

    # -- kernel hooks -------------------------------------------------------
    def _process(self) -> None:
        if self._cancelled:
            return
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "cancelled" if self._cancelled
            else "processed" if self._processed
            else "triggered" if self._triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} value={self._value!r}>"


class ScheduledCall:
    """The ``call_at``/``call_in`` fast path: a one-shot callback entry.

    Callback scheduling is the kernel's hottest operation (every digest
    push, transport delivery and slot tick goes through it), and a full
    :class:`Event` costs a callbacks list, a value slot and a wrapping
    closure per call.  A ``ScheduledCall`` carries only the callable;
    it shares the heap with full events and obeys the same
    ``(time, priority, sequence)`` ordering, so interleavings — and
    therefore whole-simulation determinism — are unchanged.

    The handle supports the same lifecycle queries and lazy
    cancellation contract as :class:`Event` (``cancel`` before
    processing works; cancelling after processing raises), but it is
    not awaitable and takes no extra callbacks — use
    :meth:`Simulator.event` when a future is needed.
    """

    __slots__ = ("fn", "_processed", "_cancelled")

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn
        self._processed = False
        self._cancelled = False

    @property
    def processed(self) -> bool:
        """Whether the callback has already run."""
        return self._processed

    @property
    def cancelled(self) -> bool:
        """Whether the call was cancelled before running."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent a scheduled-but-unprocessed call from running."""
        if self._processed:
            raise EventStateError("cannot cancel a processed event")
        self._cancelled = True
        self.fn = None  # drop the closure early; the heap entry lingers

    def _process(self) -> None:
        if self._cancelled:
            return
        self._processed = True
        fn, self.fn = self.fn, None
        fn()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "cancelled" if self._cancelled
            else "processed" if self._processed
            else "scheduled"
        )
        return f"<ScheduledCall {state}>"


class Timeout(Event):
    """An event that triggers itself ``delay`` units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SchedulingError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._ok = True
        sim._enqueue(sim.now + delay, PRIORITY_NORMAL, self)
        self._triggered = True


class Simulator:
    """The discrete-event loop.

    Parameters
    ----------
    start_time:
        Initial value of :attr:`now`; the paper's evaluation uses
        integer "time slots" starting at 0.

    Notes
    -----
    The simulator makes a determinism guarantee: given the same sequence
    of ``schedule``/``call_*`` invocations, events run in exactly the
    same order, because ties are broken by a monotone sequence counter.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        # Heap entries hold either a full Event or a ScheduledCall; both
        # expose .cancelled and ._process(), which is all step() needs.
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._sequence = itertools.count()
        self._running = False
        self._processed_count = 0
        self._cancelled_count = 0

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def processed_count(self) -> int:
        """Total number of events processed since construction."""
        return self._processed_count

    @property
    def cancelled_count(self) -> int:
        """Cancelled entries discarded from the heap (lazy cancellation)."""
        return self._cancelled_count

    # -- event creation -------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` triggering ``delay`` from now."""
        return Timeout(self, delay, value)

    def call_at(
        self, time: float, fn: Callable[[], None], priority: int = PRIORITY_NORMAL
    ) -> "ScheduledCall":
        """Run ``fn`` (no arguments) at absolute simulated ``time``.

        Returns a lightweight :class:`ScheduledCall` handle (supports
        ``cancel()``); scheduling order still breaks same-time ties.
        """
        if time < self._now:
            raise SchedulingError(f"cannot schedule at {time} < now {self._now}")
        entry = ScheduledCall(fn)
        heapq.heappush(self._heap, (time, priority, next(self._sequence), entry))
        return entry

    def call_in(
        self, delay: float, fn: Callable[[], None], priority: int = PRIORITY_NORMAL
    ) -> "ScheduledCall":
        """Run ``fn`` ``delay`` units from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn, priority)

    def process(self, generator) -> "Process":
        """Start a generator as a :class:`repro.sim.process.Process`."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- execution ---------------------------------------------------------
    def _enqueue(self, time: float, priority: int, event: Event) -> None:
        heapq.heappush(self._heap, (time, priority, next(self._sequence), event))

    def _discard_cancelled(self) -> None:
        """Drop cancelled entries from the heap top (lazy cancellation).

        The single place cancelled pops happen: ``peek`` and ``step``
        both call this, so neither re-checks entries the other already
        discarded, and every discard is counted once in
        :attr:`cancelled_count`.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._cancelled_count += 1

    def peek(self) -> Optional[float]:
        """Time of the next queued event, or ``None`` if the heap is empty."""
        self._discard_cancelled()
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Process the single next event.  Returns ``False`` if none remain."""
        self._discard_cancelled()
        if not self._heap:
            return False
        time, _priority, _seq, event = heapq.heappop(self._heap)
        if time < self._now:
            raise SimulationError("event heap corrupted: time moved backwards")
        self._now = time
        event._process()
        self._processed_count += 1
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or a budget hits.

        Parameters
        ----------
        until:
            If given, stop once the next event's time strictly exceeds
            this value; :attr:`now` is then advanced to ``until``.
        max_events:
            Safety budget on the number of processed events — useful in
            tests to catch livelocks.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        processed = 0
        try:
            while True:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    if until > self._now:
                        self._now = float(until)
                    break
                if not self.step():
                    break
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(f"max_events budget of {max_events} exhausted")
            if until is not None and self._now < until:
                self._now = float(until)
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self._now} pending={self.pending_count}>"
