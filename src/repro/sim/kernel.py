"""Event heap and simulator core.

The kernel is a classic discrete-event loop: a priority queue of
:class:`Event` objects ordered by ``(time, priority, sequence)``.  The
sequence number makes the order of same-time, same-priority events equal
to their scheduling order, which keeps whole simulations reproducible
from a single seed.

Two scheduling styles are supported:

* callback style — :meth:`Simulator.call_at` / :meth:`Simulator.call_in`
  run a plain callable at a simulated time;
* process style — :class:`repro.sim.process.Process` wraps a generator
  that ``yield``\\ s events (usually :class:`Timeout`) and is resumed when
  they trigger.

Both styles are used by the protocol implementations: slot-driven block
generation uses callbacks, while the PoP validator (which waits on
replies with timeouts) is a process.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.errors import EventStateError, SchedulingError, SimulationError

#: Priority given to ordinary events.
PRIORITY_NORMAL = 10
#: Priority for bookkeeping events that must run before normal ones.
PRIORITY_HIGH = 0
#: Priority for events that must observe everything else at a time step.
PRIORITY_LOW = 20


class Event:
    """A schedulable occurrence with callbacks.

    An event moves through three states: *pending* (created, not yet
    triggered), *triggered* (given a time and queued) and *processed*
    (callbacks executed).  A callback receives the event itself and can
    inspect :attr:`value`.

    Events are also usable as one-shot futures: a process may ``yield``
    an event and is resumed with :attr:`value` when it is processed.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed", "_cancelled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._cancelled = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been placed on the event heap."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether callbacks have already run."""
        return self._processed

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled before processing."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """``False`` when the event carries a failure (see :meth:`fail`)."""
        return self._ok

    @property
    def value(self) -> Any:
        """Payload delivered to waiters; an exception instance if failed."""
        return self._value

    # -- state transitions -------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully after ``delay`` sim-time units."""
        if self._triggered:
            raise EventStateError("event already triggered")
        self._value = value
        self._ok = True
        self.sim._enqueue(self.sim.now + delay, PRIORITY_NORMAL, self)
        self._triggered = True
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as a failure carrying ``exception``.

        A process waiting on the event will have the exception thrown
        into it; callback listeners receive the event with ``ok`` False.
        """
        if self._triggered:
            raise EventStateError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.sim._enqueue(self.sim.now + delay, PRIORITY_NORMAL, self)
        self._triggered = True
        return self

    def cancel(self) -> None:
        """Prevent a triggered-but-unprocessed event from running.

        Cancelling an already-processed event is an error; cancelling a
        never-triggered event simply marks it so it can't be triggered.
        """
        if self._processed:
            raise EventStateError("cannot cancel a processed event")
        self._cancelled = True

    # -- kernel hooks -------------------------------------------------------
    def _process(self) -> None:
        if self._cancelled:
            return
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "cancelled" if self._cancelled
            else "processed" if self._processed
            else "triggered" if self._triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} value={self._value!r}>"


class Timeout(Event):
    """An event that triggers itself ``delay`` units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SchedulingError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._ok = True
        sim._enqueue(sim.now + delay, PRIORITY_NORMAL, self)
        self._triggered = True


class Simulator:
    """The discrete-event loop.

    Parameters
    ----------
    start_time:
        Initial value of :attr:`now`; the paper's evaluation uses
        integer "time slots" starting at 0.

    Notes
    -----
    The simulator makes a determinism guarantee: given the same sequence
    of ``schedule``/``call_*`` invocations, events run in exactly the
    same order, because ties are broken by a monotone sequence counter.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._sequence = itertools.count()
        self._running = False
        self._processed_count = 0

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def processed_count(self) -> int:
        """Total number of events processed since construction."""
        return self._processed_count

    # -- event creation -------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` triggering ``delay`` from now."""
        return Timeout(self, delay, value)

    def call_at(self, time: float, fn: Callable[[], None], priority: int = PRIORITY_NORMAL) -> Event:
        """Run ``fn`` (no arguments) at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulingError(f"cannot schedule at {time} < now {self._now}")
        event = Event(self)
        event.callbacks.append(lambda _ev: fn())
        event._ok = True
        self._enqueue(time, priority, event)
        event._triggered = True
        return event

    def call_in(self, delay: float, fn: Callable[[], None], priority: int = PRIORITY_NORMAL) -> Event:
        """Run ``fn`` ``delay`` units from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn, priority)

    def process(self, generator) -> "Process":
        """Start a generator as a :class:`repro.sim.process.Process`."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- execution ---------------------------------------------------------
    def _enqueue(self, time: float, priority: int, event: Event) -> None:
        heapq.heappush(self._heap, (time, priority, next(self._sequence), event))

    def peek(self) -> Optional[float]:
        """Time of the next queued event, or ``None`` if the heap is empty."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Process the single next event.  Returns ``False`` if none remain."""
        while self._heap:
            time, _priority, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if time < self._now:
                raise SimulationError("event heap corrupted: time moved backwards")
            self._now = time
            event._process()
            self._processed_count += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or a budget hits.

        Parameters
        ----------
        until:
            If given, stop once the next event's time strictly exceeds
            this value; :attr:`now` is then advanced to ``until``.
        max_events:
            Safety budget on the number of processed events — useful in
            tests to catch livelocks.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        processed = 0
        try:
            while True:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    if until > self._now:
                        self._now = float(until)
                    break
                if not self.step():
                    break
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(f"max_events budget of {max_events} exhausted")
            if until is not None and self._now < until:
                self._now = float(until)
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self._now} pending={self.pending_count}>"
