"""Generator-based simulation processes.

A :class:`Process` drives a generator that models a concurrent activity.
The generator ``yield``\\ s :class:`~repro.sim.kernel.Event` objects and
is resumed — with the event's value — when the event is processed.  A
``return`` (or ``StopIteration``) value becomes the process's own event
value, so processes compose: one process may ``yield`` another.

This is the style used for the PoP validator, which alternates between
sending requests and waiting (with a timeout) for replies.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.errors import StopProcess
from repro.sim.kernel import Event, Simulator


class Process(Event):
    """An event representing the completion of a running generator."""

    __slots__ = ("_generator", "_target")

    def __init__(self, sim: Simulator, generator: Generator[Event, Any, Any]) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {type(generator).__name__}")
        self._generator = generator
        self._target: Event | None = None
        # Kick off on the next kernel step so construction order does not
        # matter within a time instant.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()
        self._target = bootstrap

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self.triggered

    def interrupt(self, reason: str = "interrupted") -> None:
        """Throw :class:`StopProcess` into the generator immediately.

        The event the process was waiting on is detached first so that a
        later trigger of that event does not resume a dead process.
        """
        if self.triggered:
            return
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._throw(StopProcess(reason))

    # -- internal ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if event.ok:
            self._advance(lambda: self._generator.send(event.value))
        else:
            self._advance(lambda: self._generator.throw(event.value))

    def _throw(self, exc: BaseException) -> None:
        self._advance(lambda: self._generator.throw(exc))

    def _advance(self, step) -> None:
        try:
            target = step()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except StopProcess:
            self.succeed(None)
            return
        except BaseException as exc:  # propagate into waiters
            if self.callbacks:
                self.fail(exc)
                return
            raise
        if not isinstance(target, Event):
            self._throw(TypeError(f"process yielded non-event: {target!r}"))
            return
        if target.processed:
            # Already-processed events resume the process on the next step.
            relay = Event(self.sim)
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value)
            else:
                relay.fail(target.value)
            self._target = relay
        else:
            target.callbacks.append(self._resume)
            self._target = target
