"""Deterministic named random streams.

Every stochastic component of the simulation (topology placement, block
generation jitter, WPS tie-breaking, adversary behaviour, ...) draws from
its own named stream derived from a single master seed.  Adding a new
consumer therefore never perturbs the draws seen by existing ones — a
property the reproduction relies on when comparing protocol variants on
"the same" workload.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name."""
    payload = f"{master_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


def derive_unit(master_seed: int, name: str) -> float:
    """Derive a deterministic unit-interval value in ``[0, 1)``.

    The seeding idiom for infrastructure-level jitter (retry backoff,
    chaos schedules — see :mod:`repro.campaign.chaos`): like
    :func:`derive_seed` it is a pure function of its inputs, never of
    global RNG state, so decisions built on it replay identically
    across processes and runs.
    """
    return derive_seed(master_seed, name) / 2.0**64


class RandomStreams:
    """A factory of independent, reproducible :class:`random.Random` streams.

    Example
    -------
    >>> streams = RandomStreams(42)
    >>> a = streams.get("topology")
    >>> b = streams.get("topology")
    >>> a is b
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child factory whose streams are independent of ours."""
        return RandomStreams(derive_seed(self.master_seed, f"spawn:{name}"))

    # -- convenience draws ---------------------------------------------------
    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw on the named stream."""
        return self.get(name).uniform(low, high)

    def randint(self, name: str, low: int, high: int) -> int:
        """One integer draw (inclusive bounds) on the named stream."""
        return self.get(name).randint(low, high)

    def choice(self, name: str, options: Sequence[T]) -> T:
        """Choose one element of ``options`` on the named stream."""
        return self.get(name).choice(options)

    def sample(self, name: str, options: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements on the named stream."""
        return self.get(name).sample(options, k)

    def shuffled(self, name: str, items: Iterable[T]) -> List[T]:
        """Return a new shuffled list of ``items`` on the named stream."""
        out = list(items)
        self.get(name).shuffle(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RandomStreams seed={self.master_seed} streams={sorted(self._streams)}>"
