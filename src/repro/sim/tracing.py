"""Structured event tracing.

Protocols emit :class:`TraceRecord`\\ s through a :class:`Tracer`; tests
and experiment runners subscribe to categories to observe behaviour
without instrumenting protocol code.  Tracing is off by default and
costs one predicate check per emit when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulated time of the occurrence.
    category:
        Dotted category, e.g. ``"pop.req_child"`` or ``"block.generated"``.
    node:
        Identifier of the node the record concerns (or ``None``).
    detail:
        Free-form payload dictionary.
    """

    time: float
    category: str
    node: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects and dispatches :class:`TraceRecord` objects.

    Parameters
    ----------
    enabled:
        When ``False`` (the default), :meth:`emit` is a no-op except for
        registered live subscribers, and nothing is retained.
    keep:
        When ``True``, all emitted records are retained in
        :attr:`records` for later inspection.
    """

    def __init__(self, enabled: bool = False, keep: bool = False) -> None:
        self.enabled = enabled
        self.keep = keep
        self.records: List[TraceRecord] = []
        self._subscribers: Dict[str, List[Callable[[TraceRecord], None]]] = {}

    def subscribe(self, category_prefix: str, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for records whose category has this prefix."""
        self._subscribers.setdefault(category_prefix, []).append(callback)
        self.enabled = True

    def emit(self, time: float, category: str, node: Optional[int] = None, **detail: Any) -> None:
        """Emit a record; cheap no-op when tracing is disabled."""
        if not self.enabled:
            return
        record = TraceRecord(time=time, category=category, node=node, detail=detail)
        if self.keep:
            self.records.append(record)
        for prefix, callbacks in self._subscribers.items():
            if category.startswith(prefix):
                for callback in callbacks:
                    callback(record)

    def by_category(self, category_prefix: str) -> List[TraceRecord]:
        """All retained records whose category starts with the prefix."""
        return [r for r in self.records if r.category.startswith(category_prefix)]

    def clear(self) -> None:
        """Drop all retained records."""
        self.records.clear()
