"""Structured event tracing.

Protocols emit :class:`TraceRecord`\\ s through a :class:`Tracer`; tests
and experiment runners subscribe to categories to observe behaviour
without instrumenting protocol code.  Tracing is off by default and
costs one predicate check per emit when disabled.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple


class TraceRecord(NamedTuple):
    """One traced occurrence.

    A named tuple rather than a dataclass: records are built on every
    enabled emission inside hot simulation loops, and tuple
    construction keeps that path cheap.  Records are immutable and
    read-only by convention (``detail`` is owned by the emitter).

    Attributes
    ----------
    time:
        Simulated time of the occurrence.
    category:
        Dotted category, e.g. ``"pop.req_child"`` or ``"block.generated"``.
    node:
        Identifier of the node the record concerns (or ``None``).
    detail:
        Free-form payload dictionary.
    """

    time: float
    category: str
    node: Optional[int] = None
    detail: Dict[str, Any] = {}


class Tracer:
    """Collects and dispatches :class:`TraceRecord` objects.

    Parameters
    ----------
    enabled:
        When ``False`` (the default), :meth:`emit` is a no-op except for
        registered live subscribers, and nothing is retained.
    keep:
        When ``True``, all emitted records are retained in
        :attr:`records` for later inspection.
    """

    def __init__(self, enabled: bool = False, keep: bool = False) -> None:
        self.enabled = enabled
        self.keep = keep
        self.records: List[TraceRecord] = []
        self._subscribers: Dict[str, List[Callable[[TraceRecord], None]]] = {}
        #: Exact category -> matching callbacks, built lazily per
        #: category so the hot emit path is one dict lookup instead of
        #: a prefix scan; invalidated whenever a subscriber is added.
        self._dispatch: Dict[str, Tuple[Callable[[TraceRecord], None], ...]] = {}
        #: Cooperative source-level pre-filters for high-frequency
        #: categories; see :meth:`set_interest`.
        self.interests: Dict[str, Any] = {}

    def subscribe(self, category_prefix: str, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for records whose category has this prefix."""
        self._subscribers.setdefault(category_prefix, []).append(callback)
        self._dispatch.clear()
        self.enabled = True

    def set_interest(self, category: str, container: Any) -> None:
        """Install a cooperative pre-filter for a high-frequency category.

        Emission sites of categories documented as *filterable* consult
        :attr:`interests` before emitting: when a container is
        registered for the category, a record is emitted only for keys
        present in it (``key in container``).  A subscriber that
        samples a small population can thereby suppress the per-event
        emission cost of the unsampled majority at the source, instead
        of discarding records after they were built and dispatched.
        The filter is category-wide: it also hides the skipped
        emissions from every other subscriber of that category.
        """
        self.interests[category] = container

    def emit(self, time: float, category: str, node: Optional[int] = None, **detail: Any) -> None:
        """Emit a record; cheap no-op when tracing is disabled."""
        if not self.enabled:
            return
        callbacks = self._dispatch.get(category)
        if callbacks is None:
            callbacks = tuple(
                callback
                for prefix, registered in self._subscribers.items()
                if category.startswith(prefix)
                for callback in registered
            )
            self._dispatch[category] = callbacks
        if not callbacks and not self.keep:
            return
        record = TraceRecord(time, category, node, detail)
        if self.keep:
            self.records.append(record)
        for callback in callbacks:
            callback(record)

    def by_category(self, category_prefix: str) -> List[TraceRecord]:
        """All retained records whose category starts with the prefix."""
        return [r for r in self.records if r.category.startswith(category_prefix)]

    def clear(self) -> None:
        """Drop all retained records."""
        self.records.clear()
