"""Opt-in observability: metrics registry + structured event streams.

Two halves, both dependency-free and deterministic:

* :mod:`repro.telemetry.metrics` — a process-local
  :class:`MetricsRegistry` of Counter/Gauge/Histogram families with
  labels and byte-stable Prometheus text exposition.
* :mod:`repro.telemetry.events` — the :class:`TelemetryRecorder`
  emitting each run's pinned-schema per-slot JSONL stream, plus the
  validators CI uses; :mod:`repro.telemetry.summarize` is the read
  side (tables + exposition for ``python -m repro telemetry ...``).

Telemetry is strictly write-only observation: enabling it never feeds
back into simulation decisions, so seeded trace digests and campaign
cell digests are byte-identical with telemetry on or off (CI-gated).
See docs/observability.md.
"""

from repro.telemetry.events import (
    EVENT_KINDS,
    FAULT,
    RUN_END,
    RUN_START,
    SCHEMA_VERSION,
    SLOT,
    SLOT_SERIES_KEYS,
    TELEMETRY_ENV_VAR,
    TelemetryError,
    TelemetryRecorder,
    discover_streams,
    parse_stream,
    stream_filename,
    telemetry_dir_from_env,
    validate_record,
    validate_stream,
)
from repro.telemetry.metrics import (
    COUNTER,
    DEFAULT_BUCKETS,
    GAUGE,
    HISTOGRAM,
    Metric,
    MetricsError,
    MetricsRegistry,
)
from repro.telemetry.summarize import (
    export_prometheus,
    format_summary_table,
    read_streams,
    registry_from_records,
    summarize_records,
    summarize_streams,
)

__all__ = [
    "COUNTER",
    "DEFAULT_BUCKETS",
    "EVENT_KINDS",
    "FAULT",
    "GAUGE",
    "HISTOGRAM",
    "Metric",
    "MetricsError",
    "MetricsRegistry",
    "RUN_END",
    "RUN_START",
    "SCHEMA_VERSION",
    "SLOT",
    "SLOT_SERIES_KEYS",
    "TELEMETRY_ENV_VAR",
    "TelemetryError",
    "TelemetryRecorder",
    "discover_streams",
    "export_prometheus",
    "format_summary_table",
    "parse_stream",
    "read_streams",
    "registry_from_records",
    "stream_filename",
    "summarize_records",
    "summarize_streams",
    "telemetry_dir_from_env",
    "validate_record",
    "validate_stream",
]
