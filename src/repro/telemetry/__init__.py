"""Opt-in observability: metrics registry + structured event streams.

Two halves, both dependency-free and deterministic:

* :mod:`repro.telemetry.metrics` — a process-local
  :class:`MetricsRegistry` of Counter/Gauge/Histogram families with
  labels and byte-stable Prometheus text exposition.
* :mod:`repro.telemetry.events` — the :class:`TelemetryRecorder`
  emitting each run's pinned-schema per-slot JSONL stream, plus the
  validators CI uses; :mod:`repro.telemetry.summarize` is the read
  side (tables + exposition for ``python -m repro telemetry ...``).

On top, block-lifecycle tracing and invariant monitoring:

* :mod:`repro.telemetry.spans` — the :class:`SpanRecorder` and
  per-backend span collectors writing each run's v2 block-trace
  stream (a deterministic sample of blocks, one span tree per block);
* :mod:`repro.telemetry.tracepath` — critical-path latency
  attribution, waterfalls and SVG rendering over trace streams
  (``python -m repro telemetry trace``);
* :mod:`repro.telemetry.monitors` — read-side liveness/safety/
  fault-consistency probes producing a pinned-schema verdict document
  (``campaign run --monitors``).

Telemetry is strictly write-only observation: enabling it never feeds
back into simulation decisions, so seeded trace digests and campaign
cell digests are byte-identical with telemetry (and tracing) on or
off (CI-gated).  See docs/observability.md.
"""

from repro.telemetry.events import (
    EVENT_KINDS,
    FAULT,
    RUN_END,
    RUN_START,
    SCHEMA_VERSION,
    SLOT,
    SLOT_SERIES_KEYS,
    TELEMETRY_ENV_VAR,
    TelemetryError,
    TelemetryRecorder,
    discover_streams,
    parse_stream,
    stream_filename,
    telemetry_dir_from_env,
    validate_record,
    validate_stream,
)
from repro.telemetry.metrics import (
    COUNTER,
    DEFAULT_BUCKETS,
    GAUGE,
    HISTOGRAM,
    Metric,
    MetricsError,
    MetricsRegistry,
)
from repro.telemetry.monitors import (
    MONITOR_IDS,
    MONITOR_SCHEMA_VERSION,
    evaluate_monitors,
    format_monitor_table,
    load_monitor_document,
    validate_monitor_document,
)
from repro.telemetry.spans import (
    SPAN_SCHEMA_VERSION,
    TRACE_SAMPLE_ENV_VAR,
    SpanRecorder,
    block_sampled,
    is_trace_stream,
    parse_trace_stream,
    span_stream_digest,
    trace_sample_from_env,
    trace_stream_filename,
    validate_trace_record,
    validate_trace_stream,
)
from repro.telemetry.summarize import (
    export_prometheus,
    format_summary_table,
    read_streams,
    registry_from_records,
    summarize_records,
    summarize_streams,
)
from repro.telemetry.tracepath import (
    block_waterfall,
    critical_path,
    format_trace_report,
    read_trace_streams,
    trace_report,
    waterfall_figure,
    waterfall_svg,
)

__all__ = [
    "COUNTER",
    "DEFAULT_BUCKETS",
    "EVENT_KINDS",
    "FAULT",
    "GAUGE",
    "HISTOGRAM",
    "MONITOR_IDS",
    "MONITOR_SCHEMA_VERSION",
    "Metric",
    "MetricsError",
    "MetricsRegistry",
    "RUN_END",
    "RUN_START",
    "SCHEMA_VERSION",
    "SLOT",
    "SLOT_SERIES_KEYS",
    "SPAN_SCHEMA_VERSION",
    "SpanRecorder",
    "TELEMETRY_ENV_VAR",
    "TRACE_SAMPLE_ENV_VAR",
    "TelemetryError",
    "TelemetryRecorder",
    "block_sampled",
    "block_waterfall",
    "critical_path",
    "discover_streams",
    "evaluate_monitors",
    "export_prometheus",
    "format_monitor_table",
    "format_summary_table",
    "format_trace_report",
    "is_trace_stream",
    "load_monitor_document",
    "parse_stream",
    "parse_trace_stream",
    "read_streams",
    "read_trace_streams",
    "registry_from_records",
    "span_stream_digest",
    "stream_filename",
    "summarize_records",
    "summarize_streams",
    "telemetry_dir_from_env",
    "trace_report",
    "trace_sample_from_env",
    "trace_stream_filename",
    "validate_monitor_document",
    "validate_record",
    "validate_stream",
    "validate_trace_record",
    "validate_trace_stream",
    "waterfall_figure",
    "waterfall_svg",
]
