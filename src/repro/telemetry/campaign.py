"""Metrics instrumentation for the campaign executor.

A :class:`CampaignTelemetry` bundles the metric families the
:class:`~repro.campaign.executor.CampaignExecutor` updates while it
runs — cell outcomes, failed attempts by kind, retries, pool respawns,
flaky detections and a per-cell wall-clock histogram — and renders
them as a Prometheus text exposition (``campaign-<name>.prom`` under
the telemetry directory when ``--telemetry`` is on).

Like every telemetry surface, this is write-only observation: the
executor's control flow never reads the registry, so cell payloads and
campaign cell digests are byte-identical with or without it.  Cell
wall-clock *is* recorded here (the executor is harness infrastructure,
outside the simulated clock), which is exactly why elapsed seconds
live only in telemetry artifacts and journals, never in payloads.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.metrics import MetricsRegistry

#: Cell outcome label values on ``repro_campaign_cells_total``.
OUTCOME_CACHED = "cached"
OUTCOME_COMPUTED = "computed"
OUTCOME_QUARANTINED = "quarantined"

#: Bucket bounds for per-cell wall clock (seconds).
CELL_SECONDS_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0)


class CampaignTelemetry:
    """The campaign executor's metric families over one registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._cells = self.registry.counter(
            "repro_campaign_cells_total",
            "Cell outcomes (cached / computed / quarantined)",
            ("campaign", "outcome"),
        )
        self._failures = self.registry.counter(
            "repro_campaign_attempt_failures_total",
            "Failed cell attempts by failure kind",
            ("campaign", "kind"),
        )
        self._retries = self.registry.counter(
            "repro_campaign_retries_total",
            "Retries scheduled after failed attempts",
            ("campaign",),
        )
        self._respawns = self.registry.counter(
            "repro_campaign_pool_respawns_total",
            "Worker pool respawns (crashes and timeout kills)",
            ("campaign",),
        )
        self._flaky = self.registry.counter(
            "repro_campaign_flaky_cells_total",
            "Cells whose recomputed payload digest mismatched",
            ("campaign",),
        )
        self._seconds = self.registry.histogram(
            "repro_campaign_cell_seconds",
            "Wall-clock seconds per computed cell",
            ("campaign",),
            buckets=CELL_SECONDS_BUCKETS,
        )

    # -- executor hooks ------------------------------------------------------
    def cell_cached(self, campaign: str) -> None:
        self._cells.inc(campaign=campaign, outcome=OUTCOME_CACHED)

    def cell_computed(self, campaign: str, elapsed_s: float) -> None:
        self._cells.inc(campaign=campaign, outcome=OUTCOME_COMPUTED)
        self._seconds.observe(elapsed_s, campaign=campaign)

    def cell_quarantined(self, campaign: str) -> None:
        self._cells.inc(campaign=campaign, outcome=OUTCOME_QUARANTINED)

    def cell_flaky(self, campaign: str) -> None:
        self._flaky.inc(campaign=campaign)

    def attempt_failed(self, campaign: str, kind: str) -> None:
        self._failures.inc(campaign=campaign, kind=kind)

    def retry_scheduled(self, campaign: str) -> None:
        self._retries.inc(campaign=campaign)

    def pool_respawned(self, campaign: str) -> None:
        self._respawns.inc(campaign=campaign)

    # -- export --------------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition of everything recorded."""
        return self.registry.render_prometheus()
