"""Structured per-slot telemetry event streams (versioned JSONL).

A :class:`TelemetryRecorder` turns one scenario run into an append-only
JSONL stream of typed events, written under an opt-in telemetry
directory (``--telemetry DIR`` / ``$REPRO_TELEMETRY``).  The stream is
pure *observation*: the :class:`~repro.scenario.runner.ScenarioRunner`
emits events from state it already reads (backend samples, fault
engine applications, result totals), so a telemetry-enabled run drives
the simulation identically to a disabled one — seeded trace digests
are byte-for-byte the same either way, which CI gates.

Timestamps are **slot time** (the workload's slot counter plus the
kernel's simulated clock ``sim_now``), never the wall clock: streams
from two machines of different speeds are byte-comparable.

Event schema (``v`` = :data:`SCHEMA_VERSION`, pinned; adding a kind or
a field bumps it)::

    run-start  {v, event, scenario, backend, nodes, slots, seed}
    slot       {v, event, slot, slots_covered, sim_now,
                series: {storage_mb, traffic_mbit,
                         traffic_dag_mbit, traffic_pop_mbit},
                deltas:  {… same keys, change since previous record …},
                counters: {backend-specific montonic totals},
                counter_deltas: {… change since previous record …}}
    fault      {v, event, slot, kind, detail}
    run-end    {v, event, slot, sim_now, blocks, validations,
                success_rate, events, trace_sha256}

``slot`` events fire at the runner's existing slot boundaries (sample
slots, fault boundaries, the final slot) — telemetry never adds
boundaries, because chunking is observable to some backends (PBFT
settles per driven chunk).  Each record therefore covers
``slots_covered`` slots ending at ``slot``.

:func:`validate_record` / :func:`validate_stream` check a stream
against this schema; ``python -m repro telemetry validate`` is the CLI
face CI uses.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

#: The pinned stream schema version; every record carries it as ``v``.
SCHEMA_VERSION = 1

#: Environment override enabling telemetry without a CLI flag.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

#: Event kinds, in emission order.
RUN_START = "run-start"
SLOT = "slot"
FAULT = "fault"
RUN_END = "run-end"
EVENT_KINDS = (RUN_START, SLOT, FAULT, RUN_END)

#: The series keys every ``slot`` record carries (the runner's
#: canonical sampled series — see repro.scenario.runner.SERIES_KEYS).
SLOT_SERIES_KEYS = (
    "storage_mb", "traffic_mbit", "traffic_dag_mbit", "traffic_pop_mbit"
)

#: Required fields per event kind: name -> required python type(s).
_NUMBER = (int, float)
_FIELDS: Dict[str, Dict[str, tuple]] = {
    RUN_START: {
        "scenario": (str,),
        "backend": (str,),
        "nodes": (int,),
        "slots": (int,),
        "seed": (int,),
    },
    SLOT: {
        "slot": (int,),
        "slots_covered": (int,),
        "sim_now": _NUMBER,
        "series": (dict,),
        "deltas": (dict,),
        "counters": (dict,),
        "counter_deltas": (dict,),
    },
    FAULT: {
        "slot": (int,),
        "kind": (str,),
        "detail": (str,),
    },
    RUN_END: {
        "slot": (int,),
        "sim_now": _NUMBER,
        "blocks": (int,),
        "validations": (int,),
        "success_rate": _NUMBER,
        "events": (int,),
        "trace_sha256": (str,),
    },
}


class TelemetryError(ValueError):
    """A telemetry record or stream that violates the pinned schema."""


def telemetry_dir_from_env() -> Optional[str]:
    """The ``$REPRO_TELEMETRY`` directory, or ``None`` when unset."""
    value = os.environ.get(TELEMETRY_ENV_VAR, "").strip()
    return value or None


def validate_record(record: Any, line: int = 0) -> None:
    """Raise :class:`TelemetryError` unless ``record`` fits the schema."""
    where = f"line {line}: " if line else ""
    if not isinstance(record, dict):
        raise TelemetryError(f"{where}record must be a JSON object")
    version = record.get("v")
    if version != SCHEMA_VERSION:
        raise TelemetryError(
            f"{where}schema version {version!r} is not the pinned "
            f"{SCHEMA_VERSION}"
        )
    kind = record.get("event")
    if kind not in _FIELDS:
        raise TelemetryError(
            f"{where}unknown event kind {kind!r}; known: "
            f"{', '.join(EVENT_KINDS)}"
        )
    spec = _FIELDS[kind]
    for field, types in spec.items():
        if field not in record:
            raise TelemetryError(f"{where}{kind} record lacks field {field!r}")
        value = record[field]
        if not isinstance(value, types) or isinstance(value, bool):
            raise TelemetryError(
                f"{where}{kind} field {field!r} has type "
                f"{type(value).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    unknown = set(record) - set(spec) - {"v", "event"}
    if unknown:
        raise TelemetryError(
            f"{where}{kind} record carries unknown field(s): "
            f"{', '.join(sorted(unknown))}"
        )
    if kind == SLOT:
        for mapping_field in ("series", "deltas"):
            mapping = record[mapping_field]
            if sorted(mapping) != sorted(SLOT_SERIES_KEYS):
                raise TelemetryError(
                    f"{where}slot {mapping_field} must carry exactly "
                    f"{list(SLOT_SERIES_KEYS)}, got {sorted(mapping)}"
                )
        for mapping_field in ("series", "deltas", "counters", "counter_deltas"):
            for key, value in record[mapping_field].items():
                if not isinstance(value, _NUMBER) or isinstance(value, bool):
                    raise TelemetryError(
                        f"{where}slot {mapping_field}[{key!r}] must be "
                        f"numeric, got {type(value).__name__}"
                    )
        if sorted(record["counters"]) != sorted(record["counter_deltas"]):
            raise TelemetryError(
                f"{where}slot counters and counter_deltas must carry the "
                f"same keys"
            )


def parse_stream(text: str, source: str = "<stream>") -> List[Dict[str, Any]]:
    """Parse and validate one JSONL stream; raises on the first defect."""
    records: List[Dict[str, Any]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            raise TelemetryError(
                f"{source}: line {line_number}: not valid JSON ({error})"
            )
        try:
            validate_record(record, line=line_number)
        except TelemetryError as error:
            raise TelemetryError(f"{source}: {error}")
        records.append(record)
    return records


def validate_stream(text: str, source: str = "<stream>") -> List[str]:
    """Every schema violation in ``text`` as messages (empty = clean)."""
    errors: List[str] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            errors.append(f"{source}: line {line_number}: not valid JSON ({error})")
            continue
        try:
            validate_record(record, line=line_number)
        except TelemetryError as error:
            errors.append(f"{source}: {error}")
    return errors


_UNSAFE_NAME = re.compile(r"[^A-Za-z0-9._-]+")


def stream_filename(scenario: str, backend: str, seed: int) -> str:
    """The deterministic stream file name for one run."""
    safe = _UNSAFE_NAME.sub("-", scenario) or "scenario"
    return f"run-{safe}-{backend}-seed{seed}.jsonl"


class TelemetryRecorder:
    """Write one run's event stream under a telemetry directory.

    The recorder is handed to a
    :class:`~repro.scenario.runner.ScenarioRunner`; the runner calls
    the ``run_started`` / ``slot_advanced`` / ``fault_applied`` /
    ``run_finished`` hooks and the recorder does the bookkeeping
    (per-record deltas, schema construction, JSONL writing).  Every
    emitted record is validated against the pinned schema before it is
    written, so a drifting instrumentation site fails loudly in tests
    rather than silently corrupting streams.

    Writes are plain appends of single lines (the journal idiom);
    ``run_started`` truncates any previous stream of the same run name
    so a re-run leaves a clean, byte-deterministic file.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.path: Optional[Path] = None
        self._last_series: Dict[str, float] = {}
        self._last_counters: Dict[str, float] = {}
        self.records_written = 0

    # -- plumbing ----------------------------------------------------------
    def _write(self, record: Dict[str, Any]) -> None:
        validate_record(record)
        if self.path is None:
            raise TelemetryError(
                "telemetry stream not opened; run_started() must come first"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
        self.records_written += 1

    # -- the runner-facing hooks -------------------------------------------
    def run_started(self, spec) -> None:
        """Open the stream and emit the ``run-start`` record."""
        self.path = self.directory / stream_filename(
            spec.name, spec.backend, spec.seed
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        try:
            self.path.unlink()
        except OSError:
            pass
        self._last_series = {}
        self._last_counters = {}
        self.records_written = 0
        self._write({
            "v": SCHEMA_VERSION,
            "event": RUN_START,
            "scenario": spec.name,
            "backend": spec.backend,
            "nodes": spec.node_count,
            "slots": spec.workload.slots,
            "seed": spec.seed,
        })

    def slot_advanced(
        self,
        slot: int,
        slots_covered: int,
        sim_now: float,
        series: Mapping[str, float],
        counters: Mapping[str, float],
    ) -> None:
        """Emit one ``slot`` record (deltas computed vs the previous)."""
        series_now = {key: float(series[key]) for key in SLOT_SERIES_KEYS}
        counters_now = {key: float(value) for key, value in counters.items()}
        deltas = {
            key: value - self._last_series.get(key, 0.0)
            for key, value in series_now.items()
        }
        counter_deltas = {
            key: value - self._last_counters.get(key, 0.0)
            for key, value in counters_now.items()
        }
        self._write({
            "v": SCHEMA_VERSION,
            "event": SLOT,
            "slot": slot,
            "slots_covered": slots_covered,
            "sim_now": float(sim_now),
            "series": series_now,
            "deltas": deltas,
            "counters": counters_now,
            "counter_deltas": counter_deltas,
        })
        self._last_series = series_now
        self._last_counters = counters_now

    def fault_applied(self, event, slot: int) -> None:
        """Emit one ``fault`` record for an applied timeline event."""
        self._write({
            "v": SCHEMA_VERSION,
            "event": FAULT,
            "slot": slot,
            "kind": event.kind,
            "detail": event.describe(),
        })

    def run_finished(
        self,
        slot: int,
        sim_now: float,
        blocks: int,
        validations: int,
        success_rate: float,
        events: int,
        trace_sha256: str,
    ) -> None:
        """Emit the terminal ``run-end`` record."""
        self._write({
            "v": SCHEMA_VERSION,
            "event": RUN_END,
            "slot": slot,
            "sim_now": float(sim_now),
            "blocks": blocks,
            "validations": validations,
            "success_rate": float(success_rate),
            "events": events,
            "trace_sha256": trace_sha256,
        })


def discover_streams(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Stream files under ``paths`` (files verbatim, dirs globbed)."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(sorted(path.glob("*.jsonl")))
        elif path.is_file():
            found.append(path)
        else:
            raise TelemetryError(f"no such telemetry file or directory: {raw}")
    seen: set = set()
    unique: List[Path] = []
    for path in found:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique
