"""Process-local metrics: Counter / Gauge / Histogram with labels.

A :class:`MetricsRegistry` owns a flat namespace of named metrics, each
optionally split by a fixed tuple of label names.  The design follows
the Prometheus client idiom — ``registry.counter(...)`` declares (or
returns) a metric family, ``family.labels(backend="pbft")`` addresses
one child, children accumulate — but stays dependency-free and
deterministic: no background threads, no wall-clock timestamps, and
:meth:`MetricsRegistry.render_prometheus` emits families and children
in sorted order so two identical runs render byte-identical text.

The registry is *observability* state: nothing in the simulation may
read it back into decisions, so populating it can never perturb seeded
trace digests.  Exposition follows the Prometheus text format
(``# HELP`` / ``# TYPE`` then one sample line per child), which is what
``python -m repro telemetry export`` and the campaign executor's
``metrics.prom`` artifact serve.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Metric family types, matching the Prometheus text exposition names.
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default histogram bucket upper bounds (seconds-flavoured, like the
#: Prometheus client default, but usable for any unit).
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)

#: One rendered sample: (metric name, label pairs, value).
Sample = Tuple[str, Tuple[Tuple[str, str], ...], float]


class MetricsError(ValueError):
    """A metric was declared or addressed inconsistently."""


_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise MetricsError(
            f"invalid metric name {name!r}: use [a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    """Prometheus-style number rendering (integers without the dot)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    """``{a="x",b="y"}`` (empty string for an unlabelled child)."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


class _Child:
    """One (label-value-addressed) time series of a metric family."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class _HistogramChild:
    """Bucketed observations plus running sum/count."""

    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, bucket_count: int) -> None:
        self.bucket_counts = [0] * bucket_count
        self.total = 0.0
        self.count = 0


class Metric:
    """One metric family: a name, a type, and label-addressed children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = _check_name(name)
        self.help = help_text
        self.type = metric_type
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _check_name(label)
        if metric_type == HISTOGRAM:
            bounds = [float(b) for b in buckets]
            if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
                raise MetricsError(
                    f"histogram {name!r} buckets must be strictly increasing"
                )
            self.buckets: Tuple[float, ...] = tuple(bounds)
        else:
            self.buckets = ()
        self._children: Dict[Tuple[str, ...], object] = {}

    # -- addressing --------------------------------------------------------
    def _key(self, labels: Mapping[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise MetricsError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labelnames)}, got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _child(self, labels: Mapping[str, str]):
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            child = (
                _HistogramChild(len(self.buckets))
                if self.type == HISTOGRAM else _Child()
            )
            self._children[key] = child
        return child

    # -- writing -----------------------------------------------------------
    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (counters insist it is non-negative)."""
        if self.type == HISTOGRAM:
            raise MetricsError(f"histogram {self.name!r} takes observe(), not inc()")
        if self.type == COUNTER and amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        self._child(labels).value += amount

    def set(self, value: float, **labels: str) -> None:
        """Overwrite the current value (gauges only)."""
        if self.type != GAUGE:
            raise MetricsError(f"{self.type} {self.name!r} cannot be set()")
        self._child(labels).value = float(value)

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation (histograms only)."""
        if self.type != HISTOGRAM:
            raise MetricsError(f"{self.type} {self.name!r} cannot observe()")
        child = self._child(labels)
        child.total += value
        child.count += 1
        # Per-bucket storage; samples() cumulates once at render time.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                child.bucket_counts[i] += 1
                break

    # -- reading -----------------------------------------------------------
    def value(self, **labels: str) -> float:
        """The current value of one counter/gauge child (0.0 if unseen)."""
        if self.type == HISTOGRAM:
            raise MetricsError(f"histogram {self.name!r} has no scalar value")
        child = self._children.get(self._key(labels))
        return child.value if child is not None else 0.0

    def samples(self) -> Iterator[Sample]:
        """Every rendered sample of this family, in sorted child order."""
        for key in sorted(self._children):
            labels = tuple(zip(self.labelnames, key))
            child = self._children[key]
            if self.type == HISTOGRAM:
                assert isinstance(child, _HistogramChild)
                cumulative = 0
                for bound, count in zip(self.buckets, child.bucket_counts):
                    cumulative += count
                    yield (
                        f"{self.name}_bucket",
                        labels + (("le", _format_value(bound)),),
                        float(cumulative),
                    )
                yield (
                    f"{self.name}_bucket",
                    labels + (("le", "+Inf"),),
                    float(child.count),
                )
                yield f"{self.name}_sum", labels, child.total
                yield f"{self.name}_count", labels, float(child.count)
            else:
                assert isinstance(child, _Child)
                yield self.name, labels, child.value


class MetricsRegistry:
    """A flat, deterministic namespace of metric families."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _declare(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if (
                existing.type != metric_type
                or existing.labelnames != tuple(labelnames)
            ):
                raise MetricsError(
                    f"metric {name!r} re-declared with a different "
                    f"type/label set (was {existing.type} "
                    f"{list(existing.labelnames)})"
                )
            return existing
        metric = Metric(name, help_text, metric_type, labelnames, buckets)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Metric:
        """Declare (or fetch) a monotonically increasing counter."""
        return self._declare(name, help_text, COUNTER, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Metric:
        """Declare (or fetch) a settable gauge."""
        return self._declare(name, help_text, GAUGE, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Metric:
        """Declare (or fetch) a bucketed histogram."""
        return self._declare(name, help_text, HISTOGRAM, labelnames, buckets)

    def get(self, name: str) -> Optional[Metric]:
        """The named family, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All declared family names, sorted."""
        return sorted(self._metrics)

    def collect(self) -> List[Sample]:
        """Every sample of every family, in deterministic order."""
        samples: List[Sample] = []
        for name in self.names():
            samples.extend(self._metrics[name].samples())
        return samples

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of the whole registry.

        Families render in name order and children in label order, so
        the output is a pure function of the recorded values — two
        identical runs produce byte-identical expositions.
        """
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.type}")
            for sample_name, labels, value in metric.samples():
                lines.append(
                    f"{sample_name}{render_labels(labels)} "
                    f"{_format_value(value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")
