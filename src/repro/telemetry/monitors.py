"""Live invariant monitors over telemetry + trace streams.

Pure read-side probes evaluated over recorded streams (during or
after a run — streams are append-only JSONL, so a partial stream is
as probeable as a finished one).  Each monitor checks one invariant
the paper's experiments rely on:

* ``liveness-progress`` — the ledger makes confirmation progress: the
  backend's progress counter (blocks / consensus rounds / tangle
  size) grows over the run's observation windows.
* ``safety-monotone-growth`` — chain/tangle growth is monotone: no
  per-slot counter or storage/traffic series ever decreases.
* ``safety-no-conflicting-commits`` — no two distinct blocks commit
  at the same PBFT (view, sequence) slot, and no block key is traced
  twice.  The slot is per-view because the simplified view change
  does not transfer prepared certificates across views, so a later
  view may legitimately reassign an uncommitted sequence; the
  quorum-intersection guarantee the probe checks is within a view.
* ``fault-consistency`` — no span progress on crashed nodes: no
  ``created``/``gossiped`` span falls inside a node's crash window.

Verdicts land in a pinned-schema ``monitors`` document
(:data:`MONITOR_SCHEMA_VERSION`), consumed by ``campaign status``,
the campaign dashboard, and the optional ``--monitors strict`` gate.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.metrics.reporting import format_table
from repro.telemetry.events import (
    RUN_START,
    SLOT,
    TelemetryError,
    discover_streams,
    parse_stream,
)
from repro.telemetry.spans import (
    BLOCK_TRACE,
    TRACE_FAULT,
    TRACE_START,
    is_trace_stream,
    parse_trace_stream,
)

#: The pinned monitors-document schema version.
MONITOR_SCHEMA_VERSION = 1

MONITOR_PASS = "pass"
MONITOR_FAIL = "fail"
MONITOR_SKIP = "skip"
MONITOR_STATUSES = (MONITOR_PASS, MONITOR_FAIL, MONITOR_SKIP)

LIVENESS_PROGRESS = "liveness-progress"
SAFETY_MONOTONE = "safety-monotone-growth"
SAFETY_COMMITS = "safety-no-conflicting-commits"
FAULT_CONSISTENCY = "fault-consistency"
MONITOR_IDS = (
    LIVENESS_PROGRESS, SAFETY_MONOTONE, SAFETY_COMMITS, FAULT_CONSISTENCY
)

#: Backend progress counters the liveness probe watches, in preference
#: order (the first one present in the stream's counters is used).
_PROGRESS_COUNTERS = ("blocks", "consensus_rounds", "tangle_size")

#: Span phases that only an online/non-crashed node can produce, on
#: every backend (creation-path emissions).  Validation phases are
#: deliberately absent: a 2LDAG validator that crashes mid-PoP
#: legitimately completes its in-flight protocol run.
_ONLINE_ONLY_PHASES = ("created", "gossiped")

_EPSILON = 1e-9


def _verdict(monitor_id: str, status: str, detail: str) -> Dict[str, str]:
    return {"id": monitor_id, "status": status, "detail": detail}


# -- the probes ----------------------------------------------------------------

def _check_liveness(slot_records: List[Dict[str, Any]]) -> Dict[str, str]:
    if not slot_records:
        return _verdict(
            LIVENESS_PROGRESS, MONITOR_SKIP, "no slot records to probe"
        )
    counters = slot_records[-1].get("counters", {})
    key = next((k for k in _PROGRESS_COUNTERS if k in counters), None)
    if key is None:
        return _verdict(
            LIVENESS_PROGRESS, MONITOR_SKIP,
            "no known progress counter in stream",
        )
    final = counters[key]
    progressed = sum(
        1 for record in slot_records
        if record["counter_deltas"].get(key, 0.0) > 0
    )
    detail = (
        f"{key} reached {final:g} over {len(slot_records)} windows "
        f"({progressed} progressed)"
    )
    if final <= 0:
        return _verdict(
            LIVENESS_PROGRESS, MONITOR_FAIL, f"no progress: {detail}"
        )
    return _verdict(LIVENESS_PROGRESS, MONITOR_PASS, detail)


def _check_monotone(slot_records: List[Dict[str, Any]]) -> Dict[str, str]:
    if not slot_records:
        return _verdict(
            SAFETY_MONOTONE, MONITOR_SKIP, "no slot records to probe"
        )
    watched = 0
    for previous, record in zip(slot_records, slot_records[1:]):
        pairs = list(record.get("counters", {}).items()) + [
            (series_key, record["series"][series_key])
            for series_key in ("storage_mb", "traffic_mbit")
        ]
        for key, value in pairs:
            before = previous.get("counters", {}).get(key)
            if before is None:
                before = previous["series"].get(key)
            if before is None:
                continue
            watched += 1
            if value < before - _EPSILON:
                return _verdict(
                    SAFETY_MONOTONE, MONITOR_FAIL,
                    f"{key} shrank from {before:g} to {value:g} "
                    f"at slot {record['slot']}",
                )
    return _verdict(
        SAFETY_MONOTONE, MONITOR_PASS,
        f"{watched} counter/series transitions monotone",
    )


def _check_commits(
    backend: str, traces: Optional[List[Dict[str, Any]]]
) -> Dict[str, str]:
    if traces is None:
        return _verdict(
            SAFETY_COMMITS, MONITOR_SKIP, "no trace stream recorded"
        )
    seen_keys = set()
    for trace in traces:
        if trace["block"] in seen_keys:
            return _verdict(
                SAFETY_COMMITS, MONITOR_FAIL,
                f"block key {trace['block']!r} traced twice",
            )
        seen_keys.add(trace["block"])
    if backend != "pbft":
        return _verdict(
            SAFETY_COMMITS, MONITOR_PASS,
            f"{len(seen_keys)} unique block keys "
            f"(no sequence-commit semantics on {backend})",
        )
    by_sequence: Dict[Tuple[int, int], set] = {}
    for trace in traces:
        for span in trace["spans"]:
            if span["phase"] != "commit":
                continue
            detail = span.get("detail", {})
            if "seq" not in detail or "view" not in detail:
                continue
            slot = (int(detail["view"]), int(detail["seq"]))
            keys = by_sequence.setdefault(slot, set())
            keys.add(trace["block"])
            if len(keys) > 1:
                return _verdict(
                    SAFETY_COMMITS, MONITOR_FAIL,
                    f"view {slot[0]} sequence {slot[1]} committed "
                    f"conflicting blocks {sorted(keys)!r}",
                )
    return _verdict(
        SAFETY_COMMITS, MONITOR_PASS,
        f"{len(by_sequence)} committed (view, sequence) slots "
        f"conflict-free across {len(seen_keys)} traced blocks",
    )


def _crash_windows(
    fault_records: List[Dict[str, Any]]
) -> Dict[int, List[Tuple[float, Optional[float]]]]:
    """node -> [(crash time, rejoin time or None)…] from fault records."""
    windows: Dict[int, List[Tuple[float, Optional[float]]]] = {}
    open_index: Dict[int, int] = {}
    for record in fault_records:
        if record["kind"] == "node-crash":
            for node in record["nodes"]:
                windows.setdefault(node, []).append((record["time"], None))
                open_index[node] = len(windows[node]) - 1
        elif record["kind"] == "node-rejoin":
            for node in record["nodes"]:
                index = open_index.pop(node, None)
                if index is not None:
                    start, _ = windows[node][index]
                    windows[node][index] = (start, record["time"])
    return windows


def _check_fault_consistency(
    traces: Optional[List[Dict[str, Any]]],
    fault_records: Optional[List[Dict[str, Any]]],
) -> Dict[str, str]:
    if traces is None:
        return _verdict(
            FAULT_CONSISTENCY, MONITOR_SKIP, "no trace stream recorded"
        )
    if not fault_records:
        return _verdict(
            FAULT_CONSISTENCY, MONITOR_SKIP,
            "no node-crash faults in the stream",
        )
    windows = _crash_windows(
        [r for r in fault_records if r["kind"] in ("node-crash", "node-rejoin")]
    )
    if not windows:
        return _verdict(
            FAULT_CONSISTENCY, MONITOR_SKIP,
            "no node-crash faults in the stream",
        )
    checked = 0
    for trace in traces:
        for span in trace["spans"]:
            if span["phase"] not in _ONLINE_ONLY_PHASES:
                continue
            for start, end in windows.get(span["node"], ()):
                checked += 1
                inside = span["end"] > start + _EPSILON and (
                    end is None or span["end"] < end - _EPSILON
                )
                if inside:
                    return _verdict(
                        FAULT_CONSISTENCY, MONITOR_FAIL,
                        f"block {trace['block']!r} phase {span['phase']} "
                        f"on crashed node {span['node']} at "
                        f"t={span['end']:g} (crash window "
                        f"[{start:g}, {'∞' if end is None else f'{end:g}'})",
                    )
    return _verdict(
        FAULT_CONSISTENCY, MONITOR_PASS,
        f"{checked} creation-phase spans clear of "
        f"{sum(len(w) for w in windows.values())} crash windows",
    )


# -- evaluation ----------------------------------------------------------------

def evaluate_monitors(paths: Iterable[Union[str, Path]]) -> Dict[str, Any]:
    """Probe every stream under ``paths``; returns the verdict document.

    Streams pair up per run (scenario, backend, seed): the v1 per-slot
    stream feeds the liveness/monotone probes, the v2 trace stream
    feeds the commit/fault probes.  A run missing one kind of stream
    gets ``skip`` verdicts for the probes that need it.
    """
    v1_runs: Dict[Tuple[str, str, int], Dict[str, Any]] = {}
    trace_runs: Dict[Tuple[str, str, int], Dict[str, Any]] = {}
    for path in discover_streams(paths):
        text = path.read_text(encoding="utf-8")
        if is_trace_stream(path):
            records = parse_trace_stream(text, source=str(path))
            start = next(
                (r for r in records if r.get("event") == TRACE_START), None
            )
            if start is None:
                continue
            trace_runs[(start["scenario"], start["backend"], start["seed"])] = {
                "path": path, "records": records,
            }
        else:
            records = parse_stream(text, source=str(path))
            start = next(
                (r for r in records if r.get("event") == RUN_START), None
            )
            if start is None:
                continue
            v1_runs[(start["scenario"], start["backend"], start["seed"])] = {
                "path": path, "records": records,
            }

    runs: List[Dict[str, Any]] = []
    counts = {MONITOR_PASS: 0, MONITOR_FAIL: 0, MONITOR_SKIP: 0}
    for key in sorted(set(v1_runs) | set(trace_runs)):
        scenario, backend, seed = key
        slot_records = [
            r for r in v1_runs.get(key, {}).get("records", [])
            if r.get("event") == SLOT
        ]
        trace = trace_runs.get(key)
        traces = None
        fault_records = None
        if trace is not None:
            traces = [
                r for r in trace["records"] if r.get("event") == BLOCK_TRACE
            ]
            fault_records = [
                r for r in trace["records"] if r.get("event") == TRACE_FAULT
            ]
        verdicts = [
            _check_liveness(slot_records)
            if key in v1_runs
            else _verdict(
                LIVENESS_PROGRESS, MONITOR_SKIP, "no per-slot stream recorded"
            ),
            _check_monotone(slot_records)
            if key in v1_runs
            else _verdict(
                SAFETY_MONOTONE, MONITOR_SKIP, "no per-slot stream recorded"
            ),
            _check_commits(backend, traces),
            _check_fault_consistency(traces, fault_records),
        ]
        for verdict in verdicts:
            counts[verdict["status"]] += 1
        streams = []
        if key in v1_runs:
            streams.append(str(v1_runs[key]["path"]))
        if trace is not None:
            streams.append(str(trace["path"]))
        runs.append({
            "scenario": scenario,
            "backend": backend,
            "seed": seed,
            "streams": streams,
            "monitors": verdicts,
        })
    return {
        "v": MONITOR_SCHEMA_VERSION,
        "runs": runs,
        "counts": counts,
        "status": MONITOR_FAIL if counts[MONITOR_FAIL] else MONITOR_PASS,
    }


def validate_monitor_document(document: Any) -> None:
    """Raise :class:`TelemetryError` unless ``document`` fits the schema."""
    if not isinstance(document, dict):
        raise TelemetryError("monitors document must be a JSON object")
    if document.get("v") != MONITOR_SCHEMA_VERSION:
        raise TelemetryError(
            f"monitors schema version {document.get('v')!r} is not the "
            f"pinned {MONITOR_SCHEMA_VERSION}"
        )
    expected = {"v", "runs", "counts", "status"}
    if set(document) != expected:
        raise TelemetryError(
            f"monitors document must carry exactly {sorted(expected)}, "
            f"got {sorted(document)}"
        )
    if document["status"] not in (MONITOR_PASS, MONITOR_FAIL):
        raise TelemetryError(
            f"monitors status must be pass/fail, got {document['status']!r}"
        )
    counts = document["counts"]
    if not isinstance(counts, dict) or set(counts) != set(MONITOR_STATUSES):
        raise TelemetryError(
            f"monitors counts must carry exactly {list(MONITOR_STATUSES)}"
        )
    if not isinstance(document["runs"], list):
        raise TelemetryError("monitors runs must be a list")
    for index, run in enumerate(document["runs"]):
        what = f"runs[{index}]"
        if not isinstance(run, dict):
            raise TelemetryError(f"{what} must be an object")
        for name, types in (
            ("scenario", str), ("backend", str), ("seed", int),
            ("streams", list), ("monitors", list),
        ):
            if not isinstance(run.get(name), types):
                raise TelemetryError(f"{what} lacks a valid {name!r}")
        for verdict in run["monitors"]:
            if not isinstance(verdict, dict) or set(verdict) != {
                "id", "status", "detail"
            }:
                raise TelemetryError(
                    f"{what} verdicts must carry exactly id/status/detail"
                )
            if verdict["id"] not in MONITOR_IDS:
                raise TelemetryError(
                    f"{what} names unknown monitor {verdict['id']!r}"
                )
            if verdict["status"] not in MONITOR_STATUSES:
                raise TelemetryError(
                    f"{what} has unknown status {verdict['status']!r}"
                )


def load_monitor_document(path: Union[str, Path]) -> Dict[str, Any]:
    """Read + validate a monitors document written by the CLI."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    validate_monitor_document(document)
    return document


def format_monitor_table(document: Dict[str, Any]) -> str:
    """The verdict document as an aligned text table."""
    rows = []
    for run in document["runs"]:
        for verdict in run["monitors"]:
            rows.append([
                run["scenario"],
                run["backend"],
                str(run["seed"]),
                verdict["id"],
                verdict["status"],
                verdict["detail"],
            ])
    counts = document["counts"]
    summary = (
        f"monitors: {document['status']} "
        f"({counts[MONITOR_PASS]} pass, {counts[MONITOR_FAIL]} fail, "
        f"{counts[MONITOR_SKIP]} skip)"
    )
    if not rows:
        return summary + "\n(no streams probed)"
    table = format_table(
        ["scenario", "backend", "seed", "monitor", "status", "detail"], rows
    )
    return summary + "\n" + table
