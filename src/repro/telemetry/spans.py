"""Opt-in causal block-lifecycle tracing (span streams, schema v2).

Where the v1 event streams (:mod:`repro.telemetry.events`) observe a
run at *slot* granularity, this module records, for a deterministic
sample of blocks, one span tree per block — the causal chain
``created → gossiped → received → validated/committed → confirmed`` —
with **slot-time timestamps only** (the kernel's simulated clock),
never the wall clock.

The moving parts:

* :class:`SpanCollector` subclasses (one per registered ledger
  backend) subscribe to the deployment's existing
  :class:`~repro.sim.tracing.Tracer` and fold lifecycle emissions into
  per-block traces.  Collection is pure observation: no RNG draws from
  existing streams, no event scheduling, no state written back into
  the simulation — which is what keeps a tracing-enabled run
  byte-identical to a disabled one (the determinism no-op contract,
  pinned per backend in tests and diffed in CI).
* Block sampling is seeded from a named ``tracing`` stream:
  :func:`block_sampled` is a pure function of the scenario's master
  seed and the block key, so the sampled set is identical across
  processes, replays and backends that share a key.
* :class:`SpanRecorder` writes one run's trace stream as JSONL under
  the telemetry directory, validated record by record against the
  pinned v2 schema.

Stream schema (``v`` = :data:`SPAN_SCHEMA_VERSION`, pinned; adding a
record kind or a field bumps it)::

    trace-start {v, event, scenario, backend, nodes, slots, seed, sample}
    fault       {v, event, slot, kind, time, nodes, detail}
    block-trace {v, event, block, origin, confirmed,
                 spans:  [{phase, node, slot, start, end, detail?}…],
                 faults: [{slot, kind, time, detail}…]}
    trace-end   {v, event, blocks, spans, digest}

``trace-end.digest`` is :func:`span_stream_digest` over every earlier
record — a self-certifying checksum :func:`parse_trace_stream`
re-verifies, and the witness the determinism tests pin per backend.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.sim.rng import derive_seed, derive_unit
from repro.telemetry.events import _UNSAFE_NAME, TelemetryError

#: The pinned trace-stream schema version (v1 is the per-slot stream).
SPAN_SCHEMA_VERSION = 2

#: Environment override enabling span recording without a CLI flag
#: (a sample rate in (0, 1]; unset/empty/0 disables tracing).
TRACE_SAMPLE_ENV_VAR = "REPRO_TRACE_SAMPLE"

#: Default block sample rate when tracing is enabled without a rate.
DEFAULT_TRACE_SAMPLE = 0.25

#: Record kinds, in emission order.
TRACE_START = "trace-start"
TRACE_FAULT = "fault"
BLOCK_TRACE = "block-trace"
TRACE_END = "trace-end"
TRACE_RECORD_KINDS = (TRACE_START, TRACE_FAULT, BLOCK_TRACE, TRACE_END)

#: Canonical lifecycle phases per backend, in causal order.  Phases
#: not listed here (``view-change``) are annotations: they attach to a
#: trace without claiming a position on the critical path.
PHASE_ORDER: Dict[str, Tuple[str, ...]] = {
    "2ldag": ("created", "gossiped", "received", "referenced",
              "validated", "confirmed"),
    "pbft": ("created", "pre-prepare", "prepare", "commit", "confirmed"),
    "iota": ("created", "received", "approved", "confirmed"),
}

#: Cumulative approval weight at which the IOTA collector calls a
#: transaction confirmed (the tangle analogue of a commit quorum).
IOTA_CONFIRM_WEIGHT = 3

_NUMBER = (int, float)

#: Required fields per record kind: name -> allowed python type(s).
_TRACE_FIELDS: Dict[str, Dict[str, tuple]] = {
    TRACE_START: {
        "scenario": (str,),
        "backend": (str,),
        "nodes": (int,),
        "slots": (int,),
        "seed": (int,),
        "sample": _NUMBER,
    },
    TRACE_FAULT: {
        "slot": (int,),
        "kind": (str,),
        "time": _NUMBER,
        "nodes": (list,),
        "detail": (str,),
    },
    BLOCK_TRACE: {
        "block": (str,),
        "origin": (int,),
        "confirmed": (bool,),
        "spans": (list,),
        "faults": (list,),
    },
    TRACE_END: {
        "blocks": (int,),
        "spans": (int,),
        "digest": (str,),
    },
}

_SPAN_KEYS: Dict[str, tuple] = {
    "phase": (str,),
    "node": (int,),
    "slot": (int,),
    "start": _NUMBER,
    "end": _NUMBER,
}

_FAULT_NOTE_KEYS: Dict[str, tuple] = {
    "slot": (int,),
    "kind": (str,),
    "time": _NUMBER,
    "detail": (str,),
}


def trace_sample_from_env() -> Optional[float]:
    """The ``$REPRO_TRACE_SAMPLE`` rate, or ``None`` when unset/zero."""
    raw = os.environ.get(TRACE_SAMPLE_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        rate = float(raw)
    except ValueError:
        raise TelemetryError(
            f"${TRACE_SAMPLE_ENV_VAR} must be a sample rate in (0, 1], "
            f"got {raw!r}"
        )
    if rate <= 0:
        return None
    return min(rate, 1.0)


def block_sampled(master_seed: int, block_key: str, sample_rate: float) -> bool:
    """Deterministic membership of one block in the traced sample.

    A pure function of the scenario's master seed and the block key,
    seeded via the named ``tracing`` stream — so the sampled set never
    perturbs existing streams and replays identically everywhere.
    """
    if sample_rate >= 1.0:
        return True
    if sample_rate <= 0.0:
        return False
    return derive_unit(derive_seed(master_seed, "tracing"), block_key) < sample_rate


def trace_stream_filename(scenario: str, backend: str, seed: int) -> str:
    """The deterministic trace-stream file name for one run."""
    safe = _UNSAFE_NAME.sub("-", scenario) or "scenario"
    return f"trace-{safe}-{backend}-seed{seed}.jsonl"


def is_trace_stream(path: Union[str, Path]) -> bool:
    """Whether a stream file carries the v2 trace schema (by name)."""
    name = Path(path).name
    return name.startswith("trace-") and name.endswith(".jsonl")


def _canonical_line(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def span_stream_digest(records: Iterable[Dict[str, Any]]) -> str:
    """Hex SHA-256 over the canonical lines of every non-terminal record.

    The witness ``trace-end.digest`` carries; determinism tests pin it
    per backend and CI diffs it across tracing-on/off runs.
    """
    lines = [
        _canonical_line(record)
        for record in records
        if record.get("event") != TRACE_END
    ]
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


# -- validation ----------------------------------------------------------------

def _check_fields(
    record: Dict[str, Any],
    spec: Dict[str, tuple],
    what: str,
    where: str,
    extra_ok: Iterable[str] = (),
) -> None:
    for name, types in spec.items():
        if name not in record:
            raise TelemetryError(f"{where}{what} lacks field {name!r}")
        value = record[name]
        bad_bool = isinstance(value, bool) and bool not in types
        if not isinstance(value, types) or bad_bool:
            raise TelemetryError(
                f"{where}{what} field {name!r} has type "
                f"{type(value).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    unknown = set(record) - set(spec) - set(extra_ok)
    if unknown:
        raise TelemetryError(
            f"{where}{what} carries unknown field(s): "
            f"{', '.join(sorted(unknown))}"
        )


def _check_detail(detail: Any, what: str, where: str) -> None:
    if not isinstance(detail, dict):
        raise TelemetryError(f"{where}{what} detail must be an object")
    for key, value in detail.items():
        if isinstance(value, list):
            if all(isinstance(item, str) for item in value):
                continue
            raise TelemetryError(
                f"{where}{what} detail[{key!r}] list items must be strings"
            )
        if not isinstance(value, (str, int, float, bool)):
            raise TelemetryError(
                f"{where}{what} detail[{key!r}] has unsupported type "
                f"{type(value).__name__}"
            )


def validate_trace_record(record: Any, line: int = 0) -> None:
    """Raise :class:`TelemetryError` unless ``record`` fits schema v2."""
    where = f"line {line}: " if line else ""
    if not isinstance(record, dict):
        raise TelemetryError(f"{where}record must be a JSON object")
    version = record.get("v")
    if version != SPAN_SCHEMA_VERSION:
        raise TelemetryError(
            f"{where}trace schema version {version!r} is not the pinned "
            f"{SPAN_SCHEMA_VERSION}"
        )
    kind = record.get("event")
    if kind not in _TRACE_FIELDS:
        raise TelemetryError(
            f"{where}unknown trace record kind {kind!r}; known: "
            f"{', '.join(TRACE_RECORD_KINDS)}"
        )
    _check_fields(
        record, _TRACE_FIELDS[kind], f"{kind} record", where,
        extra_ok=("v", "event"),
    )
    if kind == TRACE_FAULT:
        for node in record["nodes"]:
            if not isinstance(node, int) or isinstance(node, bool):
                raise TelemetryError(
                    f"{where}fault record nodes must be integers"
                )
    if kind == BLOCK_TRACE:
        for index, span in enumerate(record["spans"]):
            what = f"span[{index}]"
            if not isinstance(span, dict):
                raise TelemetryError(f"{where}{what} must be an object")
            _check_fields(span, _SPAN_KEYS, what, where, extra_ok=("detail",))
            if "detail" in span:
                _check_detail(span["detail"], what, where)
            if span["end"] < span["start"]:
                raise TelemetryError(
                    f"{where}{what} ends before it starts "
                    f"({span['end']!r} < {span['start']!r})"
                )
        for index, note in enumerate(record["faults"]):
            what = f"fault-note[{index}]"
            if not isinstance(note, dict):
                raise TelemetryError(f"{where}{what} must be an object")
            _check_fields(note, _FAULT_NOTE_KEYS, what, where)


def parse_trace_stream(
    text: str, source: str = "<stream>"
) -> List[Dict[str, Any]]:
    """Parse + validate one trace stream; raises on the first defect.

    Beyond per-record schema checks this verifies the stream's own
    terminal checksum: ``trace-end`` must carry the block/span counts
    and the :func:`span_stream_digest` of everything before it.
    """
    records: List[Dict[str, Any]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            raise TelemetryError(
                f"{source}: line {line_number}: not valid JSON ({error})"
            )
        try:
            validate_trace_record(record, line=line_number)
        except TelemetryError as error:
            raise TelemetryError(f"{source}: {error}")
        records.append(record)
    if records and records[-1].get("event") == TRACE_END:
        end = records[-1]
        body = records[:-1]
        blocks = sum(1 for r in body if r.get("event") == BLOCK_TRACE)
        spans = sum(
            len(r.get("spans", ())) for r in body
            if r.get("event") == BLOCK_TRACE
        )
        digest = span_stream_digest(body)
        if (end["blocks"], end["spans"]) != (blocks, spans):
            raise TelemetryError(
                f"{source}: trace-end counts ({end['blocks']} blocks, "
                f"{end['spans']} spans) disagree with the stream "
                f"({blocks} blocks, {spans} spans)"
            )
        if end["digest"] != digest:
            raise TelemetryError(
                f"{source}: trace-end digest {end['digest']} disagrees "
                f"with the recomputed stream digest {digest}"
            )
    return records


def validate_trace_stream(text: str, source: str = "<stream>") -> List[str]:
    """Every schema violation in ``text`` as messages (empty = clean)."""
    errors: List[str] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            errors.append(
                f"{source}: line {line_number}: not valid JSON ({error})"
            )
            continue
        try:
            validate_trace_record(record, line=line_number)
        except TelemetryError as error:
            errors.append(f"{source}: {error}")
    if not errors:
        try:
            parse_trace_stream(text, source=source)
        except TelemetryError as error:
            errors.append(str(error))
    return errors


# -- collection ----------------------------------------------------------------

class _BlockTrace:
    """One sampled block's accumulating lifecycle record."""

    __slots__ = ("key", "origin", "events", "confirmed", "faults")

    def __init__(self, key: str, origin: int) -> None:
        self.key = key
        self.origin = origin
        #: (time, phase, node, slot, start, detail) tuples in emission
        #: order; ``start`` is an explicit span start or ``None`` (the
        #: drain infers it from the causal predecessor).
        self.events: List[
            Tuple[float, str, int, int, Optional[float], Dict[str, Any]]
        ] = []
        self.confirmed = False
        self.faults: List[Dict[str, Any]] = []


class SpanCollector:
    """Fold a deployment's tracer emissions into per-block span trees.

    Subclasses implement :meth:`_on_trace` for their backend's
    lifecycle categories.  Everything here is read-side: the collector
    never touches simulation state, never draws from existing random
    streams, and defers all aggregation to :meth:`block_traces` (one
    pure drain after the run).
    """

    backend = ""
    categories: Tuple[str, ...] = ()

    def __init__(self, master_seed: int, sample_rate: float) -> None:
        self.master_seed = int(master_seed)
        self.sample_rate = float(sample_rate)
        self._traces: Dict[str, _BlockTrace] = {}
        self._sampled: Dict[str, bool] = {}

    # -- wiring ------------------------------------------------------------
    def attach(self, tracer) -> None:
        """Subscribe to the deployment tracer's lifecycle categories."""
        for prefix in self.categories:
            tracer.subscribe(prefix, self._on_trace)

    def _on_trace(self, record) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- bookkeeping -------------------------------------------------------
    def sampled(self, key: str) -> bool:
        """Memoized deterministic sample membership for ``key``."""
        hit = self._sampled.get(key)
        if hit is None:
            hit = block_sampled(self.master_seed, key, self.sample_rate)
            self._sampled[key] = hit
        return hit

    def _begin(
        self, key: str, origin: int, time: float, **detail: Any
    ) -> Optional[_BlockTrace]:
        """Open the trace for a newly created block (if sampled)."""
        if not self.sampled(key):
            return None
        trace = self._traces.get(key)
        if trace is None:
            trace = _BlockTrace(key, int(origin))
            self._traces[key] = trace
            trace.events.append(
                (float(time), "created", int(origin), int(time), None, detail)
            )
        return trace

    def _record(
        self,
        key: str,
        phase: str,
        node: int,
        time: float,
        start: Optional[float] = None,
        **detail: Any,
    ) -> None:
        """Append one lifecycle event to an already-open trace."""
        trace = self._traces.get(key)
        if trace is None:
            return
        trace.events.append(
            (float(time), phase, int(node), int(time), start, detail)
        )

    def _confirm(self, key: str, node: int, time: float, **detail: Any) -> None:
        trace = self._traces.get(key)
        if trace is None or trace.confirmed:
            return
        trace.confirmed = True
        self._record(key, "confirmed", node, time, **detail)

    # -- fault annotation (the FaultEngine observer's view) ----------------
    def fault_applied(self, event, slot: int, time: float) -> None:
        """Annotate every open (begun, unconfirmed) trace with a fault."""
        note = {
            "slot": int(slot),
            "kind": event.kind,
            "time": float(time),
            "detail": event.describe(),
        }
        for trace in self._traces.values():
            if not trace.confirmed:
                trace.faults.append(dict(note))

    # -- drain -------------------------------------------------------------
    def block_traces(self) -> List[Dict[str, Any]]:
        """Every sampled block's finished span tree, as schema-v2 data.

        Span starts are inferred causally: a span begins where its
        latest earlier-phase predecessor ended (annotation phases fall
        back to the latest earlier event of any phase).
        """
        order = {
            phase: rank
            for rank, phase in enumerate(PHASE_ORDER.get(self.backend, ()))
        }
        out: List[Dict[str, Any]] = []
        for trace in self._traces.values():
            events = sorted(trace.events, key=lambda item: item[0])
            spans: List[Dict[str, Any]] = []
            for index, (time, phase, node, slot, start, detail) in enumerate(
                events
            ):
                if start is None:
                    rank = order.get(phase, len(order))
                    predecessors = [
                        other_time
                        for other_time, other_phase, *_ in events[:index]
                        if (order.get(other_phase, len(order)) < rank
                            and other_time <= time)
                    ]
                    start = max(predecessors) if predecessors else time
                span = {
                    "phase": phase,
                    "node": node,
                    "slot": slot,
                    "start": min(float(start), float(time)),
                    "end": float(time),
                }
                if detail:
                    span["detail"] = {
                        key: value for key, value in sorted(detail.items())
                    }
                spans.append(span)
            out.append({
                "v": SPAN_SCHEMA_VERSION,
                "event": BLOCK_TRACE,
                "block": trace.key,
                "origin": trace.origin,
                "confirmed": trace.confirmed,
                "spans": spans,
                "faults": list(trace.faults),
            })
        out.sort(key=lambda record: record["block"])
        return out


class DagSpanCollector(SpanCollector):
    """2LDAG lifecycle: generate → gossip digests → PoP validation.

    Confirmation is the first *successful* proof-of-presence
    validation of the block (the device-layer analogue of finality in
    this backend's experiments).
    """

    backend = "2ldag"
    categories = ("block.", "pop.")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: raw digest bytes -> block key, for *sampled* blocks only.
        #: Registered with the tracer as the ``block.digest_received``
        #: interest filter, so the per-neighbour receipt flood (the
        #: sim's most frequent event) is suppressed at the emission
        #: site for the unsampled majority.
        self._digest_to_key: Dict[bytes, str] = {}

    def attach(self, tracer) -> None:
        super().attach(tracer)
        tracer.set_interest("block.digest_received", self._digest_to_key)

    def _on_trace(self, record) -> None:
        # Branch order follows emission frequency: digest receipts
        # outnumber every other lifecycle event by an order of
        # magnitude, so they take the first comparison.
        category, detail = record.category, record.detail
        if category == "block.digest_received":
            key = self._digest_to_key.get(detail["digest"].value)
            if key is not None:
                self._record(
                    key, "received", record.node, record.time,
                    sender=detail["sender"],
                )
        elif category == "block.created":
            key = detail["block"]
            digest = detail["digest"]
            if self.sampled(key):
                self._digest_to_key[digest.value] = key
                self._begin(
                    key, record.node, record.time,
                    digest=digest.value.hex(),
                )
            for parent in detail.get("refs", ()):
                # Only sampled parents are in the map, so membership
                # here already implies an open trace.
                parent_key = self._digest_to_key.get(parent.value)
                if parent_key is not None:
                    self._record(
                        parent_key, "referenced", record.node, record.time,
                        by=key,
                    )
        elif category == "block.gossiped":
            if detail["block"] in self._traces:
                self._record(
                    detail["block"], "gossiped", record.node, record.time,
                    neighbors=detail["neighbors"],
                )
        elif category == "pop.completed":
            key = detail["block"]
            self._record(
                key, "validated", record.node, record.time,
                start=detail["started"], success=detail["success"],
            )
            if detail["success"]:
                self._confirm(key, record.node, record.time)


class PbftSpanCollector(SpanCollector):
    """PBFT lifecycle: request → pre-prepare → prepare → commit → reply.

    A request is confirmed when its ``quorum``-th replica executes it
    (the client would by then hold ``f+1`` matching replies).  View
    changes annotate every in-flight request as ``view-change`` spans.
    """

    backend = "pbft"
    categories = ("pbft.",)

    def __init__(self, *args, quorum: int = 1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.quorum = int(quorum)
        self._executions: Dict[str, int] = {}

    def _annotate_open(self, phase: str, record) -> None:
        for trace in self._traces.values():
            if not trace.confirmed:
                self._record(
                    trace.key, phase, record.node, record.time,
                    start=record.time, view=record.detail["view"],
                )

    def _on_trace(self, record) -> None:
        category, detail = record.category, record.detail
        if category == "pbft.request":
            if self.sampled(detail["key"]):
                self._begin(detail["key"], record.node, record.time)
        elif category == "pbft.preprepare":
            if detail["key"] in self._traces:
                self._record(
                    detail["key"], "pre-prepare", record.node, record.time,
                    view=detail["view"], seq=detail["seq"],
                )
        elif category == "pbft.prepared":
            if detail["key"] in self._traces:
                self._record(
                    detail["key"], "prepare", record.node, record.time,
                    view=detail["view"], seq=detail["seq"],
                )
        elif category == "pbft.executed":
            key = detail["key"]
            if key not in self._traces:
                return
            self._record(
                key, "commit", record.node, record.time,
                view=detail["view"], seq=detail["seq"],
            )
            count = self._executions.get(key, 0) + 1
            self._executions[key] = count
            if count >= self.quorum:
                self._confirm(key, record.node, record.time, seq=detail["seq"])
        elif category == "pbft.viewchange":
            self._annotate_open("view-change", record)
        elif category == "pbft.newview":
            self._annotate_open("view-change", record)


class IotaSpanCollector(SpanCollector):
    """IOTA lifecycle: attach (tip selection) → gossip → approval weight.

    The collector mirrors the attach-event parent graph and confirms a
    transaction when its cumulative approval weight (number of direct
    and indirect approvers) reaches ``confirm_weight`` — the read-side
    analogue of the tangle's confirmation rule.
    """

    backend = "iota"
    categories = ("iota.",)

    def __init__(
        self, *args, confirm_weight: int = IOTA_CONFIRM_WEIGHT, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        self.confirm_weight = int(confirm_weight)
        #: raw digest bytes -> key / parent digests / cumulative weight.
        #: The emission site hands over the Transaction itself; its
        #: memoised digest keeps the per-receive cost to a dict lookup.
        self._digest_to_key: Dict[bytes, str] = {}
        self._parents: Dict[bytes, Tuple[bytes, ...]] = {}
        self._weights: Dict[bytes, int] = {}

    def _on_trace(self, record) -> None:
        category, detail = record.category, record.detail
        if category == "iota.attach":
            tx = detail["tx"]
            digest = tx.digest().value
            key = tx.payload_seed.decode("utf-8", "replace")
            parents = tuple(tx.parents)
            self._digest_to_key[digest] = key
            self._parents[digest] = parents
            if self.sampled(key):
                self._begin(
                    key, record.node, record.time, digest=digest.hex()
                )
            for parent in parents:
                parent_key = self._digest_to_key.get(parent)
                if parent_key is not None and parent_key in self._traces:
                    self._record(
                        parent_key, "approved", record.node, record.time,
                        by=key,
                    )
            # Incremental cumulative weight: the new transaction adds
            # one unit to every (transitive) ancestor it approves.
            seen = set()
            frontier = list(parents)
            while frontier:
                ancestor = frontier.pop()
                if ancestor in seen or ancestor not in self._parents:
                    continue
                seen.add(ancestor)
                weight = self._weights.get(ancestor, 0) + 1
                self._weights[ancestor] = weight
                frontier.extend(self._parents[ancestor])
                if weight == self.confirm_weight:
                    ancestor_key = self._digest_to_key.get(ancestor)
                    if ancestor_key is not None:
                        self._confirm(
                            ancestor_key, record.node, record.time,
                            weight=weight,
                        )
        elif category == "iota.received":
            key = self._digest_to_key.get(detail["tx"].digest().value)
            if key is not None and key in self._traces:
                self._record(key, "received", record.node, record.time)


# -- recording -----------------------------------------------------------------

class SpanRecorder:
    """Write one run's trace stream under a telemetry directory.

    The runner-facing twin of
    :class:`~repro.telemetry.events.TelemetryRecorder`: the
    :class:`~repro.scenario.runner.ScenarioRunner` calls
    ``run_started`` / ``fault_applied`` / ``run_finished`` and the
    recorder validates + appends JSONL records.  ``run_started``
    truncates any previous stream of the same run name so re-runs are
    byte-deterministic.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        sample: float = DEFAULT_TRACE_SAMPLE,
    ) -> None:
        self.directory = Path(directory)
        self.sample = float(sample)
        self.path: Optional[Path] = None
        self.records_written = 0
        self.blocks_traced = 0
        self._body: List[Dict[str, Any]] = []

    def _write(self, record: Dict[str, Any]) -> None:
        validate_trace_record(record)
        if self.path is None:
            raise TelemetryError(
                "trace stream not opened; run_started() must come first"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(_canonical_line(record) + "\n")
        if record["event"] != TRACE_END:
            self._body.append(record)
        self.records_written += 1

    # -- the runner-facing hooks -------------------------------------------
    def run_started(self, spec) -> None:
        """Open the stream and emit the ``trace-start`` record."""
        self.path = self.directory / trace_stream_filename(
            spec.name, spec.backend, spec.seed
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        try:
            self.path.unlink()
        except OSError:
            pass
        self._body = []
        self.records_written = 0
        self._write({
            "v": SPAN_SCHEMA_VERSION,
            "event": TRACE_START,
            "scenario": spec.name,
            "backend": spec.backend,
            "nodes": spec.node_count,
            "slots": spec.workload.slots,
            "seed": spec.seed,
            "sample": self.sample,
        })

    def fault_applied(self, event, slot: int, time: float) -> None:
        """Emit one stream-level ``fault`` record (structured nodes)."""
        self._write({
            "v": SPAN_SCHEMA_VERSION,
            "event": TRACE_FAULT,
            "slot": int(slot),
            "kind": event.kind,
            "time": float(time),
            "nodes": sorted(int(n) for n in event.nodes),
            "detail": event.describe(),
        })

    def run_finished(self, block_traces: List[Dict[str, Any]]) -> None:
        """Emit every ``block-trace`` and the terminal ``trace-end``.

        Batched into one append (hundreds of traces land at once), with
        every record still schema-validated before it is written.
        """
        if self.path is None:
            raise TelemetryError(
                "trace stream not opened; run_started() must come first"
            )
        spans = 0
        lines: List[str] = []
        for record in block_traces:
            validate_trace_record(record)
            lines.append(_canonical_line(record))
            self._body.append(record)
            spans += len(record["spans"])
        self.blocks_traced = len(block_traces)
        terminal = {
            "v": SPAN_SCHEMA_VERSION,
            "event": TRACE_END,
            "blocks": len(block_traces),
            "spans": spans,
            "digest": span_stream_digest(self._body),
        }
        validate_trace_record(terminal)
        lines.append(_canonical_line(terminal))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        self.records_written += len(lines)
