"""Turn telemetry event streams into summaries and metric expositions.

The recorder (:mod:`repro.telemetry.events`) writes raw per-slot JSONL;
this module is the read side: :func:`summarize_streams` condenses each
stream into per-run headline numbers (rendered as a text table by
``python -m repro telemetry summarize``), and :func:`registry_from_records`
projects the same streams onto the process-local
:class:`~repro.telemetry.metrics.MetricsRegistry` so
``python -m repro telemetry export`` can serve a Prometheus text
exposition of everything the runs recorded.

The metric catalogue (all labelled ``scenario``/``backend``/``seed``):

====================================  =========  ==========================
name                                  type       meaning
====================================  =========  ==========================
``repro_run_slots``                   gauge      slots the workload drove
``repro_run_sim_seconds``             gauge      final simulated clock
``repro_run_blocks_total``            counter    blocks appended
``repro_run_validations_total``       counter    validations performed
``repro_run_success_rate``            gauge      final validation success
``repro_run_events_total``            counter    kernel events processed
``repro_run_faults_total``            counter    + ``kind`` label
``repro_series_value``                gauge      + ``series`` label (final
                                                 storage/traffic sample)
``repro_backend_counter``             gauge      + ``name`` label (final
                                                 backend-specific counter)
``repro_slot_records_total``          counter    slot records in the stream
====================================  =========  ==========================
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Tuple, Union

from repro.metrics.reporting import format_table
from repro.telemetry import events as ev
from repro.telemetry.metrics import MetricsRegistry


def read_streams(
    paths: Iterable[Union[str, Path]],
) -> List[Tuple[Path, List[Dict[str, Any]]]]:
    """Parse+validate every stream under ``paths`` (dirs are globbed).

    Block-trace streams (the v2 schema of :mod:`repro.telemetry.spans`)
    share the directory and the ``.jsonl`` suffix but not the schema;
    they are skipped here and read by :mod:`repro.telemetry.tracepath`.
    """
    from repro.telemetry.spans import is_trace_stream

    out: List[Tuple[Path, List[Dict[str, Any]]]] = []
    for path in ev.discover_streams(paths):
        if is_trace_stream(path):
            continue
        records = ev.parse_stream(path.read_text(), source=str(path))
        out.append((path, records))
    return out


def summarize_records(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Headline numbers of one run's stream.

    Works on partial streams too (a crashed run has no ``run-end``);
    missing totals render as ``None``.
    """
    summary: Dict[str, Any] = {
        "scenario": None,
        "backend": None,
        "seed": None,
        "slots": None,
        "slot_records": 0,
        "faults": 0,
        "fault_kinds": {},
        "blocks": None,
        "validations": None,
        "success_rate": None,
        "sim_seconds": None,
        "events": None,
        "trace_sha256": None,
        "final_series": {},
        "final_counters": {},
    }
    fault_kinds: Dict[str, int] = {}
    for record in records:
        kind = record["event"]
        if kind == ev.RUN_START:
            summary["scenario"] = record["scenario"]
            summary["backend"] = record["backend"]
            summary["seed"] = record["seed"]
            summary["slots"] = record["slots"]
        elif kind == ev.SLOT:
            summary["slot_records"] += 1
            summary["final_series"] = dict(record["series"])
            summary["final_counters"] = dict(record["counters"])
        elif kind == ev.FAULT:
            summary["faults"] += 1
            fault_kinds[record["kind"]] = fault_kinds.get(record["kind"], 0) + 1
        elif kind == ev.RUN_END:
            summary["sim_seconds"] = record["sim_now"]
            summary["blocks"] = record["blocks"]
            summary["validations"] = record["validations"]
            summary["success_rate"] = record["success_rate"]
            summary["events"] = record["events"]
            summary["trace_sha256"] = record["trace_sha256"]
    summary["fault_kinds"] = dict(sorted(fault_kinds.items()))
    return summary


def summarize_streams(
    paths: Iterable[Union[str, Path]],
) -> List[Dict[str, Any]]:
    """One :func:`summarize_records` dict per stream, plus its path."""
    summaries = []
    for path, records in read_streams(paths):
        summary = summarize_records(records)
        summary["path"] = str(path)
        summaries.append(summary)
    return summaries


def _cell(value: Any, fmt: str = "{}") -> str:
    return "-" if value is None else fmt.format(value)


def format_summary_table(summaries: Sequence[Dict[str, Any]]) -> str:
    """The ``telemetry summarize`` text table."""
    header = (
        "scenario", "backend", "seed", "slots", "records", "blocks",
        "validations", "success", "faults", "storage MB", "traffic Mbit",
    )
    rows = []
    for s in summaries:
        series = s["final_series"]
        rows.append((
            _cell(s["scenario"]),
            _cell(s["backend"]),
            _cell(s["seed"]),
            _cell(s["slots"]),
            str(s["slot_records"]),
            _cell(s["blocks"]),
            _cell(s["validations"]),
            _cell(s["success_rate"], "{:.3f}"),
            str(s["faults"]),
            _cell(series.get("storage_mb"), "{:.4g}"),
            _cell(series.get("traffic_mbit"), "{:.4g}"),
        ))
    return format_table(header, rows)


def registry_from_records(
    stream_records: Sequence[Tuple[Path, Sequence[Dict[str, Any]]]],
) -> MetricsRegistry:
    """Project streams onto the metric catalogue (see module docs)."""
    registry = MetricsRegistry()
    run_labels = ("scenario", "backend", "seed")
    slots = registry.gauge(
        "repro_run_slots", "Slots the workload drove", run_labels
    )
    sim_seconds = registry.gauge(
        "repro_run_sim_seconds", "Final simulated clock", run_labels
    )
    blocks = registry.counter(
        "repro_run_blocks_total", "Blocks appended over the run", run_labels
    )
    validations = registry.counter(
        "repro_run_validations_total", "Validations performed", run_labels
    )
    success = registry.gauge(
        "repro_run_success_rate", "Final validation success rate", run_labels
    )
    kernel_events = registry.counter(
        "repro_run_events_total", "Kernel events processed", run_labels
    )
    faults = registry.counter(
        "repro_run_faults_total",
        "Fault timeline events applied",
        run_labels + ("kind",),
    )
    series_gauge = registry.gauge(
        "repro_series_value",
        "Final sampled series value (storage/traffic)",
        run_labels + ("series",),
    )
    backend_counter = registry.gauge(
        "repro_backend_counter",
        "Final backend-specific counter value",
        run_labels + ("name",),
    )
    slot_records = registry.counter(
        "repro_slot_records_total", "Slot records in the stream", run_labels
    )

    for path, records in stream_records:
        summary = summarize_records(records)
        labels = {
            "scenario": str(summary["scenario"] or path.stem),
            "backend": str(summary["backend"] or "unknown"),
            "seed": str(summary["seed"] if summary["seed"] is not None else "?"),
        }
        if summary["slots"] is not None:
            slots.set(summary["slots"], **labels)
        if summary["sim_seconds"] is not None:
            sim_seconds.set(summary["sim_seconds"], **labels)
        if summary["blocks"] is not None:
            blocks.inc(summary["blocks"], **labels)
        if summary["validations"] is not None:
            validations.inc(summary["validations"], **labels)
        if summary["success_rate"] is not None:
            success.set(summary["success_rate"], **labels)
        if summary["events"] is not None:
            kernel_events.inc(summary["events"], **labels)
        if summary["slot_records"]:
            slot_records.inc(summary["slot_records"], **labels)
        for kind, count in summary["fault_kinds"].items():
            faults.inc(count, kind=kind, **labels)
        for name, value in summary["final_series"].items():
            series_gauge.set(value, series=name, **labels)
        for name, value in summary["final_counters"].items():
            backend_counter.set(value, name=name, **labels)
    return registry


def export_prometheus(paths: Iterable[Union[str, Path]]) -> str:
    """The Prometheus text exposition over every stream under ``paths``."""
    return registry_from_records(read_streams(paths)).render_prometheus()
