"""Critical-path analysis over block-lifecycle trace streams.

The read side of :mod:`repro.telemetry.spans`: load recorded trace
streams, attribute each confirmed block's confirmation latency to
lifecycle phases along its critical path, aggregate per-phase latency
distributions (p50/p99), and render per-block waterfalls — as ASCII
for the ``telemetry trace`` CLI and as inline SVG for the campaign
dashboard.

Everything here is pure data → data: no simulation imports, no clocks,
no randomness — the same stream always renders the same report.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.metrics.reporting import format_table
from repro.telemetry.events import TelemetryError, discover_streams
from repro.telemetry.spans import (
    BLOCK_TRACE,
    PHASE_ORDER,
    TRACE_START,
    is_trace_stream,
    parse_trace_stream,
)


def read_trace_streams(
    paths: Iterable[Union[str, Path]]
) -> List[Tuple[Path, List[Dict[str, Any]]]]:
    """Every parsed trace stream under ``paths`` (dirs globbed)."""
    out: List[Tuple[Path, List[Dict[str, Any]]]] = []
    for path in discover_streams(paths):
        if not is_trace_stream(path):
            continue
        records = parse_trace_stream(
            path.read_text(encoding="utf-8"), source=str(path)
        )
        out.append((path, records))
    return out


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return float(ordered[index])


def _phase_rank(backend: str, phase: str) -> int:
    order = PHASE_ORDER.get(backend, ())
    try:
        return order.index(phase)
    except ValueError:
        return len(order)


def critical_path(
    trace: Dict[str, Any], backend: str
) -> List[Dict[str, Any]]:
    """The completing span per canonical phase, in causal order.

    For each lifecycle phase the block reached, the span whose ``end``
    is latest among spans that finish no later than confirmation — the
    chain whose segments sum to the block's confirmation latency.
    """
    order = PHASE_ORDER.get(backend, ())
    spans = trace.get("spans", [])
    confirm_end: Optional[float] = None
    for span in spans:
        if span["phase"] == "confirmed":
            confirm_end = span["end"]
            break
    chosen: List[Dict[str, Any]] = []
    for phase in order:
        candidates = [
            span for span in spans
            if span["phase"] == phase
            and (confirm_end is None or span["end"] <= confirm_end)
        ]
        if candidates:
            chosen.append(max(candidates, key=lambda span: span["end"]))
    return chosen


def trace_report(
    streams: Iterable[Tuple[Path, List[Dict[str, Any]]]]
) -> Dict[str, Any]:
    """Aggregate latency attribution across parsed trace streams.

    Returns pure data (JSON-ready): one entry per stream plus a
    per-backend rollup of confirmation latency and its per-phase
    attribution (each phase's contribution is the gap its completing
    span closes on the block's critical path).
    """
    runs: List[Dict[str, Any]] = []
    by_backend: Dict[str, Dict[str, List[float]]] = {}
    confirm_by_backend: Dict[str, List[float]] = {}
    for path, records in streams:
        start = next(
            (r for r in records if r.get("event") == TRACE_START), None
        )
        if start is None:
            raise TelemetryError(f"{path}: stream carries no trace-start")
        backend = start["backend"]
        traces = [r for r in records if r.get("event") == BLOCK_TRACE]
        confirmed = [t for t in traces if t["confirmed"]]
        phase_gaps = by_backend.setdefault(backend, {})
        latencies = confirm_by_backend.setdefault(backend, [])
        run_phase_gaps: Dict[str, List[float]] = {}
        for trace in confirmed:
            path_spans = critical_path(trace, backend)
            if not path_spans:
                continue
            created = path_spans[0]["end"]
            previous = created
            for span in path_spans[1:]:
                gap = max(0.0, span["end"] - previous)
                phase_gaps.setdefault(span["phase"], []).append(gap)
                run_phase_gaps.setdefault(span["phase"], []).append(gap)
                previous = max(previous, span["end"])
            if path_spans[-1]["phase"] == "confirmed":
                latencies.append(max(0.0, path_spans[-1]["end"] - created))
        runs.append({
            "path": str(path),
            "scenario": start["scenario"],
            "backend": backend,
            "seed": start["seed"],
            "sample": start["sample"],
            "blocks": len(traces),
            "confirmed": len(confirmed),
            "faults": sum(len(t["faults"]) for t in traces),
            "phases": {
                phase: {
                    "count": len(gaps),
                    "mean": sum(gaps) / len(gaps),
                    "p50": percentile(gaps, 0.50),
                    "p99": percentile(gaps, 0.99),
                }
                for phase, gaps in sorted(run_phase_gaps.items())
            },
        })
    attribution: Dict[str, Any] = {}
    for backend, phase_gaps in sorted(by_backend.items()):
        latencies = confirm_by_backend.get(backend, [])
        total = sum(sum(gaps) for gaps in phase_gaps.values())
        attribution[backend] = {
            "confirmed": len(latencies),
            "confirmation_p50": percentile(latencies, 0.50),
            "confirmation_p99": percentile(latencies, 0.99),
            "phases": {
                phase: {
                    "count": len(gaps),
                    "mean": sum(gaps) / len(gaps),
                    "p50": percentile(gaps, 0.50),
                    "p99": percentile(gaps, 0.99),
                    "share": (sum(gaps) / total) if total > 0 else 0.0,
                }
                for phase, gaps in sorted(phase_gaps.items())
            },
        }
    return {"runs": runs, "attribution": attribution}


def format_trace_report(report: Dict[str, Any]) -> str:
    """The aggregate report as aligned text tables."""
    lines: List[str] = []
    for run in report["runs"]:
        lines.append(
            f"{run['scenario']} [{run['backend']}] seed {run['seed']} "
            f"sample {run['sample']:g}: {run['blocks']} traced blocks, "
            f"{run['confirmed']} confirmed, {run['faults']} fault notes"
        )
    for backend, stats in report["attribution"].items():
        lines.append("")
        lines.append(
            f"backend {backend}: {stats['confirmed']} confirmed blocks, "
            f"confirmation latency p50 {stats['confirmation_p50']:.3f} "
            f"p99 {stats['confirmation_p99']:.3f} (slot time)"
        )
        if stats["phases"]:
            rows = [
                [
                    phase,
                    str(info["count"]),
                    f"{info['mean']:.3f}",
                    f"{info['p50']:.3f}",
                    f"{info['p99']:.3f}",
                    f"{100.0 * info['share']:.1f}%",
                ]
                for phase, info in stats["phases"].items()
            ]
            lines.append(format_table(
                ["phase", "count", "mean", "p50", "p99", "share"], rows
            ))
    return "\n".join(lines)


# -- waterfalls ----------------------------------------------------------------

def _waterfall_rows(
    trace: Dict[str, Any], backend: str, limit: int = 24
) -> Tuple[float, float, List[Dict[str, Any]]]:
    """Time bounds + the spans a waterfall shows (critical path first).

    The critical path is always included; remaining spans fill up to
    ``limit`` rows in time order so dense gossip fans don't swamp the
    rendering.
    """
    spans = trace.get("spans", [])
    if not spans:
        return 0.0, 0.0, []
    chosen = critical_path(trace, backend)
    seen = {id(span) for span in chosen}
    for span in sorted(spans, key=lambda s: (s["start"], s["end"])):
        if len(chosen) >= limit:
            break
        if id(span) not in seen:
            seen.add(id(span))
            chosen.append(span)
    chosen.sort(key=lambda s: (
        s["start"], _phase_rank(backend, s["phase"]), s["end"], s["node"]
    ))
    t0 = min(span["start"] for span in chosen)
    t1 = max(span["end"] for span in chosen)
    return t0, t1, chosen


def block_waterfall(
    trace: Dict[str, Any], backend: str, width: int = 60
) -> str:
    """One block's span tree as an ASCII waterfall."""
    t0, t1, rows = _waterfall_rows(trace, backend)
    if not rows:
        return f"block {trace.get('block', '?')}: no spans"
    span_time = max(t1 - t0, 1e-9)
    lines = [
        f"block {trace['block']} (origin {trace['origin']}, "
        f"{'confirmed' if trace['confirmed'] else 'unconfirmed'}) "
        f"t=[{t0:.3f}, {t1:.3f}]"
    ]
    for span in rows:
        left = int((span["start"] - t0) / span_time * (width - 1))
        right = int((span["end"] - t0) / span_time * (width - 1))
        bar = [" "] * width
        for i in range(left, right + 1):
            bar[i] = "="
        bar[left] = "|"
        bar[min(right, width - 1)] = "|"
        label = f"{span['phase']:<12} n{span['node']:<4}"
        lines.append(
            f"  {label} [{''.join(bar)}] "
            f"{span['start']:.3f}→{span['end']:.3f}"
        )
    for note in trace.get("faults", []):
        lines.append(
            f"  fault @{note['time']:.3f} slot {note['slot']}: {note['detail']}"
        )
    return "\n".join(lines)


#: Fill colours per canonical phase bucket for the SVG waterfall.
_SVG_COLORS = {
    "created": "#4c78a8",
    "gossiped": "#72b7b2",
    "received": "#72b7b2",
    "referenced": "#eeca3b",
    "validated": "#f58518",
    "pre-prepare": "#72b7b2",
    "prepare": "#eeca3b",
    "commit": "#f58518",
    "approved": "#f58518",
    "confirmed": "#54a24b",
    "view-change": "#e45756",
}


def waterfall_svg(
    trace: Dict[str, Any],
    backend: str,
    width: int = 640,
    row_height: int = 18,
) -> str:
    """One block's span tree as a standalone inline-SVG waterfall.

    All interpolated strings are escaped, so hostile scenario or block
    names cannot break out of the dashboard markup embedding this.
    """
    t0, t1, rows = _waterfall_rows(trace, backend)
    title = (
        f"block {trace.get('block', '?')} "
        f"({'confirmed' if trace.get('confirmed') else 'unconfirmed'})"
    )
    header = 22
    height = header + row_height * max(1, len(rows)) + 6
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img" aria-label="{html.escape(title, quote=True)}">',
        f'<text x="4" y="14" font-size="12" font-family="monospace">'
        f'{html.escape(title, quote=True)}</text>',
    ]
    if not rows:
        parts.append(
            f'<text x="4" y="{header + 12}" font-size="11" '
            f'font-family="monospace">no spans</text>'
        )
    label_width = 170
    span_time = max(t1 - t0, 1e-9)
    usable = width - label_width - 8
    for index, span in enumerate(rows):
        y = header + index * row_height
        x0 = label_width + (span["start"] - t0) / span_time * usable
        x1 = label_width + (span["end"] - t0) / span_time * usable
        color = _SVG_COLORS.get(span["phase"], "#9d9d9d")
        label = f"{span['phase']} n{span['node']}"
        tooltip = f"{label}: {span['start']:.3f}→{span['end']:.3f}"
        parts.append(
            f'<text x="4" y="{y + 12}" font-size="11" '
            f'font-family="monospace">{html.escape(label, quote=True)}</text>'
        )
        parts.append(
            f'<rect x="{x0:.1f}" y="{y + 3}" '
            f'width="{max(x1 - x0, 2.0):.1f}" height="{row_height - 6}" '
            f'fill="{color}"><title>{html.escape(tooltip, quote=True)}'
            f"</title></rect>"
        )
    parts.append("</svg>")
    return "".join(parts)


def first_waterfall_trace(
    records: List[Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    """The stream's most interesting block for a default waterfall:
    the first confirmed trace (most spans), else the first trace."""
    traces = [r for r in records if r.get("event") == BLOCK_TRACE]
    if not traces:
        return None
    confirmed = [t for t in traces if t["confirmed"]]
    pool = confirmed or traces
    return max(pool, key=lambda t: (len(t["spans"]), t["block"]))


def waterfall_figure(
    path: Path, records: List[Dict[str, Any]]
) -> Optional[Tuple[str, str]]:
    """A (caption, svg) pair for one trace stream's showcase block.

    Picks the stream's most informative trace via
    :func:`first_waterfall_trace`; returns ``None`` for streams with
    no block traces (nothing sampled) or no ``trace-start`` header.
    """
    start = next((r for r in records if r.get("event") == TRACE_START), None)
    trace = first_waterfall_trace(records)
    if start is None or trace is None:
        return None
    caption = (
        f"{start['scenario']} [{start['backend']}] seed {start['seed']} "
        f"— block {trace['block']}"
    )
    return caption, waterfall_svg(trace, start["backend"])
