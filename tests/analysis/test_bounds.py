"""Unit tests for the Proposition 1-6 formulas and their agreement
with the simulation."""

import pytest

from repro.analysis.bounds import (
    prop1_total_blocks,
    prop2_header_cache_bound_bits,
    prop3_node_storage_bound_bits,
    prop4_message_lower_bound,
    prop5_micro_loop_block_bound,
    prop6_message_upper_bound,
)
from repro.core.config import ProtocolConfig
from repro.core.protocol import SlotSimulation, TwoLayerDagNetwork


class TestFormulas:
    def test_prop1_floor_semantics(self):
        rates = {1: 3.0, 2: 2.0}
        # t=10, C=4: node1 -> floor(30/4)=7, node2 -> floor(20/4)=5.
        assert prop1_total_blocks(rates, 4.0, 10.0) == 12

    def test_prop1_zero_body_rejected(self):
        with pytest.raises(ValueError):
            prop1_total_blocks({1: 1.0}, 0.0, 10.0)

    def test_prop2_excludes_own_rate(self):
        config = ProtocolConfig()
        rates = {1: 5.0, 2: 3.0}
        bound = prop2_header_cache_bound_bits(rates, 1.0, 10.0, node=1,
                                              config=config, node_count=2)
        per_block = config.constant_header_bits + config.hash_bits * 2
        assert bound == pytest.approx(10.0 * per_block * 3.0)

    def test_prop3_includes_own_data(self):
        config = ProtocolConfig()
        rates = {1: 5.0, 2: 3.0}
        bound = prop3_node_storage_bound_bits(rates, 1.0, 10.0, node=1,
                                              config=config, node_count=2)
        per_block = config.constant_header_bits + config.hash_bits * 2
        assert bound == pytest.approx(10.0 * 5.0 + 10.0 * per_block * 8.0)

    def test_prop4(self):
        assert prop4_message_lower_bound(16) == 34
        with pytest.raises(ValueError):
            prop4_message_lower_bound(-1)

    def test_prop5(self):
        assert prop5_micro_loop_block_bound([1.0, 1.0], 0.2) == 10
        with pytest.raises(ValueError):
            prop5_micro_loop_block_bound([1.0], 0.0)

    def test_prop6_requires_sorted(self):
        with pytest.raises(ValueError):
            prop6_message_upper_bound([1.0, 2.0], gamma=1, node_count=2)

    def test_prop6_value(self):
        rates = [2.0, 2.0, 1.0, 1.0]
        bound = prop6_message_upper_bound(rates, gamma=2, node_count=4)
        assert bound == pytest.approx((4 + 2) * (4.0 / 1.0 + 3))


class TestAgainstSimulation:
    @pytest.fixture
    def ran(self, small_config, grid9):
        deployment = TwoLayerDagNetwork(config=small_config, topology=grid9, seed=3)
        workload = SlotSimulation(deployment, validate=True, validation_min_age_slots=9)
        workload.run(15)
        workload.run_until_quiet()
        return deployment, workload

    def test_prop1_matches_simulation(self, ran):
        deployment, workload = ran
        rates = {n: 1.0 for n in deployment.node_ids}
        assert workload.total_blocks() == prop1_total_blocks(rates, 1.0, 15)

    def test_prop2_bounds_cache_sizes(self, ran):
        deployment, workload = ran
        config = deployment.config
        rates = {n: 1.0 for n in deployment.node_ids}
        for node_id in deployment.node_ids:
            cache_bits = deployment.node(node_id).cache.size_bits(config)
            # Cache also holds the node's own headers; the bound covers
            # other nodes' headers, so add the own-header term.
            own_bits = sum(
                b.header.size_bits(config) for b in deployment.node(node_id).store
            )
            bound = prop2_header_cache_bound_bits(
                rates, 1.0, 15, node_id, config, len(rates)
            )
            assert cache_bits <= bound + own_bits

    def test_prop3_bounds_total_storage(self, ran):
        deployment, workload = ran
        config = deployment.config
        # Express rates in bits/slot so t*r_i is body bits, as in §V.
        rates = {n: float(config.body_bits) for n in deployment.node_ids}
        for node_id in deployment.node_ids:
            bound = prop3_node_storage_bound_bits(
                rates, float(config.body_bits), 15, node_id, config, len(rates)
            )
            # The paper's bound tracks body bits + header caches; our
            # storage also counts per-block header bits, covered by the
            # (f_c + f_H|V|) per-block term, so the bound must hold.
            assert deployment.node(node_id).storage_bits() <= bound

    def test_prop4_holds_for_cold_validators(self, ran):
        deployment, workload = ran
        lower = prop4_message_lower_bound(deployment.config.gamma)
        cold = [
            r.outcome for r in workload.validations if r.outcome.tps_steps == 0
        ]
        for outcome in cold:
            if outcome.success:
                assert outcome.message_total >= lower
