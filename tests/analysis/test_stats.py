"""Unit tests for multi-seed statistics."""

import pytest

from repro.analysis.stats import (
    aggregate_series,
    compare_final_points,
    repeat_experiment,
    t_critical_95,
)


class TestAggregate:
    def test_mean_of_identical_runs(self):
        stats = aggregate_series([[1, 2, 3], [1, 2, 3]])
        assert stats.mean == [1, 2, 3]
        assert stats.std == [0, 0, 0]
        assert stats.ci_half_width == [0, 0, 0]

    def test_mean_and_std(self):
        stats = aggregate_series([[0, 10], [2, 20], [4, 30]])
        assert stats.mean == [2, 20]
        assert stats.std[0] == pytest.approx(2.0)
        assert stats.std[1] == pytest.approx(10.0)

    def test_ci_uses_t_distribution(self):
        stats = aggregate_series([[0], [2], [4]])
        expected = t_critical_95(2) * 2.0 / (3 ** 0.5)
        assert stats.ci_half_width[0] == pytest.approx(expected)

    def test_bounds(self):
        stats = aggregate_series([[0], [4]])
        assert stats.lower()[0] == pytest.approx(stats.mean[0] - stats.ci_half_width[0])
        assert stats.upper()[0] == pytest.approx(stats.mean[0] + stats.ci_half_width[0])

    def test_single_run_zero_interval(self):
        stats = aggregate_series([[5, 6]])
        assert stats.ci_half_width == [0.0, 0.0]
        assert stats.runs == 1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            aggregate_series([[1, 2], [1]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_series([])

    def test_t_critical_fallback(self):
        assert t_critical_95(100) == 1.96
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestRepeat:
    def test_runs_callable_per_seed(self):
        calls = []

        def run(seed):
            calls.append(seed)
            return [seed, seed * 2]

        stats = repeat_experiment(run, [1, 2, 3])
        assert calls == [1, 2, 3]
        assert stats.mean == [2, 4]


class TestWelch:
    def test_separated_groups_large_t(self):
        a = [[10.0], [10.1], [9.9]]
        b = [[1.0], [1.2], [0.8]]
        result = compare_final_points(a, b)
        assert result["t"] > 10
        assert result["mean_a"] == pytest.approx(10.0)
        assert result["mean_b"] == pytest.approx(1.0)

    def test_identical_groups_zero_t(self):
        a = [[5.0], [5.0]]
        b = [[5.0], [5.0]]
        assert compare_final_points(a, b)["t"] == 0.0

    def test_needs_two_runs_each(self):
        with pytest.raises(ValueError):
            compare_final_points([[1.0]], [[2.0], [3.0]])
