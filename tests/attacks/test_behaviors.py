"""Unit tests for adversarial behaviours against a live deployment."""

import pytest

from repro.attacks.behaviors import (
    CorruptResponder,
    EquivocatingResponder,
    SelfishNode,
    SilentResponder,
)
from repro.core.config import ProtocolConfig
from repro.core.pop.messages import KIND_REQ_CHILD, KIND_RPY_CHILD, ReqChild
from repro.core.protocol import SlotSimulation, TwoLayerDagNetwork


@pytest.fixture
def attack_config():
    return ProtocolConfig(body_bits=8_000, gamma=2, reply_timeout=0.2)


def deployment_with(behaviors, config, topology, seed=6):
    deployment = TwoLayerDagNetwork(
        config=config, topology=topology, seed=seed, behaviors=behaviors
    )
    workload = SlotSimulation(deployment, validate=False)
    workload.run(8)
    return deployment, workload


def ask_for_child(deployment, asker, responder, digest, origin):
    replies = []
    iface = deployment.node(asker).interface
    iface.on(KIND_RPY_CHILD, replies.append)
    iface.send(
        responder, KIND_REQ_CHILD, ReqChild(digest=digest, verifying_origin=origin), 256
    )
    deployment.sim.run()
    return replies


class TestSilent:
    def test_silent_node_sends_no_reply(self, attack_config, grid9):
        deployment, workload = deployment_with({4: SilentResponder()}, attack_config, grid9)
        target = deployment.node(3).store.by_index(0)
        replies = ask_for_child(
            deployment, 0, 4, target.digest(), 3
        )
        assert replies == []

    def test_silent_node_still_generates_blocks(self, attack_config, grid9):
        deployment, workload = deployment_with({4: SilentResponder()}, attack_config, grid9)
        assert len(deployment.node(4).store) == 8


class TestCorrupt:
    def test_corrupt_reply_fails_signature(self, attack_config, grid9):
        deployment, workload = deployment_with({4: CorruptResponder()}, attack_config, grid9)
        # Pick a digest node 4 *definitely* references: one from its own
        # second block's Δ (generation-order races make guessing which
        # neighbour block it embedded unreliable).
        own_second = deployment.node(4).store.by_index(1).header
        origin, digest = next(iter(own_second.digests.items()))
        replies = ask_for_child(deployment, 0, 4, digest, origin)
        assert len(replies) == 1
        header = replies[0].payload.header
        assert header is not None
        public = deployment.registry.public_key(4)
        assert not header.verify_signature(public)


class TestEquivocating:
    def test_equivocating_reply_fails_digest_check(self, attack_config, grid9):
        deployment, workload = deployment_with(
            {4: EquivocatingResponder()}, attack_config, grid9
        )
        neighbor_block = deployment.node(3).store.by_index(0)
        digest = neighbor_block.digest()
        replies = ask_for_child(deployment, 0, 4, digest, 3)
        assert len(replies) == 1
        header = replies[0].payload.header
        # The returned header is authentic but wrong: Algorithm 3's
        # GetDigest comparison exposes it.
        assert header.digest_from(3) != digest


class TestSelfish:
    def test_selfish_node_silent_until_resumed(self, attack_config, grid9):
        selfish = SelfishNode()
        deployment, workload = deployment_with({4: selfish}, attack_config, grid9)
        neighbor_block = deployment.node(3).store.by_index(0)
        assert ask_for_child(deployment, 0, 4, neighbor_block.digest(), 3) == []
        selfish.resume_cooperation()
        replies = ask_for_child(deployment, 1, 4, neighbor_block.digest(), 3)
        assert len(replies) == 1
