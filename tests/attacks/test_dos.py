"""DoS-flooding attack and the rate-limiter defence (§IV-D-5)."""


from repro.attacks.behaviors import DosFlooder
from repro.attacks.defenses import DigestRateLimiter, RateLimitedBehavior
from repro.core.config import ProtocolConfig
from repro.core.protocol import TwoLayerDagNetwork


class TestRateLimiter:
    def test_slow_sender_admitted(self):
        limiter = DigestRateLimiter(min_interval=1.0, burst=3)
        for t in range(10):
            assert limiter.admit(7, float(t * 2))
        assert 7 not in limiter.banned

    def test_flooder_banned(self):
        limiter = DigestRateLimiter(min_interval=1.0, burst=3)
        results = [limiter.admit(7, t * 0.01) for t in range(10)]
        assert not all(results)
        assert 7 in limiter.banned

    def test_banned_sender_stays_dropped(self):
        limiter = DigestRateLimiter(min_interval=1.0, burst=2)
        for t in range(6):
            limiter.admit(7, t * 0.01)
        assert not limiter.admit(7, 100.0)

    def test_unban_restores_service(self):
        limiter = DigestRateLimiter(min_interval=1.0, burst=2)
        for t in range(6):
            limiter.admit(7, t * 0.01)
        limiter.unban(7)
        assert limiter.admit(7, 100.0)

    def test_independent_senders(self):
        limiter = DigestRateLimiter(min_interval=1.0, burst=2)
        for t in range(6):
            limiter.admit(7, t * 0.01)
        assert limiter.admit(8, 0.05)


class TestFloodScenario:
    def test_flood_only_reaches_neighbors(self, grid9):
        """§IV-D-5: digests are not flooded network-wide, so a DoS
        attacker only burdens its one-hop neighbourhood."""
        config = ProtocolConfig(body_bits=8_000, gamma=2)
        flooder = DosFlooder()
        deployment = TwoLayerDagNetwork(
            config=config, topology=grid9, seed=1, behaviors={4: flooder}
        )
        flooder.flood(deployment.node(4), count=50)
        deployment.sim.run()
        ledger = deployment.traffic
        neighbors = set(grid9.neighbors(4))
        for node in grid9.node_ids:
            if node == 4:
                continue
            if node in neighbors:
                assert ledger.rx_bits(node) > 0
            else:
                assert ledger.rx_bits(node) == 0

    def test_rate_limited_victim_bans_flooder(self, grid9):
        config = ProtocolConfig(body_bits=8_000, gamma=2)
        flooder = DosFlooder()
        limiter = DigestRateLimiter(min_interval=0.5, burst=3)
        deployment = TwoLayerDagNetwork(
            config=config,
            topology=grid9,
            seed=1,
            behaviors={4: flooder, 1: RateLimitedBehavior(limiter)},
        )
        flooder.flood(deployment.node(4), count=20)
        deployment.sim.run()
        assert 4 in limiter.banned

    def test_honest_rate_passes_limiter(self, grid9):
        from repro.core.protocol import SlotSimulation

        config = ProtocolConfig(body_bits=8_000, gamma=2)
        limiter = DigestRateLimiter(min_interval=0.5, burst=3)
        deployment = TwoLayerDagNetwork(
            config=config, topology=grid9, seed=1,
            behaviors={1: RateLimitedBehavior(limiter)},
        )
        workload = SlotSimulation(deployment, generation_period=1)
        workload.run(6)
        assert limiter.banned == set()
        # Node 1 still tracks its neighbours' digests normally.
        assert len(deployment.node(1).neighbor_digests) == len(grid9.neighbors(1))
