"""Sybil, eclipse and majority-coalition attack tests (§IV-D-2/3)."""

import pytest

from repro.attacks.eclipse import eclipse_victim
from repro.attacks.majority import make_coalition
from repro.attacks.sybil import sybil_identities
from repro.core.config import ProtocolConfig
from repro.core.protocol import SlotSimulation, TwoLayerDagNetwork
from repro.sim.rng import RandomStreams


class TestSybil:
    def test_forged_identity_not_registered(self, small_deployment):
        identities = sybil_identities(attacker=4, count=3)
        for identity in identities:
            assert not small_deployment.registry.is_registered(identity.claimed_id)

    def test_forged_header_rejected_by_validator_checks(self, small_deployment):
        workload = SlotSimulation(small_deployment, validate=False)
        workload.run(3)
        (identity,) = sybil_identities(attacker=4, count=1)
        template = small_deployment.node(4).store.by_index(0).header
        forged = identity.forge_header(template)
        # The forgery self-verifies under the Sybil's own key...
        assert forged.verify_signature(identity.keypair.public)
        # ...but the registry has no such identity, which is exactly
        # what the validator's _header_authentic check requires.
        assert not small_deployment.registry.is_registered(forged.origin)

    def test_duplicate_identities_cannot_inflate_consensus_set(self, small_deployment):
        """R_i is a set of unique nodes: replaying one node's blocks
        adds nothing (the Sybil defence the paper relies on)."""
        workload = SlotSimulation(small_deployment, validate=False)
        workload.run(10)
        target = workload.blocks_by_slot[0][0]
        node = small_deployment.node(8)
        process = small_deployment.sim.process(
            node.validator().run(target.origin, target)
        )
        small_deployment.sim.run()
        outcome = process.value
        assert outcome.success
        origins = [h.origin for h in outcome.path]
        assert len(outcome.consensus_set) == len(set(origins))


class TestEclipse:
    def test_eclipsed_validator_cannot_verify(self, small_config, grid9):
        deployment = TwoLayerDagNetwork(config=small_config, topology=grid9, seed=2)
        workload = SlotSimulation(deployment, validate=False)
        workload.run(10)
        deployment.network.add_drop_rule(eclipse_victim(8))
        target = workload.blocks_by_slot[0][0]
        process = deployment.sim.process(
            deployment.node(8).validator().run(target.origin, target)
        )
        deployment.sim.run()
        assert not process.value.success
        assert process.value.error == "verifier-timeout"

    def test_digest_gossip_survives_partial_eclipse(self, small_config, grid9):
        """The default eclipse filters PoP kinds only: the victim still
        learns neighbours' digests (it just cannot verify)."""
        deployment = TwoLayerDagNetwork(config=small_config, topology=grid9, seed=2)
        deployment.network.add_drop_rule(eclipse_victim(8))
        workload = SlotSimulation(deployment, validate=False)
        workload.run(3)
        victim = deployment.node(8)
        assert len(victim.neighbor_digests) == len(grid9.neighbors(8))

    def test_other_validators_unaffected(self, small_config, grid9):
        deployment = TwoLayerDagNetwork(config=small_config, topology=grid9, seed=2)
        workload = SlotSimulation(deployment, validate=False)
        workload.run(10)
        deployment.network.add_drop_rule(eclipse_victim(8))
        target = workload.blocks_by_slot[0][0]
        validator_id = 0 if target.origin != 0 else 1
        process = deployment.sim.process(
            deployment.node(validator_id).validator().run(target.origin, target)
        )
        deployment.sim.run()
        assert process.value.success


class TestCoalition:
    def test_coalition_size_and_protection(self, grid9):
        streams = RandomStreams(5)
        behaviors = make_coalition(grid9, 3, streams, protect=[0, 8])
        assert len(behaviors) == 3
        assert 0 not in behaviors and 8 not in behaviors

    def test_oversized_coalition_rejected(self, grid9):
        streams = RandomStreams(5)
        with pytest.raises(ValueError):
            make_coalition(grid9, 9, streams, protect=[0])

    def test_consensus_despite_gamma_malicious(self):
        """The majority-attack claim at small scale: γ silent nodes
        cannot stop a validator that tolerates γ."""
        from repro.net.topology import grid_topology

        config = ProtocolConfig(body_bits=8_000, gamma=3, reply_timeout=0.1)
        grid = grid_topology(4, 4)
        streams = RandomStreams(7)
        behaviors = make_coalition(grid, 3, streams, protect=[0, 15])
        deployment = TwoLayerDagNetwork(
            config=config, topology=grid, seed=7, behaviors=behaviors
        )
        workload = SlotSimulation(deployment, validate=False)
        workload.run(16)
        target = next(
            b for b in workload.blocks_by_slot[0] if b.origin == 0
        )
        process = deployment.sim.process(
            deployment.node(15).validator().run(target.origin, target)
        )
        deployment.sim.run()
        assert process.value.success
