"""Cross-validation of the closed-form cost models against the live
protocol implementations — the justification for using the models in
the Fig. 7/8 sweeps."""

import pytest

from repro.baselines.iota.costmodel import IotaCostModel
from repro.baselines.iota.node import IotaNetwork
from repro.baselines.pbft.cluster import PbftCluster
from repro.baselines.pbft.costmodel import PbftCostModel
from repro.net.topology import grid_topology

PAYLOAD_BITS = 4_000


class TestPbftModel:
    def test_storage_matches_live_cluster(self):
        topology = grid_topology(2, 2)
        cluster = PbftCluster(topology=topology, payload_bits=PAYLOAD_BITS, seed=1)
        slots = 3
        cluster.run_slots(slots)
        model = PbftCostModel(topology, PAYLOAD_BITS)
        assert cluster.mean_storage_bits() == pytest.approx(
            model.storage_bits_per_node(slots)
        )

    def test_traffic_matches_live_cluster_normal_case(self):
        topology = grid_topology(2, 2)
        cluster = PbftCluster(topology=topology, payload_bits=PAYLOAD_BITS, seed=1)
        slots = 3
        cluster.run_slots(slots)
        model = PbftCostModel(topology, PAYLOAD_BITS)
        live_mean_tx = sum(
            cluster.traffic.tx_bits(n) for n in cluster.node_ids
        ) / len(cluster.node_ids)
        predicted = model.mean_tx_bits_per_node(slots)
        # The model ignores primary self-delivery subtleties; agreement
        # within a few percent validates it for order-of-magnitude plots.
        assert live_mean_tx == pytest.approx(predicted, rel=0.05)

    def test_series_monotone(self):
        model = PbftCostModel(grid_topology(3, 3), PAYLOAD_BITS)
        series = model.storage_series_mb([10, 20, 30])
        assert series[0] < series[1] < series[2]


class TestIotaModel:
    def test_storage_matches_live_network(self):
        topology = grid_topology(3, 3)
        network = IotaNetwork(topology=topology, payload_bits=PAYLOAD_BITS, seed=1)
        slots = 3
        network.run_slots(slots)
        model = IotaCostModel(topology, PAYLOAD_BITS)
        assert network.mean_storage_bits() == pytest.approx(
            model.storage_bits_per_node(slots)
        )

    def test_traffic_matches_live_flooding(self):
        topology = grid_topology(3, 3)
        network = IotaNetwork(topology=topology, payload_bits=PAYLOAD_BITS, seed=1)
        slots = 3
        network.run_slots(slots)
        model = IotaCostModel(topology, PAYLOAD_BITS)
        live_mean_tx = sum(
            network.traffic.tx_bits(n) for n in network.node_ids
        ) / len(network.node_ids)
        predicted = model.mean_tx_bits_per_node(slots)
        assert live_mean_tx == pytest.approx(predicted, rel=0.05)

    def test_transmissions_per_tx_formula(self):
        topology = grid_topology(3, 3)  # 12 edges, 9 nodes
        model = IotaCostModel(topology, PAYLOAD_BITS)
        assert model.transmissions_per_tx() == 2 * 12 - 8


class TestRelativeShape:
    def test_baselines_dwarf_per_node_payloads(self):
        """Both baselines store n× what a single node generates."""
        topology = grid_topology(3, 3)
        pbft = PbftCostModel(topology, PAYLOAD_BITS)
        iota = IotaCostModel(topology, PAYLOAD_BITS)
        own_data = 10 * PAYLOAD_BITS  # 10 slots of one node's blocks
        assert pbft.storage_bits_per_node(10) > 8 * own_data
        assert iota.storage_bits_per_node(10) > 8 * own_data
