"""Unit tests for the IOTA baseline: tangle, tip selection, gossip."""

import random

import pytest

from repro.baselines.iota.node import IotaNetwork
from repro.baselines.iota.tangle import Tangle, Transaction
from repro.baselines.iota.tip_selection import select_tips_mcmc, select_tips_uniform
from repro.net.topology import grid_topology


def tx(issuer, index, parents=(), payload_bits=100):
    return Transaction(
        issuer=issuer,
        index=index,
        parents=tuple(parents),
        payload_seed=f"{issuer}:{index}".encode(),
        payload_bits=payload_bits,
        timestamp=float(index),
    )


class TestTangle:
    def test_add_and_lookup(self):
        tangle = Tangle()
        genesis = tx(0, 0)
        assert tangle.add(genesis)
        assert genesis.digest().value in tangle
        assert len(tangle) == 1

    def test_duplicate_rejected(self):
        tangle = Tangle()
        genesis = tx(0, 0)
        tangle.add(genesis)
        assert not tangle.add(genesis)

    def test_tips_track_unapproved(self):
        tangle = Tangle()
        genesis = tx(0, 0)
        tangle.add(genesis)
        assert tangle.tips() == [genesis.digest().value]
        child = tx(1, 0, [genesis.digest().value])
        tangle.add(child)
        assert tangle.tips() == [child.digest().value]

    def test_out_of_order_insertion(self):
        """An approver arriving before its parent still links correctly."""
        tangle = Tangle()
        genesis = tx(0, 0)
        child = tx(1, 0, [genesis.digest().value])
        tangle.add(child)
        tangle.add(genesis)
        assert tangle.approvers(genesis.digest().value) == [child.digest().value]
        # Genesis is approved, so it must not be a tip.
        assert genesis.digest().value not in tangle.tips()

    def test_cumulative_weight(self):
        tangle = Tangle()
        genesis = tx(0, 0)
        a = tx(1, 0, [genesis.digest().value])
        b = tx(2, 0, [genesis.digest().value])
        c = tx(3, 0, [a.digest().value, b.digest().value])
        for transaction in (genesis, a, b, c):
            tangle.add(transaction)
        assert tangle.cumulative_weight(genesis.digest().value) == 4
        assert tangle.cumulative_weight(c.digest().value) == 1

    def test_size_bits(self):
        tangle = Tangle()
        tangle.add(tx(0, 0, payload_bits=1000))
        assert tangle.size_bits() == 1000 + 2 * 256 + 32 + 32 + 32 + 256


class TestTipSelection:
    def _tangle_with_tips(self):
        tangle = Tangle()
        genesis = tx(0, 0)
        tangle.add(genesis)
        for issuer in range(1, 5):
            tangle.add(tx(issuer, 0, [genesis.digest().value]))
        return tangle

    def test_uniform_selects_existing_tips(self):
        tangle = self._tangle_with_tips()
        rng = random.Random(0)
        tips = select_tips_uniform(tangle, rng)
        assert len(tips) == 2
        assert set(tips) <= set(tangle.tips())

    def test_uniform_single_tip_duplicates(self):
        tangle = Tangle()
        tangle.add(tx(0, 0))
        tips = select_tips_uniform(tangle, random.Random(0))
        assert len(tips) == 2
        assert tips[0] == tips[1]

    def test_uniform_empty_tangle(self):
        assert select_tips_uniform(Tangle(), random.Random(0)) == []

    def test_mcmc_reaches_tips(self):
        tangle = self._tangle_with_tips()
        tips = select_tips_mcmc(tangle, random.Random(0))
        assert len(tips) == 2
        for tip in tips:
            assert tangle.approvers(tip) == []

    def test_mcmc_prefers_heavy_branch(self):
        """With a large alpha the walk must enter the heavy subtangle."""
        tangle = Tangle()
        genesis = tx(0, 0)
        tangle.add(genesis)
        heavy_root = tx(1, 0, [genesis.digest().value])
        light_root = tx(2, 0, [genesis.digest().value])
        tangle.add(heavy_root)
        tangle.add(light_root)
        previous = heavy_root
        for i in range(10):  # long heavy chain
            nxt = tx(3, i, [previous.digest().value])
            tangle.add(nxt)
            previous = nxt
        rng = random.Random(0)
        hits = select_tips_mcmc(tangle, rng, count=20, alpha=5.0)
        heavy_tip = previous.digest().value
        assert hits.count(heavy_tip) >= 15


class TestGossip:
    def test_all_nodes_converge(self):
        network = IotaNetwork(topology=grid_topology(3, 3), payload_bits=800, seed=1)
        network.run_slots(4)
        assert network.tangles_consistent()
        reference = list(network.nodes.values())[0].tangle
        assert len(reference) == 4 * 9

    def test_every_node_stores_full_tangle(self):
        network = IotaNetwork(topology=grid_topology(2, 3), payload_bits=800, seed=1)
        network.run_slots(3)
        sizes = [n.storage_bits() for n in network.nodes.values()]
        assert len(set(sizes)) == 1  # identical full replicas

    def test_tangle_parents_resolve_after_settle(self):
        network = IotaNetwork(topology=grid_topology(3, 3), payload_bits=800, seed=2)
        network.run_slots(3)
        for node in network.nodes.values():
            assert node.tangle.is_consistent()

    def test_mcmc_strategy_runs(self):
        network = IotaNetwork(
            topology=grid_topology(2, 2), payload_bits=800, seed=1,
            tip_strategy="mcmc",
        )
        network.run_slots(3)
        assert network.tangles_consistent()

    def test_unknown_strategy_rejected(self):
        from repro.baselines.iota.node import IotaNode
        from repro.net.transport import Network
        from repro.sim.kernel import Simulator

        topology = grid_topology(2, 2)
        network = Network(Simulator(), topology)
        with pytest.raises(ValueError):
            IotaNode(0, network, random.Random(0), tip_strategy="bogus")
