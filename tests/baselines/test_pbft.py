"""Unit tests for the PBFT baseline: chain, replica protocol, cluster."""

import pytest

from repro.baselines.pbft.chain import Blockchain, ChainBlock
from repro.baselines.pbft.cluster import PbftCluster
from repro.net.topology import grid_topology


class TestChain:
    def test_append_links_by_hash(self):
        chain = Blockchain()
        first = ChainBlock(0, 1, b"a", 100, previous=None)
        chain.append(first)
        second = ChainBlock(1, 2, b"b", 100, previous=first.digest())
        chain.append(second)
        assert chain.height == 2
        assert chain.head is second

    def test_sequence_gap_rejected(self):
        chain = Blockchain()
        with pytest.raises(ValueError):
            chain.append(ChainBlock(3, 1, b"a", 100, previous=None))

    def test_wrong_previous_hash_rejected(self):
        chain = Blockchain()
        chain.append(ChainBlock(0, 1, b"a", 100, previous=None))
        bad = ChainBlock(1, 2, b"b", 100, previous=None)
        with pytest.raises(ValueError):
            chain.append(bad)

    def test_size_bits_counts_payload_and_metadata(self):
        chain = Blockchain()
        chain.append(ChainBlock(0, 1, b"a", 1000, previous=None))
        assert chain.size_bits() == 1000 + 640


class TestNormalCase:
    def test_all_replicas_commit_all_requests(self):
        cluster = PbftCluster(topology=grid_topology(2, 2), payload_bits=4000, seed=1)
        cluster.run_slots(4)
        heights = [r.chain.height for r in cluster.replicas.values()]
        assert heights == [16, 16, 16, 16]
        assert cluster.chains_consistent()

    def test_chains_identical_across_replicas(self):
        cluster = PbftCluster(topology=grid_topology(2, 3), payload_bits=4000, seed=2)
        cluster.run_slots(3)
        replicas = list(cluster.replicas.values())
        reference = replicas[0].chain
        for replica in replicas[1:]:
            assert replica.chain.height == reference.height
            for sequence in range(reference.height):
                assert (
                    replica.chain.block_at(sequence).digest()
                    == reference.block_at(sequence).digest()
                )

    def test_every_client_block_committed(self):
        cluster = PbftCluster(topology=grid_topology(2, 2), payload_bits=4000, seed=3)
        cluster.run_slots(2)
        chain = list(cluster.replicas.values())[0].chain
        proposers = [chain.block_at(s).proposer for s in range(chain.height)]
        for node in cluster.node_ids:
            assert proposers.count(node) == 2  # one per slot

    def test_storage_grows_with_slots(self):
        cluster = PbftCluster(topology=grid_topology(2, 2), payload_bits=4000, seed=1)
        cluster.run_slots(2)
        first = cluster.mean_storage_bits()
        cluster.run_slots(2)
        assert cluster.mean_storage_bits() > first

    def test_traffic_includes_three_phases(self):
        cluster = PbftCluster(topology=grid_topology(2, 2), payload_bits=4000, seed=1)
        cluster.run_slots(1)
        ledger = cluster.traffic
        assert ledger.message_count("pbft.pre_prepare") > 0
        assert ledger.message_count("pbft.prepare") > 0
        assert ledger.message_count("pbft.commit") > 0


class TestFaults:
    def test_commits_despite_f_crashed_replicas(self):
        """n=7 tolerates f=2 silent replicas (non-primary)."""
        topology = grid_topology(1, 7)
        cluster = PbftCluster(
            topology=topology, payload_bits=4000, seed=1, crashed={5, 6}
        )
        cluster.run_slots(2, settle_time=8.0)
        live_heights = [r.chain.height for r in cluster.live_replicas()]
        # 5 live clients × 2 slots = 10 requests must commit.
        assert all(h == 10 for h in live_heights)
        assert cluster.chains_consistent()

    def test_view_change_on_crashed_primary(self):
        """With the view-0 primary silent, replicas elect a new one."""
        topology = grid_topology(2, 2)
        primary = sorted(topology.node_ids)[0]
        cluster = PbftCluster(
            topology=topology,
            payload_bits=4000,
            seed=1,
            crashed={primary},
            view_change_timeout=2.0,
        )
        cluster.run_slots(1, settle_time=20.0)
        live = cluster.live_replicas()
        assert all(r.view >= 1 for r in live)
        # The three live clients' requests eventually commit.
        assert cluster.min_height() == 3
        assert cluster.chains_consistent()
