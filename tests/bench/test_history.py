"""bench history: discovery, stray warnings, trend rendering."""

import json
import os

import pytest

from repro.bench import discover_history, format_history_table, render_history


def write_doc(path, rev, fast=False, results=None, mtime=None):
    document = {
        "rev": rev,
        "fast": fast,
        "results": results if results is not None else {
            "kernel_callbacks": {"ns_per_op": 1000.0},
            "slot_sim": {"ns_per_op": None,
                         "metrics": {"wall_s": 1.5, "events_per_s": 1e5}},
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document))
    if mtime is not None:
        os.utime(path, (mtime, mtime))
    return path


class TestDiscovery:
    def test_baselines_then_strays_oldest_first(self, tmp_path):
        baselines = tmp_path / "benchmarks" / "baselines"
        write_doc(baselines / "BENCH_old.json", "old", mtime=1000)
        write_doc(baselines / "BENCH_new.json", "new", mtime=3000)
        write_doc(tmp_path / "BENCH_stray.json", "stray", mtime=2000)

        history = discover_history(str(tmp_path))
        assert [d.rev for d in history.documents] == ["old", "stray", "new"]
        assert [d.stray for d in history.documents] == [False, True, False]
        assert len(history.warnings) == 1
        assert "stray bench document" in history.warnings[0]
        assert "benchmarks/baselines" in history.warnings[0]

    def test_unreadable_document_warns_and_continues(self, tmp_path):
        baselines = tmp_path / "benchmarks" / "baselines"
        write_doc(baselines / "BENCH_good.json", "good")
        (baselines / "BENCH_torn.json").write_text("{torn")
        (baselines / "BENCH_list.json").write_text("[]")

        history = discover_history(str(tmp_path))
        assert [d.rev for d in history.documents] == ["good"]
        assert len(history.warnings) == 2
        assert all("unreadable" in w for w in history.warnings)

    def test_extra_paths_must_exist(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no such bench document"):
            discover_history(str(tmp_path), [str(tmp_path / "BENCH_x.json")])

    def test_extra_path_not_double_counted(self, tmp_path):
        baselines = tmp_path / "benchmarks" / "baselines"
        doc = write_doc(baselines / "BENCH_a.json", "a")
        history = discover_history(str(tmp_path), [str(doc)])
        assert len(history.documents) == 1

    def test_fast_documents_are_labelled(self, tmp_path):
        write_doc(tmp_path / "benchmarks" / "baselines" / "BENCH_f.json",
                  "f", fast=True)
        history = discover_history(str(tmp_path))
        assert history.documents[0].label == "f (fast)"


class TestTable:
    def test_empty_history_renders_a_notice(self, tmp_path):
        history = discover_history(str(tmp_path / "nowhere"))
        assert "no BENCH_" in format_history_table(history)

    def test_trend_is_newest_over_oldest_same_scale(self, tmp_path):
        baselines = tmp_path / "benchmarks" / "baselines"
        write_doc(baselines / "BENCH_a.json", "a", mtime=1000, results={
            "kernel_callbacks": {"ns_per_op": 1000.0},
            "slot_sim": {"metrics": {"wall_s": 1.0}},
        })
        write_doc(baselines / "BENCH_b.json", "b", mtime=2000, results={
            "kernel_callbacks": {"ns_per_op": 2000.0},
            "slot_sim": {"metrics": {"wall_s": 1.5}},
        })
        table = format_history_table(discover_history(str(tmp_path)))
        lines = {line.split("|")[0].strip(): line
                 for line in table.splitlines()}
        assert "2.00x" in lines["kernel_callbacks"]
        assert "1.50x" in lines["slot_sim"]
        # macro rows render seconds; micro rows render time-per-op units
        assert "1.500s" in lines["slot_sim"]
        assert "2.0us" in lines["kernel_callbacks"]

    def test_trend_skips_other_scale_documents(self, tmp_path):
        baselines = tmp_path / "benchmarks" / "baselines"
        write_doc(baselines / "BENCH_full.json", "full", mtime=1000, results={
            "kernel_callbacks": {"ns_per_op": 1000.0},
        })
        write_doc(baselines / "BENCH_quick.json", "quick", fast=True,
                  mtime=2000, results={
                      "kernel_callbacks": {"ns_per_op": 10.0},
                  })
        table = format_history_table(discover_history(str(tmp_path)))
        row = [l for l in table.splitlines()
               if l.startswith("kernel_callbacks")][0]
        # the newest document is fast-scale and is the only one at that
        # scale, so no cross-scale ratio is drawn
        assert row.rstrip().endswith("-")

    def test_single_document_has_no_trend(self, tmp_path):
        write_doc(tmp_path / "benchmarks" / "baselines" / "BENCH_a.json", "a")
        table = format_history_table(discover_history(str(tmp_path)))
        row = [l for l in table.splitlines()
               if l.startswith("kernel_callbacks")][0]
        assert row.rstrip().endswith("-")

    def test_missing_op_renders_dash(self, tmp_path):
        baselines = tmp_path / "benchmarks" / "baselines"
        write_doc(baselines / "BENCH_a.json", "a", mtime=1000,
                  results={"only_here": {"ns_per_op": 5.0}})
        write_doc(baselines / "BENCH_b.json", "b", mtime=2000,
                  results={"other": {"ns_per_op": 5.0}})
        table = format_history_table(discover_history(str(tmp_path)))
        assert "only_here" in table and "other" in table
        assert "-" in table


class TestRenderHistory:
    def test_report_lists_documents_and_marks_strays(self, tmp_path):
        write_doc(tmp_path / "benchmarks" / "baselines" / "BENCH_a.json",
                  "a", mtime=1000)
        write_doc(tmp_path / "BENCH_b.json", "b", mtime=2000)
        body, warnings = render_history(str(tmp_path))
        assert "2 document(s), oldest first" in body
        assert "[stray]" in body
        assert len(warnings) == 1

    def test_shipped_baselines_render(self):
        """The committed tree itself provides >= 2 documents."""
        body, warnings = render_history(".")
        assert "document(s), oldest first" in body
        assert "slot_sim" in body
        assert warnings == []
