"""Tests for campaign specs: grid expansion, digests, JSON round-trip."""

import json

import pytest

from repro.campaign.spec import (
    CampaignError,
    CampaignSpec,
    CellSpec,
    apply_override,
    expand_grid,
    replicate_seeds,
)
from repro.scenario import get_scenario


@pytest.fixture
def base():
    return get_scenario("quickstart")


class TestApplyOverride:
    def test_top_level_field(self, base):
        assert apply_override(base, "seed", 42).seed == 42

    def test_nested_field(self, base):
        spec = apply_override(base, "protocol.gamma", 2)
        assert spec.protocol.gamma == 2
        # the original is untouched (specs are frozen)
        assert base.protocol.gamma == 3

    def test_deep_workload_field(self, base):
        assert apply_override(base, "workload.slots", 7).workload.slots == 7

    def test_list_becomes_tuple(self, base):
        spec = apply_override(base, "workload.sample_slots", [10, 20])
        assert spec.workload.sample_slots == (10, 20)

    def test_unknown_field_rejected(self, base):
        with pytest.raises(CampaignError, match="unknown override field"):
            apply_override(base, "protocol.warp", 9)

    def test_unknown_section_rejected(self, base):
        with pytest.raises(CampaignError, match="unknown override field"):
            apply_override(base, "engine.gamma", 9)

    def test_invalid_value_rejected_at_expansion(self, base):
        # gamma+1 > |V| must be caught by scenario validation, rewrapped.
        with pytest.raises(CampaignError, match="invalid scenario"):
            apply_override(base, "protocol.gamma", 1000)


class TestExpandGrid:
    def test_cartesian_product_row_major(self, base):
        cells = expand_grid(base, {"protocol.gamma": [2, 3], "seed": [0, 1]})
        combos = [(c.scenario.protocol.gamma, c.scenario.seed) for c in cells]
        assert combos == [(2, 0), (2, 1), (3, 0), (3, 1)]

    def test_cells_are_renamed(self, base):
        cells = expand_grid(base, {"seed": [5]})
        assert cells[0].scenario.name == "quickstart[seed=5]"

    def test_no_axes_yields_single_cell(self, base):
        cells = expand_grid(base, {})
        assert len(cells) == 1
        assert cells[0].scenario == base

    def test_empty_axis_rejected(self, base):
        with pytest.raises(CampaignError, match="non-empty"):
            expand_grid(base, {"seed": []})

    def test_replicate_seeds(self, base):
        cells = replicate_seeds(base, (3, 4, 5))
        assert [c.scenario.seed for c in cells] == [3, 4, 5]


class TestCellDigest:
    def test_digest_is_stable(self, base):
        cell = CellSpec(scenario=base)
        assert cell.digest() == CellSpec(scenario=base).digest()

    def test_digest_changes_with_spec(self, base):
        a = CellSpec(scenario=base)
        b = CellSpec(scenario=apply_override(base, "seed", 99))
        assert a.digest() != b.digest()

    def test_digest_changes_with_kind_and_params(self, base):
        plain = CellSpec(scenario=base)
        other_params = CellSpec(scenario=base, params={"audits": 4})
        assert plain.digest() != other_params.digest()

    def test_unserializable_params_rejected(self, base):
        with pytest.raises(CampaignError, match="JSON-serializable"):
            CellSpec(scenario=base, params={"fn": lambda: None})


class TestCampaignSpec:
    def test_needs_cells(self):
        with pytest.raises(CampaignError, match="no cells"):
            CampaignSpec(name="empty")

    def test_duplicate_cells_rejected(self, base):
        cell = CellSpec(scenario=base)
        with pytest.raises(CampaignError, match="duplicate"):
            CampaignSpec(name="dup", cells=(cell, CellSpec(scenario=base)))

    def test_digest_tracks_cells(self, base):
        a = CampaignSpec(name="c", cells=replicate_seeds(base, (0, 1)))
        b = CampaignSpec(name="c", cells=replicate_seeds(base, (0, 2)))
        assert a.digest() != b.digest()

    def test_json_round_trip(self, base):
        campaign = CampaignSpec(
            name="round-trip",
            description="grid over gamma",
            cells=expand_grid(base, {"protocol.gamma": [2, 3]}),
        )
        rebuilt = CampaignSpec.from_dict(json.loads(campaign.to_json()))
        assert rebuilt == campaign
        assert rebuilt.digest() == campaign.digest()

    def test_save_load_file(self, base, tmp_path):
        campaign = CampaignSpec(name="file", cells=replicate_seeds(base, (0, 1)))
        path = tmp_path / "c.json"
        campaign.save(path)
        assert CampaignSpec.from_file(path) == campaign


class TestCampaignDocument:
    def test_preset_reference_with_seeds(self):
        campaign = CampaignSpec.from_dict({
            "name": "doc",
            "cells": [{"preset": "quickstart", "seeds": [0, 1, 2]}],
        })
        assert len(campaign.cells) == 3
        assert campaign.cells[2].scenario.seed == 2

    def test_inline_scenario_with_grid(self):
        inline = get_scenario("quickstart").to_dict()
        campaign = CampaignSpec.from_dict({
            "name": "doc",
            "cells": [{"scenario": inline, "grid": {"workload.slots": [5, 10]}}],
        })
        assert [c.scenario.workload.slots for c in campaign.cells] == [5, 10]

    def test_unknown_preset_rejected(self):
        with pytest.raises(CampaignError, match="unknown scenario preset"):
            CampaignSpec.from_dict({
                "name": "doc", "cells": [{"preset": "warp-drive"}],
            })

    def test_preset_and_scenario_mutually_exclusive(self):
        inline = get_scenario("quickstart").to_dict()
        with pytest.raises(CampaignError, match="exactly one"):
            CampaignSpec.from_dict({
                "name": "doc",
                "cells": [{"preset": "quickstart", "scenario": inline}],
            })

    def test_seeds_and_seed_axis_conflict(self):
        with pytest.raises(CampaignError, match="not both"):
            CampaignSpec.from_dict({
                "name": "doc",
                "cells": [{"preset": "quickstart", "seeds": [0],
                           "grid": {"seed": [1]}}],
            })

    def test_unknown_fields_rejected(self):
        with pytest.raises(CampaignError, match="unknown campaign field"):
            CampaignSpec.from_dict({
                "name": "doc", "cells": [{"preset": "quickstart"}], "extra": 1,
            })
        with pytest.raises(CampaignError, match="unknown field"):
            CampaignSpec.from_dict({
                "name": "doc", "cells": [{"preset": "quickstart", "bogus": 1}],
            })

    def test_unsupported_format_rejected(self):
        with pytest.raises(CampaignError, match="unsupported campaign format"):
            CampaignSpec.from_dict({
                "format_version": 99, "name": "doc",
                "cells": [{"preset": "quickstart"}],
            })


class TestPresets:
    def test_every_preset_builds(self):
        from repro.campaign.presets import campaign_names, get_campaign

        for name in campaign_names():
            campaign = get_campaign(name)
            assert campaign.name == name
            assert campaign.cells
            assert campaign.description

    def test_unknown_preset_raises_with_roster(self):
        from repro.campaign.presets import get_campaign

        with pytest.raises(KeyError, match="smoke"):
            get_campaign("warp-drive")

    def test_ledger_grid_spans_backends_and_seeds(self):
        from repro.campaign.presets import get_campaign

        campaign = get_campaign("ledger-grid")
        assert len(campaign.cells) == 12
        backends = [cell.scenario.backend for cell in campaign.cells]
        assert {b: backends.count(b) for b in set(backends)} == {
            "2ldag": 4, "pbft": 4, "iota": 4,
        }
        assert sorted({cell.scenario.seed for cell in campaign.cells}) == [0, 1, 2, 3]
        # Each cell self-describes its backend in the label.
        assert any("backend=pbft" in cell.label for cell in campaign.cells)
