"""Cell-kind registry and scenario payload round-trip tests."""

import pytest

from repro.campaign.cells import (
    cell_kind_names,
    execute_cell,
    register_cell_kind,
    resolve_cell_kind,
    run_scenario_cells,
)
from repro.campaign.spec import CampaignError, CellSpec
from repro.scenario import ScenarioResult, ScenarioRunner, get_scenario


@pytest.fixture(scope="module")
def tiny():
    return get_scenario("quickstart").with_workload(slots=5)


class TestRegistry:
    def test_scenario_kind_is_builtin(self):
        assert "scenario" in cell_kind_names()
        assert resolve_cell_kind("scenario") is not None

    def test_consumer_kinds_resolve_via_home_module(self):
        # Resolution imports the experiments module on demand.
        assert resolve_cell_kind("gamma-sweep-point") is not None
        assert resolve_cell_kind("fig9-series") is not None
        assert resolve_cell_kind("attack-audit") is not None

    def test_unknown_kind_raises_with_roster(self):
        with pytest.raises(CampaignError, match="scenario"):
            resolve_cell_kind("warp-drive")

    def test_duplicate_registration_rejected(self):
        @register_cell_kind("test-dup-kind")
        def first(cell):
            return {}

        with pytest.raises(ValueError, match="already registered"):
            @register_cell_kind("test-dup-kind")
            def second(cell):
                return {}

    def test_registration_records_home_module_for_workers(self):
        from repro.campaign.cells import KIND_HOME_MODULES

        @register_cell_kind("test-home-kind")
        def homed(cell):
            return {}

        # A spawn-started worker resolves this kind by importing the
        # module that registered it.
        assert KIND_HOME_MODULES["test-home-kind"] == __name__


class TestScenarioCell:
    def test_payload_round_trips_to_scenario_result(self, tiny):
        payload = execute_cell(CellSpec(scenario=tiny))
        rebuilt = ScenarioResult.from_dict(payload)
        direct = ScenarioRunner(tiny).run()
        assert rebuilt == direct

    def test_payload_is_pure_json(self, tiny):
        import json

        payload = execute_cell(CellSpec(scenario=tiny))
        assert json.loads(json.dumps(payload)) == payload

    def test_unknown_payload_field_rejected(self, tiny):
        payload = execute_cell(CellSpec(scenario=tiny))
        payload["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            ScenarioResult.from_dict(payload)


class TestRunScenarioCells:
    def test_matches_direct_runner(self, tiny):
        (result,) = run_scenario_cells([tiny])
        assert result == ScenarioRunner(tiny).run()

    def test_preserves_spec_order(self, tiny):
        specs = [
            tiny,
            get_scenario("quickstart").with_workload(slots=6),
        ]
        results = run_scenario_cells(specs)
        assert [r.spec.workload.slots for r in results] == [5, 6]
