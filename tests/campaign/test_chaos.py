"""Chaos harness tests: spec, plan determinism, and convergence.

The headline guarantee pinned here is the ISSUE's chaos gate: a
campaign run under a seeded :class:`ChaosSpec` — injected exceptions,
a killed worker, a hung cell hitting the cell timeout — converges,
after bounded retries, to payloads byte-identical to a clean serial
run.
"""

import json

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.chaos import (
    CHAOS_EXCEPTION,
    CHAOS_HANG,
    CHAOS_KILL,
    ChaosError,
    ChaosSpec,
    chaos_from_env,
    seeded_backoff,
)
from repro.campaign.executor import CampaignExecutor
from repro.campaign.spec import CampaignSpec, replicate_seeds
from repro.scenario import get_scenario


def tiny_spec():
    """Seed-sensitive (PoP validation on) and fast (~tens of ms)."""
    return get_scenario("ledger-comparison").with_workload(
        slots=8, validation_min_age_slots=4
    )


@pytest.fixture
def campaign():
    return CampaignSpec(name="grid", cells=replicate_seeds(tiny_spec(), (0, 1, 2)))


class TestChaosSpec:
    def test_rejects_negative_counts(self):
        with pytest.raises(ChaosError, match="exceptions"):
            ChaosSpec(exceptions=-1)
        with pytest.raises(ChaosError, match="kills"):
            ChaosSpec(kills=-2)

    def test_rejects_nonpositive_hang(self):
        with pytest.raises(ChaosError, match="hang_s"):
            ChaosSpec(hangs=1, hang_s=0)

    def test_rejects_unknown_fields(self):
        with pytest.raises(ChaosError, match="warp"):
            ChaosSpec.from_dict({"exceptions": 1, "warp": True})

    def test_round_trips_through_dict(self):
        spec = ChaosSpec(seed=7, exceptions=2, kills=1, hangs=1, hang_s=3.5)
        assert ChaosSpec.from_dict(spec.to_dict()) == spec

    def test_plan_is_a_pure_function_of_seed_and_digest_set(self):
        digests = [f"{i:064x}" for i in range(8)]
        spec = ChaosSpec(seed=3, exceptions=2, kills=1, hangs=1)
        plan = spec.plan(digests)
        assert plan == spec.plan(reversed(digests))  # order-independent
        assert sorted(plan.values()).count(CHAOS_EXCEPTION) == 2
        assert sorted(plan.values()).count(CHAOS_KILL) == 1
        assert sorted(plan.values()).count(CHAOS_HANG) == 1
        # a different seed afflicts (with 8 cells, near-certainly)
        # a different selection — and always deterministically
        assert spec.plan(digests) == plan
        assert ChaosSpec(seed=4, exceptions=2, kills=1, hangs=1).plan(
            digests
        ) == ChaosSpec(seed=4, exceptions=2, kills=1, hangs=1).plan(digests)

    def test_plan_truncates_when_cells_run_out(self):
        spec = ChaosSpec(exceptions=5, kills=5)
        plan = spec.plan([f"{i:064x}" for i in range(3)])
        assert len(plan) == 3

    def test_from_env_inline_file_and_off(self, tmp_path):
        assert chaos_from_env({}) is None
        assert chaos_from_env({"REPRO_CHAOS": "  "}) is None
        spec = ChaosSpec(seed=1, exceptions=2)
        inline = chaos_from_env({"REPRO_CHAOS": json.dumps(spec.to_dict())})
        assert inline == spec
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert chaos_from_env({"REPRO_CHAOS": str(path)}) == spec

    def test_from_env_rejects_garbage_loudly(self, tmp_path):
        with pytest.raises(ChaosError, match="not valid JSON"):
            chaos_from_env({"REPRO_CHAOS": "{nope"})
        with pytest.raises(ChaosError, match="cannot read"):
            chaos_from_env({"REPRO_CHAOS": str(tmp_path / "missing.json")})

    def test_executor_picks_up_env_chaos(self, monkeypatch):
        spec = ChaosSpec(seed=9, exceptions=1)
        monkeypatch.setenv("REPRO_CHAOS", json.dumps(spec.to_dict()))
        assert CampaignExecutor(use_cache=False).chaos == spec
        monkeypatch.delenv("REPRO_CHAOS")
        assert CampaignExecutor(use_cache=False).chaos is None


class TestSeededBackoff:
    def test_deterministic_and_exponential(self):
        digest = "ab" * 32
        first = seeded_backoff(0.1, digest, 1)
        assert first == seeded_backoff(0.1, digest, 1)
        assert 0.05 <= first < 0.15  # base x [0.5, 1.5) jitter
        assert 0.1 <= seeded_backoff(0.1, digest, 2) < 0.3
        assert seeded_backoff(0.1, digest, 1) != seeded_backoff(0.1, "cd" * 32, 1)

    def test_zero_base_means_no_wait(self):
        assert seeded_backoff(0.0, "ab" * 32, 3) == 0.0


class TestChaosConvergence:
    """Chaos-ridden runs converge byte-identical to clean serial runs."""

    def clean_payloads(self, campaign):
        return CampaignExecutor(use_cache=False).run(campaign).payloads()

    def test_serial_chaos_converges(self, campaign):
        chaos = ChaosSpec(seed=11, exceptions=2, kills=1)  # every cell afflicted
        result = CampaignExecutor(use_cache=False, chaos=chaos).run(campaign)
        assert result.payloads() == self.clean_payloads(campaign)
        assert result.ok and result.quarantined_count == 0
        assert result.flaky_count == 0
        assert [cell.attempts for cell in result.cells] == [2, 2, 2]
        kinds = {f.kind for cell in result.cells for f in cell.failures}
        assert kinds == {"chaos"}

    def test_parallel_chaos_with_real_worker_kill_converges(
        self, campaign, tmp_path
    ):
        chaos = ChaosSpec(seed=11, exceptions=1, kills=1)
        result = CampaignExecutor(
            workers=2, cache_dir=tmp_path, chaos=chaos
        ).run(campaign)
        assert result.payloads() == self.clean_payloads(campaign)
        assert result.ok and result.flaky_count == 0

        events = ResultCache(tmp_path).read_journal(campaign.digest())
        kinds = [event["event"] for event in events]
        assert kinds[0] == "start" and kinds[-1] == "end"
        assert events[0]["chaos"] == chaos.to_dict()
        assert "pool-respawn" in kinds  # the SIGKILL'd worker
        failed = [event for event in events if event["event"] == "cell-failed"]
        assert {event["kind"] for event in failed} <= {"chaos", "worker-crash"}
        assert "worker-crash" in {event["kind"] for event in failed}
        assert kinds.count("cell") == 3  # every cell eventually landed

    def test_parallel_hang_is_killed_at_timeout_and_converges(
        self, campaign, tmp_path
    ):
        chaos = ChaosSpec(seed=5, hangs=1, hang_s=30.0)
        result = CampaignExecutor(
            workers=2, cache_dir=tmp_path, chaos=chaos, cell_timeout=1.5
        ).run(campaign)
        assert result.payloads() == self.clean_payloads(campaign)
        assert result.ok
        events = ResultCache(tmp_path).read_journal(campaign.digest())
        respawns = [e for e in events if e["event"] == "pool-respawn"]
        assert any(e.get("timed_out") for e in respawns)
        failed = [e for e in events if e["event"] == "cell-failed"]
        assert "timeout" in {e["kind"] for e in failed}

    def test_chaos_spares_attempts_above_max_attempt(self, campaign):
        # with max_attempt=0 (default) the second attempt is chaos-free:
        # exceptions on every cell still converge with retries=1
        chaos = ChaosSpec(seed=2, exceptions=3)
        result = CampaignExecutor(
            use_cache=False, chaos=chaos, retries=1
        ).run(campaign)
        assert result.ok
        assert all(cell.attempts == 2 for cell in result.cells)
