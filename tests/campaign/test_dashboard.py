"""Campaign dashboard rendering and the pinned status document."""

import json

import pytest

from repro.campaign import (
    STATUS_SCHEMA_VERSION,
    CampaignExecutor,
    CampaignSpec,
    render_dashboard,
    replicate_seeds,
    write_dashboard,
)
from repro.scenario import get_scenario


def tiny_spec():
    return get_scenario("ledger-comparison").with_workload(
        slots=8, validation_min_age_slots=4
    )


@pytest.fixture
def campaign():
    return CampaignSpec(name="dash", cells=replicate_seeds(tiny_spec(), (0, 1)))


class TestRenderDashboard:
    def test_pending_campaign_renders_placeholder_charts(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path / "cache")
        page = render_dashboard(campaign, executor)
        assert page.startswith("<!DOCTYPE html>")
        assert "no completed cells to chart" in page
        assert page.count("pending") >= 2

    def test_completed_campaign_charts_series(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path / "cache")
        executor.run(campaign)
        page = render_dashboard(campaign, executor)
        assert "<polyline" in page
        assert "Mean storage per node (MB)" in page
        assert "done" in page
        # self-contained: no external fetches of any kind
        assert "http://" not in page and "https://" not in page
        assert "<script" not in page

    def test_render_is_deterministic_for_a_cache_state(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path / "cache")
        executor.run(campaign)
        assert render_dashboard(campaign, executor) == render_dashboard(
            campaign, executor
        )

    def test_write_dashboard_is_atomic_and_returns_path(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path / "cache")
        target = tmp_path / "out" / "dash.html"
        target.parent.mkdir()
        written = write_dashboard(campaign, executor, target)
        assert written == target
        assert target.read_text().startswith("<!DOCTYPE html>")


class TestStatusDocument:
    def test_schema_and_counts(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path / "cache")
        document = executor.status_document(campaign)
        assert document["schema"] == STATUS_SCHEMA_VERSION
        assert document["campaign"] == "dash"
        assert document["campaign_digest"] == campaign.digest()
        assert document["total"] == 2
        assert document["counts"] == {
            "done": 0, "failing": 0, "pending": 2, "quarantined": 0
        }
        assert [cell["index"] for cell in document["cells"]] == [0, 1]
        assert all(cell["state"] == "pending" for cell in document["cells"])

    def test_counts_track_completion(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path / "cache")
        executor.run(campaign)
        document = executor.status_document(campaign)
        assert document["counts"]["done"] == 2
        assert all(cell["cached"] for cell in document["cells"])

    def test_document_is_json_serialisable(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path / "cache")
        round_tripped = json.loads(
            json.dumps(executor.status_document(campaign), sort_keys=True)
        )
        assert round_tripped["total"] == 2


HOSTILE = '<script>alert("xss")&</script>'


class TestPanelsAndEscaping:
    def hostile_campaign(self):
        import dataclasses

        spec = dataclasses.replace(tiny_spec(), name=HOSTILE)
        return CampaignSpec(name=HOSTILE, cells=replicate_seeds(spec, (0,)))

    def monitors_doc(self, detail="ok", status="pass"):
        return {
            "v": 1,
            "runs": [{
                "scenario": HOSTILE, "backend": "2ldag", "seed": 0,
                "streams": [],
                "monitors": [
                    {"id": "liveness-progress", "status": status,
                     "detail": detail},
                ],
            }],
            "counts": {"pass": 1, "fail": 0, "skip": 0},
            "status": status,
        }

    def test_hostile_cell_names_never_reach_markup_raw(self, tmp_path):
        campaign = self.hostile_campaign()
        executor = CampaignExecutor(cache_dir=tmp_path / "cache")
        page = render_dashboard(campaign, executor)
        assert "<script" not in page
        assert "&lt;script&gt;" in page

    def test_monitor_panel_renders_and_escapes(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path / "cache")
        page = render_dashboard(
            campaign, executor, monitors=self.monitors_doc(detail=HOSTILE)
        )
        assert "Invariant monitors" in page
        assert "liveness-progress" in page
        assert "<script" not in page
        assert page.count("&lt;script&gt;") >= 2  # scenario + detail cells

    def test_waterfall_panel_escapes_caption_embeds_svg(self, campaign, tmp_path):
        from repro.telemetry.tracepath import waterfall_svg

        trace = {
            "v": 2, "event": "block-trace", "block": HOSTILE + "#0",
            "origin": 0, "confirmed": True, "faults": [],
            "spans": [{"phase": "created", "node": 0, "slot": 1,
                       "start": 1.0, "end": 1.0}],
        }
        svg = waterfall_svg(trace, "2ldag")
        executor = CampaignExecutor(cache_dir=tmp_path / "cache")
        page = render_dashboard(
            campaign, executor, waterfalls=[(HOSTILE, svg)]
        )
        assert "Block lifecycle" in page or "waterfall" in page.lower()
        assert "<svg" in page
        assert "<script" not in page

    def test_panels_absent_without_documents(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path / "cache")
        page = render_dashboard(campaign, executor)
        assert "Invariant monitors" not in page
