"""Campaign executor tests: determinism, caching, resume, journaling.

The ISSUE-level guarantees pinned here:

* a multi-worker run of a grid produces per-cell trace digests
  byte-identical to the serial run;
* a second invocation is served entirely from cache (zero cell
  executions — enforced by replacing the cell runner with a bomb);
* mutating one cell's spec invalidates exactly that cell;
* an interrupted/extended campaign only computes missing cells.
"""

import json

import pytest

import repro.campaign.executor as executor_module
from repro.campaign.cache import ResultCache
from repro.campaign.executor import CampaignExecutor, run_campaign
from repro.campaign.spec import (
    CampaignError,
    CampaignSpec,
    CellSpec,
    apply_override,
    replicate_seeds,
)
from repro.scenario import get_scenario


def tiny_spec():
    """Seed-sensitive (PoP validation on) and fast (~tens of ms)."""
    return get_scenario("ledger-comparison").with_workload(
        slots=8, validation_min_age_slots=4
    )


@pytest.fixture
def campaign():
    return CampaignSpec(name="grid", cells=replicate_seeds(tiny_spec(), (0, 1, 2)))


class TestDeterminism:
    def test_parallel_run_matches_serial_byte_for_byte(self, campaign, tmp_path):
        serial = CampaignExecutor(use_cache=False).run(campaign)
        parallel = CampaignExecutor(
            workers=2, cache_dir=tmp_path / "cache"
        ).run(campaign)
        serial_traces = [cell.trace_sha256 for cell in serial.cells]
        parallel_traces = [cell.trace_sha256 for cell in parallel.cells]
        assert all(serial_traces)
        assert serial_traces == parallel_traces
        # seeds genuinely matter in this workload
        assert len(set(serial_traces)) == len(serial_traces)
        # full payload equality, not just traces
        assert serial.payloads() == parallel.payloads()

    def test_results_come_back_in_campaign_order(self, campaign, tmp_path):
        result = CampaignExecutor(workers=2, cache_dir=tmp_path).run(campaign)
        assert [cell.index for cell in result.cells] == [0, 1, 2]
        assert [cell.cell.scenario.seed for cell in result.cells] == [0, 1, 2]


class TestCaching:
    def test_second_invocation_runs_zero_cells(self, campaign, tmp_path, monkeypatch):
        executor = CampaignExecutor(cache_dir=tmp_path)
        first = executor.run(campaign)
        assert first.computed_count == 3

        def bomb(_cell):
            raise AssertionError("a cached campaign must not execute cells")

        monkeypatch.setattr(executor_module, "execute_cell", bomb)
        second = executor.run(campaign)
        assert second.cached_count == 3
        assert second.computed_count == 0
        assert second.payloads() == first.payloads()

    def test_mutating_one_cell_invalidates_exactly_that_cell(
        self, campaign, tmp_path
    ):
        executor = CampaignExecutor(cache_dir=tmp_path)
        executor.run(campaign)

        cells = list(campaign.cells)
        cells[1] = CellSpec(
            scenario=apply_override(cells[1].scenario, "protocol.gamma", 3)
        )
        mutated = CampaignSpec(name="grid", cells=tuple(cells))
        result = executor.run(mutated)
        assert [cell.cached for cell in result.cells] == [True, False, True]

    def test_resume_computes_only_missing_cells(self, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path)
        partial = CampaignSpec(
            name="grid", cells=replicate_seeds(tiny_spec(), (0, 1))
        )
        executor.run(partial)  # "interrupted" after two cells
        full = CampaignSpec(
            name="grid", cells=replicate_seeds(tiny_spec(), (0, 1, 2))
        )
        resumed = executor.run(full)
        assert [cell.cached for cell in resumed.cells] == [True, True, False]

    def test_force_recomputes_everything(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path)
        executor.run(campaign)
        forced = executor.run(campaign, force=True)
        assert forced.computed_count == 3

    def test_corrupt_cache_entry_is_a_miss_and_heals(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path)
        executor.run(campaign)
        cache = ResultCache(tmp_path)
        digest = campaign.cells[0].digest()
        path = cache.cell_path(digest)
        path.write_text(path.read_text()[:40])  # truncate: torn write
        assert cache.load(digest) is None
        healed = executor.run(campaign)
        assert [cell.cached for cell in healed.cells] == [False, True, True]
        assert cache.load(digest) is not None

    def test_foreign_code_version_is_a_miss(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path)
        executor.run(campaign)
        cache = ResultCache(tmp_path)
        digest = campaign.cells[0].digest()
        document = json.loads(cache.cell_path(digest).read_text())
        document["code_version"] = 999
        cache.cell_path(digest).write_text(json.dumps(document))
        assert cache.load(digest) is None

    def test_no_cache_executor_never_persists(self, campaign, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        result = CampaignExecutor(use_cache=False).run(campaign)
        assert result.computed_count == 3
        assert not (tmp_path / "env-cache").exists()


class TestJournal:
    def test_run_journals_start_cells_end(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path)
        executor.run(campaign)
        events = ResultCache(tmp_path).read_journal(campaign.digest())
        kinds = [event["event"] for event in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "end"
        assert kinds.count("cell") == 3
        cell_events = [event for event in events if event["event"] == "cell"]
        assert {event["digest"] for event in cell_events} == {
            cell.digest() for cell in campaign.cells
        }

    def test_fully_cached_run_appends_nothing(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path)
        executor.run(campaign)
        before = ResultCache(tmp_path).read_journal(campaign.digest())
        executor.run(campaign)
        after = ResultCache(tmp_path).read_journal(campaign.digest())
        assert after == before

    def test_torn_journal_line_is_skipped(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path)
        executor.run(campaign)
        cache = ResultCache(tmp_path)
        with open(cache.journal_path(campaign.digest()), "a") as handle:
            handle.write('{"event": "cel')  # torn write mid-crash
        events = cache.read_journal(campaign.digest())
        assert events[-1]["event"] == "end"


class TestStatusAndClean:
    def test_status_reports_cached_and_pending(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path)
        assert [cached for _c, _d, cached in executor.status(campaign)] == [
            False, False, False,
        ]
        executor.run(campaign)
        assert [cached for _c, _d, cached in executor.status(campaign)] == [
            True, True, True,
        ]

    def test_clean_drops_cells_and_journal(self, campaign, tmp_path):
        executor = CampaignExecutor(cache_dir=tmp_path)
        executor.run(campaign)
        assert executor.clean(campaign) == 3
        cache = ResultCache(tmp_path)
        assert cache.read_journal(campaign.digest()) == []
        assert [cached for _c, _d, cached in executor.status(campaign)] == [
            False, False, False,
        ]


class TestErrors:
    def test_unknown_kind_fails_the_run(self, tmp_path):
        campaign = CampaignSpec(
            name="bad", cells=(CellSpec(scenario=tiny_spec(), kind="warp-drive"),)
        )
        with pytest.raises(CampaignError, match="unknown cell kind"):
            CampaignExecutor(use_cache=False).run(campaign)

    def test_worker_failure_is_wrapped(self, tmp_path):
        campaign = CampaignSpec(
            name="bad", cells=(CellSpec(scenario=tiny_spec(), kind="warp-drive"),)
        )
        with pytest.raises(CampaignError, match="warp-drive"):
            CampaignExecutor(workers=2, cache_dir=tmp_path).run(campaign)

    def test_serial_failure_is_wrapped_like_parallel(self):
        from repro.campaign.cells import register_cell_kind

        @register_cell_kind("test-exploding-kind")
        def exploding(cell):
            raise ValueError("boom")

        campaign = CampaignSpec(
            name="bad",
            cells=(CellSpec(scenario=tiny_spec(), kind="test-exploding-kind"),),
        )
        with pytest.raises(CampaignError, match="boom"):
            CampaignExecutor(use_cache=False).run(campaign)


class TestRunCampaignHelper:
    def test_default_is_serial_and_cache_free(self, campaign, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        result = run_campaign(campaign)
        assert result.workers == 0
        assert result.computed_count == 3
        assert not (tmp_path / "env-cache").exists()
